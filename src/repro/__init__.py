"""repro — fast indexes and algorithms for set similarity selection queries.

A complete reproduction of Hadjieleftheriou, Chandel, Koudas & Srivastava,
"Fast Indexes and Algorithms for Set Similarity Selection Queries"
(ICDE 2008): the IDF similarity measure, its semantic properties, inverted
list indexes with skip lists and extendible hashing, the TA/NRA family plus
the paper's iNRA, iTA, SF and Hybrid algorithms, a relational (SQL-style)
baseline, and the full experimental harness.

Quickstart::

    from repro import StringMatcher

    matcher = StringMatcher(["Main St., Main", "Main St., Maine"])
    for text, score in matcher.match("Main St., Mane", threshold=0.5):
        print(f"{score:.3f}  {text}")
"""

from .algorithms import (
    AlgorithmResult,
    SearchResult,
    SelectionAlgorithm,
    algorithm_names,
    make_algorithm,
)
from .core.collection import SetCollection, SetRecord
from .core.errors import ReproError
from .core.query import PreparedQuery
from .core.search import SetSimilaritySearcher, StringMatcher
from .core.similarity import (
    bm25_score,
    idf_similarity,
    measure_from_name,
    tfidf_cosine,
)
from .core.linkage import FieldedMatch, FieldedMatcher
from .core.join import (
    JoinPair,
    JoinResult,
    similarity_clusters,
    similarity_self_join,
)
from .core.tokenize import QGramTokenizer, WordQGramTokenizer, WordTokenizer
from .core.topk import TopKSearcher
from .algorithms.prefixfilter import PrefixFilterSearcher
from .core.unweighted import CosineSetSearcher
from .core.updatable import UpdatableSearcher
from .core.weighted import WeightedSelector
from .core.weights import IdfStatistics
from .core.errors import (
    CircuitOpenError,
    CorruptIndexError,
    ServiceOverloadError,
)
from .faults import (
    TornWriteError,
    TransientIOError,
    use_fault_plan,
)
from .service import ServiceConfig, ServiceResult, SimilarityService
from .storage.invlist import InvertedIndex
from .storage.oplog import DurableUpdatableSearcher, OperationsLog
from .storage.persist import (
    RecoveryReport,
    load_searcher,
    save_searcher,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmResult",
    "SearchResult",
    "SelectionAlgorithm",
    "algorithm_names",
    "make_algorithm",
    "SetCollection",
    "SetRecord",
    "ReproError",
    "PreparedQuery",
    "SetSimilaritySearcher",
    "StringMatcher",
    "bm25_score",
    "idf_similarity",
    "measure_from_name",
    "tfidf_cosine",
    "QGramTokenizer",
    "WordQGramTokenizer",
    "WordTokenizer",
    "FieldedMatch",
    "FieldedMatcher",
    "JoinPair",
    "JoinResult",
    "similarity_clusters",
    "similarity_self_join",
    "TopKSearcher",
    "CosineSetSearcher",
    "PrefixFilterSearcher",
    "UpdatableSearcher",
    "DurableUpdatableSearcher",
    "OperationsLog",
    "WeightedSelector",
    "IdfStatistics",
    "InvertedIndex",
    "ServiceConfig",
    "ServiceResult",
    "SimilarityService",
    "CircuitOpenError",
    "CorruptIndexError",
    "ServiceOverloadError",
    "TornWriteError",
    "TransientIOError",
    "use_fault_plan",
    "RecoveryReport",
    "load_searcher",
    "save_searcher",
    "__version__",
]
