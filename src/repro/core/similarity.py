"""Exact pairwise similarity measures: IDF, TF/IDF, BM25 and BM25'.

These are the reference implementations used (a) by tests as ground truth for
every index-based algorithm, and (b) by the Table I precision experiment that
compares the four measures on graded-error datasets.

The paper's primary measure is **IDF** (Equation 1):

    I(q, s) = Σ_{t ∈ q∩s} idf(t)² / (len(s)·len(q))

with ``len(·)`` the normalized length from :mod:`repro.core.weights`.  The
three properties in Section IV (order preservation, magnitude boundedness,
length boundedness) hold for IDF exactly; TF/IDF and BM25 obey looser
variants obtained by boosting with per-token maximum tf (see
:func:`repro.core.properties.tf_boosted_length_bounds`).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional

from .errors import ConfigurationError
from .weights import IdfStatistics, normalized_length, tf_counts

__all__ = [
    "idf_similarity",
    "tfidf_cosine",
    "bm25_score",
    "SimilarityMeasure",
    "IdfMeasure",
    "TfIdfMeasure",
    "Bm25Measure",
    "Bm25PrimeMeasure",
    "measure_from_name",
]


def idf_similarity(
    q_tokens: Iterable[str],
    s_tokens: Iterable[str],
    stats: IdfStatistics,
    q_length: Optional[float] = None,
    s_length: Optional[float] = None,
) -> float:
    """IDF similarity of two token collections (Equation 1).

    Lengths may be supplied when already known (e.g. cached per collection)
    to avoid recomputation.  Two identical sets always score 1.0; an empty
    operand scores 0.0.
    """
    q = frozenset(q_tokens)
    s = frozenset(s_tokens)
    if q_length is None:
        q_length = normalized_length(q, stats)
    if s_length is None:
        s_length = normalized_length(s, stats)
    denom = q_length * s_length
    if denom <= 0.0:
        return 0.0
    common = q & s
    num = sum(stats.idf_squared(t) for t in common)
    return num / denom


def _tfidf_weight(tf: int, idf: float) -> float:
    return tf * idf


def tfidf_cosine(
    q_counts: Mapping[str, int],
    s_counts: Mapping[str, int],
    stats: IdfStatistics,
) -> float:
    """Cosine similarity with ``tf·idf`` token weights (classic TF/IDF).

    The normalization uses the full tf-weighted vector norms, so the score
    lies in [0, 1] and equals 1.0 only for proportional vectors.
    """
    def norm(counts: Mapping[str, int]) -> float:
        return math.sqrt(
            sum(_tfidf_weight(tf, stats.idf(t)) ** 2 for t, tf in counts.items())
        )

    nq, ns = norm(q_counts), norm(s_counts)
    if nq <= 0.0 or ns <= 0.0:
        return 0.0
    dot = 0.0
    smaller, larger = (
        (q_counts, s_counts) if len(q_counts) <= len(s_counts) else (s_counts, q_counts)
    )
    for t, tf_a in smaller.items():
        tf_b = larger.get(t)
        if tf_b:
            dot += _tfidf_weight(tf_a, stats.idf(t)) * _tfidf_weight(
                tf_b, stats.idf(t)
            )
    return dot / (nq * ns)


def bm25_score(
    q_counts: Mapping[str, int],
    s_counts: Mapping[str, int],
    stats: IdfStatistics,
    k1: float = 1.2,
    b: float = 0.75,
    drop_tf: bool = False,
    normalize: bool = True,
) -> float:
    """BM25 score of set ``s`` for query ``q`` (Robertson/Sparck-Jones form).

    ``drop_tf=True`` gives the paper's **BM25'** variant: every term
    frequency is clamped to 1, reducing multisets to sets exactly as the IDF
    measure does for TF/IDF.

    With ``normalize=True`` the raw score is divided by the query's
    self-score, restricting the output to [0, 1] with exact matches scoring
    1.0 — the length-normalization idea Section II argues for.  The raw,
    unbounded BM25 is returned with ``normalize=False``.
    """
    if k1 < 0 or not (0.0 <= b <= 1.0):
        raise ConfigurationError("BM25 requires k1 >= 0 and 0 <= b <= 1")
    avg = stats.avg_set_size or 1.0

    def doc_len(counts: Mapping[str, int]) -> float:
        if drop_tf:
            return float(len(counts))
        return float(sum(counts.values()))

    def raw(
        query: Mapping[str, int], doc: Mapping[str, int]
    ) -> float:
        dl = doc_len(doc)
        denom_norm = k1 * ((1.0 - b) + b * dl / avg)
        total = 0.0
        for t in query:
            tf = doc.get(t, 0)
            if tf == 0:
                continue
            if drop_tf:
                tf = 1
            total += stats.idf(t) * (tf * (k1 + 1.0)) / (denom_norm + tf)
        return total

    score = raw(q_counts, s_counts)
    if not normalize:
        return score
    self_q = raw(q_counts, q_counts)
    self_s = raw(s_counts, s_counts)
    denom = math.sqrt(self_q * self_s)
    return score / denom if denom > 0.0 else 0.0


class SimilarityMeasure:
    """Uniform interface over the four measures for the precision harness.

    Subclasses implement :meth:`score` on multiset count mappings; the
    set-semantics measures simply ignore the counts.
    """

    name = "abstract"

    def __init__(self, stats: IdfStatistics) -> None:
        self.stats = stats

    def score(
        self, q_counts: Mapping[str, int], s_counts: Mapping[str, int]
    ) -> float:
        raise NotImplementedError

    def score_strings(self, q_tokens, s_tokens) -> float:
        """Convenience: score raw token sequences."""
        return self.score(tf_counts(list(q_tokens)), tf_counts(list(s_tokens)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class IdfMeasure(SimilarityMeasure):
    """The paper's IDF measure (Equation 1)."""

    name = "idf"

    def score(self, q_counts, s_counts) -> float:
        return idf_similarity(q_counts.keys(), s_counts.keys(), self.stats)


class TfIdfMeasure(SimilarityMeasure):
    """Classic length-normalized TF/IDF cosine."""

    name = "tfidf"

    def score(self, q_counts, s_counts) -> float:
        return tfidf_cosine(q_counts, s_counts, self.stats)


class Bm25Measure(SimilarityMeasure):
    """Normalized BM25 with tunable ``k1`` and ``b``."""

    name = "bm25"

    def __init__(self, stats: IdfStatistics, k1: float = 1.2, b: float = 0.75):
        super().__init__(stats)
        self.k1 = k1
        self.b = b

    def score(self, q_counts, s_counts) -> float:
        return bm25_score(q_counts, s_counts, self.stats, k1=self.k1, b=self.b)


class Bm25PrimeMeasure(Bm25Measure):
    """BM25' — BM25 with the tf component dropped (tf clamped to 1)."""

    name = "bm25p"

    def score(self, q_counts, s_counts) -> float:
        return bm25_score(
            q_counts, s_counts, self.stats, k1=self.k1, b=self.b, drop_tf=True
        )


_MEASURES = {
    "idf": IdfMeasure,
    "tfidf": TfIdfMeasure,
    "bm25": Bm25Measure,
    "bm25p": Bm25PrimeMeasure,
}


def measure_from_name(name: str, stats: IdfStatistics, **kwargs) -> SimilarityMeasure:
    """Instantiate a measure by name: ``idf``, ``tfidf``, ``bm25``, ``bm25p``."""
    try:
        cls = _MEASURES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown measure {name!r}; choose from {sorted(_MEASURES)}"
        ) from None
    return cls(stats, **kwargs)
