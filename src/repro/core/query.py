"""Query preparation: per-token weights, processing order and bounds.

A :class:`PreparedQuery` snapshots everything the list-merging algorithms
need about a query: the distinct tokens, their (squared) idfs, the query's
normalized length, the decreasing-idf processing order used by SF, and
helpers evaluating the Theorem 1 window and the ``λ_i`` cutoffs for a given
threshold.

Preparing a query is independent of any index, so the same prepared query
can be executed by every algorithm — which is exactly how the benchmark
harness uses it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .errors import EmptyQueryError
from .properties import lambda_cutoffs, length_bounds
from .weights import IdfStatistics


class PreparedQuery:
    """An analyzed query set, ready for execution by any algorithm.

    Attributes
    ----------
    tokens:
        Distinct query tokens, in decreasing idf order (ties broken by the
        token string for determinism).  This is the order SF scans lists in;
        round-robin algorithms simply iterate the same sequence cyclically.
    idf_squared:
        ``idf(t)²`` for each token, aligned with :attr:`tokens`.
    length:
        Normalized query length ``len(q)``.
    """

    __slots__ = ("tokens", "idf_squared", "length", "_source", "_index_of")

    def __init__(self, tokens: Sequence[str], stats: IdfStatistics) -> None:
        distinct = sorted(frozenset(tokens))
        if not distinct:
            raise EmptyQueryError("query produced no tokens")
        weighted = sorted(
            ((stats.idf_squared(t), t) for t in distinct),
            key=lambda pair: (-pair[0], pair[1]),
        )
        self.tokens: Tuple[str, ...] = tuple(t for _, t in weighted)
        self.idf_squared: Tuple[float, ...] = tuple(w for w, _ in weighted)
        # Computed via stats.length (sorted-token summation) so a query equal
        # to a stored set gets the bit-identical normalized length.
        self.length: float = stats.length(distinct)
        self._source = tuple(tokens)
        self._index_of: Dict[str, int] = {
            t: i for i, t in enumerate(self.tokens)
        }

    # ------------------------------------------------------------------
    @property
    def num_lists(self) -> int:
        return len(self.tokens)

    @property
    def source_tokens(self) -> Tuple[str, ...]:
        """The raw token sequence the query was prepared from."""
        return self._source

    def token_index(self, token: str) -> int:
        return self._index_of[token]

    def __contains__(self, token: str) -> bool:
        return token in self._index_of

    def __len__(self) -> int:
        return len(self.tokens)

    # ------------------------------------------------------------------
    def bounds(self, tau: float) -> Tuple[float, float]:
        """The Theorem 1 admissible length window for threshold ``tau``."""
        return length_bounds(self.length, tau)

    def cutoffs(self, tau: float) -> List[float]:
        """SF's ``λ_i`` cutoffs for threshold ``tau`` (Equation 2), aligned
        with :attr:`tokens` (which is already in decreasing idf order)."""
        return lambda_cutoffs(self.idf_squared, self.length, tau)

    def contribution(self, list_index: int, set_length: float) -> float:
        """``w_i(s)`` — the score contribution of list ``list_index`` for a
        set of the given normalized length."""
        denom = set_length * self.length
        if denom <= 0.0:
            return 0.0
        return self.idf_squared[list_index] / denom

    def max_unseen_score(
        self, set_length: float, open_lists: Sequence[int]
    ) -> float:
        """Magnitude-boundedness upper bound component: the total possible
        contribution of the given (still open) lists for a set of known
        length."""
        denom = set_length * self.length
        if denom <= 0.0:
            return 0.0
        return sum(self.idf_squared[i] for i in open_lists) / denom

    def perfect_score_length(self) -> float:
        """The length a set must have to possibly score 1.0 (== len(q))."""
        return self.length

    def __repr__(self) -> str:
        return (
            f"PreparedQuery(n_tokens={len(self.tokens)}, "
            f"length={self.length:.3f})"
        )


def prepare(
    tokens: Sequence[str], stats: IdfStatistics
) -> PreparedQuery:
    """Functional alias for :class:`PreparedQuery` construction."""
    return PreparedQuery(tokens, stats)
