"""Top-k set similarity search — the paper's stated future-work extension.

Section X names top-k processing as future work; this module provides it on
top of the same machinery.  The algorithm is an iNRA-style round-robin
no-random-access search whose threshold is not fixed but *discovered*: it is
``θ``, the k-th best lower bound found so far.  All three Section IV
properties apply with ``tau = θ`` and strengthen as θ grows:

* **dynamic length window** — once θ > 0, answers must satisfy
  ``θ·len(q) <= len(s) <= len(q)/θ``, so lists are (re-)seeked forward past
  the shrinking prefix and completed past the shrinking suffix;
* **magnitude admission** — a new set is admitted only if its best-case
  score beats θ;
* **order preservation** — resolves absences exactly as in iNRA.

The result is the k sets with the highest IDF similarity (ties broken by
set id), each with its exact score.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..algorithms.base import QueryLists, SearchResult
from ..algorithms.candidates import Candidate, HashCandidateSet
from ..storage.invlist import InvertedIndex
from ..storage.pages import IOStats
from .errors import ConfigurationError
from .query import PreparedQuery


class TopKResult:
    """Top-k answers plus the I/O ledger of the search."""

    __slots__ = ("results", "stats", "elements_total")

    def __init__(
        self, results: List[SearchResult], stats: IOStats, elements_total: int
    ) -> None:
        self.results = results
        self.stats = stats
        self.elements_total = elements_total

    def ids(self) -> List[int]:
        return [r.set_id for r in self.results]

    def __len__(self) -> int:
        return len(self.results)


class TopKSearcher:
    """Incremental-threshold top-k search over an inverted index."""

    def __init__(self, index: InvertedIndex, use_skip_lists: bool = True):
        self.index = index
        self.use_skip_lists = use_skip_lists

    def search(self, query: PreparedQuery, k: int) -> TopKResult:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        stats = IOStats()
        lists = QueryLists(
            self.index, query, stats, use_skip_lists=self.use_skip_lists
        )
        n = len(lists)
        if n == 0:
            return TopKResult([], stats, 0)
        all_mask = (1 << n) - 1
        query_len = query.length
        candidates = HashCandidateSet()
        finalists: List[Candidate] = []  # resolved, exact scores

        cursors = lists.cursors
        complete = [False] * n
        frontier_key: List[Optional[Tuple[float, int]]] = [None] * n
        frontier_contrib = [0.0] * n
        for i, cursor in enumerate(cursors):
            if cursor.exhausted():
                complete[i] = True

        theta = 0.0

        def current_theta() -> float:
            """k-th best known lower bound (0 while fewer than k knowns)."""
            lowers = [c.lower for c in finalists]
            lowers.extend(c.lower for c in candidates)
            if len(lowers) < k:
                return 0.0
            return heapq.nlargest(k, lowers)[-1]

        while not all(complete):
            hi = query_len / theta if theta > 0.0 else float("inf")
            lo = theta * query_len
            for i, cursor in enumerate(cursors):
                if complete[i]:
                    continue
                # Dynamic Theorem 1 window: skip forward as θ rises.
                if theta > 0.0 and not cursor.exhausted():
                    if cursor.peek()[0] < lo:
                        cursor.seek_length_ge(lo)
                if cursor.exhausted():
                    complete[i] = True
                    frontier_contrib[i] = 0.0
                    continue
                length, set_id = cursor.next()
                frontier_key[i] = (length, set_id)
                frontier_contrib[i] = lists.contribution(i, length)
                if length > hi:
                    complete[i] = True
                    frontier_contrib[i] = 0.0
                    continue
                cand = candidates.get(set_id)
                if cand is None:
                    best = self._best_case(
                        lists, i, length, set_id, complete, frontier_key
                    )
                    if theta > 0.0 and best < theta:
                        continue
                    if best <= 0.0:
                        continue
                    cand = candidates.add(Candidate(set_id, length))
                cand.see(i, lists.contribution(i, length))
                if cursor.exhausted():
                    complete[i] = True
                    frontier_contrib[i] = 0.0

            theta = current_theta()
            f_threshold = sum(
                frontier_contrib[i] for i in range(n) if not complete[i]
            )

            # Resolve / prune the candidate set against the current θ.
            for cand in candidates.scan():
                stats.charge_candidate_scan()
                key = (cand.length, cand.set_id)
                for i in range(n):
                    bit = 1 << i
                    if (cand.seen_mask | cand.dead_mask) & bit:
                        continue
                    fk = frontier_key[i]
                    if complete[i] or (fk is not None and fk >= key):
                        cand.rule_out(i)
                if cand.resolved(all_mask):
                    candidates.remove(cand.set_id)
                    finalists.append(cand)
                    continue
                upper = cand.lower
                for i in range(n):
                    bit = 1 << i
                    if not (cand.seen_mask | cand.dead_mask) & bit:
                        upper += lists.contribution(i, cand.length)
                if query_len > 0.0:
                    # Cap by Theorem 1 case 2, but never below the known
                    # lower bound (the cap and the lower bound can be the
                    # same quantity computed in different float orders).
                    upper = max(min(upper, cand.length / query_len), cand.lower)
                if theta > 0.0 and upper < theta:
                    candidates.remove(cand.set_id)
            theta = current_theta()

            if (
                len(candidates) == 0
                and len(finalists) >= k
                and f_threshold < theta
            ):
                break

        # Any survivors have exact scores now only if resolved; resolve the
        # rest (all lists complete implies resolution, and the early-exit
        # path requires the candidate set to be empty).
        finalists.extend(candidates.scan())
        top = heapq.nsmallest(
            k, finalists, key=lambda c: (-c.lower, c.set_id)
        )
        results = [
            SearchResult(c.set_id, c.lower) for c in top if c.lower > 0.0
        ]
        return TopKResult(results, stats, lists.elements_total)

    @staticmethod
    def _best_case(
        lists: QueryLists,
        from_list: int,
        length: float,
        set_id: int,
        complete: List[bool],
        frontier_key: List[Optional[Tuple[float, int]]],
    ) -> float:
        key = (length, set_id)
        total = lists.idf_squared[from_list]
        for j in range(len(lists)):
            if j == from_list or complete[j]:
                continue
            fk = frontier_key[j]
            if fk is not None and fk >= key:
                continue
            total += lists.idf_squared[j]
        total = min(total, length * length)
        denom = length * lists.query.length
        return total / denom if denom > 0.0 else 0.0
