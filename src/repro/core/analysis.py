"""Query cost analysis and automatic algorithm selection.

The §VIII summary crowns SF "a clear winner", but the evaluation also shows
where the others shine: sort-by-id when pruning cannot help (very low
thresholds, whole lists in-window), TA-style when candidates are vanishingly
rare and random access is cheap.  :func:`estimate_cost` predicts, from index
statistics alone (no list reads), how much of each list a windowed algorithm
would touch, and :func:`choose_algorithm` turns that into a rule-of-thumb
plan choice — exposed as ``algorithm="auto"`` on the facade.

Estimation uses the per-list skip structures (or a direct bisection over
the posting order) to count in-window postings exactly, without charging
any simulated I/O: this mirrors how a real optimizer consults index
statistics rather than data pages.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.properties import length_bounds
from ..core.query import PreparedQuery
from ..storage.invlist import InvertedIndex


class CostEstimate:
    """Predicted work for one query at one threshold."""

    __slots__ = (
        "num_lists",
        "total_postings",
        "window_postings",
        "per_list_window",
    )

    def __init__(
        self,
        num_lists: int,
        total_postings: int,
        window_postings: int,
        per_list_window: List[int],
    ) -> None:
        self.num_lists = num_lists
        self.total_postings = total_postings
        self.window_postings = window_postings
        self.per_list_window = per_list_window

    @property
    def window_fraction(self) -> float:
        """Fraction of the query's postings inside the Theorem 1 window."""
        if self.total_postings == 0:
            return 0.0
        return self.window_postings / self.total_postings

    def __repr__(self) -> str:
        return (
            f"CostEstimate(lists={self.num_lists}, "
            f"window={self.window_postings}/{self.total_postings})"
        )


def window_count(index: InvertedIndex, token: str, lo: float, hi: float) -> int:
    """Number of postings of ``token`` with length in ``[lo, hi]``.

    Computed by bisection over the posting order (an optimizer consulting
    index statistics) — no simulated I/O is charged.
    """
    postings = index._postings.get(token)
    if postings is None:
        return 0
    records = list(postings.weight_file.records())
    import bisect

    start = bisect.bisect_left(records, (lo, -1))
    end = bisect.bisect_right(records, (hi, 1 << 62))
    return max(0, end - start)


def estimate_cost(
    index: InvertedIndex, query: PreparedQuery, tau: float
) -> CostEstimate:
    """Predict in-window postings per list for this query/threshold."""
    lo, hi = length_bounds(query.length, tau)
    per_list: List[int] = []
    total = 0
    for token in query.tokens:
        n = index.list_length(token)
        if n == 0:
            continue
        total += n
        per_list.append(window_count(index, token, lo, hi))
    return CostEstimate(
        num_lists=len(per_list),
        total_postings=total,
        window_postings=sum(per_list),
        per_list_window=per_list,
    )


def choose_algorithm(
    index: InvertedIndex,
    query: PreparedQuery,
    tau: float,
    has_hash_index: Optional[bool] = None,
) -> str:
    """Pick a selection algorithm from the cost estimate.

    Heuristics, in order (mirroring the paper's findings):

    1. window covers (nearly) everything → pruning cannot pay for its
       bookkeeping: use the plain merge (``sort-by-id``) when id lists
       exist, else SF;
    2. extremely selective window (a handful of postings in total) and a
       hash index available → ``ita``: completing the few survivors by
       random access beats any sequential plan;
    3. otherwise → ``sf``, the paper's overall winner.
    """
    estimate = estimate_cost(index, query, tau)
    if has_hash_index is None:
        has_hash_index = index.with_hash_index
    if estimate.total_postings == 0:
        return "sf"  # nothing to read; any algorithm returns empty
    if estimate.window_fraction > 0.95:
        return "sort-by-id" if index.with_id_lists else "sf"
    if (
        has_hash_index
        and estimate.window_postings <= 4 * max(estimate.num_lists, 1)
    ):
        return "ita"
    return "sf"


def explain_choice(
    index: InvertedIndex, query: PreparedQuery, tau: float
) -> Dict[str, object]:
    """The estimate plus the decision, for logging/debugging."""
    estimate = estimate_cost(index, query, tau)
    return {
        "num_lists": estimate.num_lists,
        "total_postings": estimate.total_postings,
        "window_postings": estimate.window_postings,
        "window_fraction": round(estimate.window_fraction, 4),
        "algorithm": choose_algorithm(index, query, tau),
    }


def explain_query(
    index: InvertedIndex, query: PreparedQuery, tau: float
) -> str:
    """A human-readable pre-execution plan, EXPLAIN-style.

    Shows the query's normalized length, the Theorem 1 window, SF's λ
    cutoffs, per-list sizes with in-window posting counts, and the
    algorithm the optimizer would pick — everything derivable from index
    statistics without reading data pages.
    """
    lo, hi = length_bounds(query.length, tau)
    cutoffs = query.cutoffs(tau)
    lines = [
        f"query: {len(query.tokens)} tokens, len(q) = {query.length:.4f}",
        f"threshold: tau = {tau}",
        f"length window (Theorem 1): [{lo:.4f}, {hi:.4f}]",
        "lists (decreasing idf):",
    ]
    for i, token in enumerate(query.tokens):
        n = index.list_length(token)
        if n == 0:
            lines.append(
                f"  {i + 1}. {token!r}: no postings (token unseen)"
            )
            continue
        in_window = window_count(index, token, lo, hi)
        lines.append(
            f"  {i + 1}. {token!r}: idf² = {query.idf_squared[i]:.3f}, "
            f"postings = {n}, in-window = {in_window}, "
            f"λ = {cutoffs[i]:.4f}"
        )
    info = explain_choice(index, query, tau)
    lines.append(
        f"window coverage: {info['window_postings']}/"
        f"{info['total_postings']} postings "
        f"({info['window_fraction']:.1%})"
    )
    lines.append(f"chosen algorithm (auto): {info['algorithm']}")
    return "\n".join(lines)
