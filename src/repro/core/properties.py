"""Semantic properties of the IDF measure (Section IV of the paper).

Three properties drive all pruning in the improved algorithms:

* **Order Preservation (Property 1)** — inverted lists are sorted by
  ``(len(s), id)``; since a set's length is constant across lists, two sets
  appear in the same relative order in every list they share.  Consequently,
  once a list's frontier has passed ``(len(s), id(s))`` without ``s``
  appearing, ``s`` is provably absent from that list.

* **Magnitude Boundedness (Property 2)** — after the first encounter of
  ``s`` (which reveals ``len(s)``), a tight best-case score
  ``Σ_i idf(q^i)² / (len(s)·len(q))`` over the not-yet-ruled-out lists is
  directly computable.

* **Length Boundedness (Theorem 1)** — ``I(q,s) ≥ τ`` implies
  ``τ·len(q) ≤ len(s) ≤ len(q)/τ``, and the bounds are tight.

This module provides those computations plus the SF algorithm's per-list
cutoffs ``λ_i`` (Equation 2) and the NRA/iNRA frontier threshold ``F``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .errors import InvalidThresholdError

__all__ = [
    "SCORE_EPSILON",
    "validate_threshold",
    "effective_threshold",
    "length_bounds",
    "within_length_bounds",
    "lambda_cutoffs",
    "frontier_threshold",
    "magnitude_upper_bound",
    "entry_precedes",
    "tf_boosted_length_bounds",
]

SCORE_EPSILON = 1e-9
"""Absolute tolerance applied to every threshold comparison.

Similarity scores are assembled from floating-point contribution sums whose
association order differs between the reference scorer and the incremental
algorithms; without a tolerance, ``tau = 1.0`` exact-match queries would
accept or reject borderline sets depending on summation order.  Every engine
(brute force, all list algorithms, SQL) compares against the same
``tau - SCORE_EPSILON``, so results stay mutually consistent.
"""


def validate_threshold(tau: float) -> float:
    """Check ``0 < tau <= 1`` and return it; raise otherwise."""
    if not (0.0 < tau <= 1.0):
        raise InvalidThresholdError(tau)
    return float(tau)


def effective_threshold(tau: float) -> float:
    """The internally used threshold: ``tau`` minus the float tolerance."""
    validate_threshold(tau)
    return max(tau - SCORE_EPSILON, SCORE_EPSILON)


def length_bounds(query_length: float, tau: float) -> Tuple[float, float]:
    """Theorem 1: the admissible normalized-length window for answers.

    Returns ``(tau * len(q), len(q) / tau)``.  Any set whose normalized
    length falls strictly outside this closed interval cannot reach
    similarity ``tau`` with the query.
    """
    tau = validate_threshold(tau)
    return tau * query_length, query_length / tau


def within_length_bounds(
    set_length: float, query_length: float, tau: float
) -> bool:
    """Whether ``set_length`` lies inside the Theorem 1 window (inclusive)."""
    lo, hi = length_bounds(query_length, tau)
    return lo <= set_length <= hi


def lambda_cutoffs(
    idf_squared_desc: Sequence[float], query_length: float, tau: float
) -> List[float]:
    """SF's per-list length cutoffs ``λ_i`` (Equation 2).

    ``idf_squared_desc`` must be the query tokens' squared idfs sorted in
    *decreasing* order (the order SF processes lists in).  ``λ_i`` is the
    largest normalized length a set first discovered in list ``i`` can have
    and still reach ``tau``, assuming it also appears in every later list:

        λ_i = Σ_{j ≥ i} idf(q^j)² / (τ · len(q))

    The returned list is non-increasing (λ_1 ≥ λ_2 ≥ ... ≥ λ_n).  A zero
    query length yields all-zero cutoffs.
    """
    tau = validate_threshold(tau)
    if query_length <= 0.0:
        return [0.0] * len(idf_squared_desc)
    denom = tau * query_length
    cutoffs: List[float] = []
    suffix = 0.0
    for v in reversed(idf_squared_desc):
        suffix += v
        cutoffs.append(suffix / denom)
    cutoffs.reverse()
    return cutoffs


def frontier_threshold(frontier_contributions: Sequence[Optional[float]]) -> float:
    """``F = Σ_i w_i(f_i)``: best possible score of a yet-unseen set.

    ``None`` entries denote exhausted lists (they contribute nothing).  Once
    ``F < tau`` no new candidate can qualify, so algorithms stop admitting
    new sets and only complete the scores of known candidates.
    """
    return sum(c for c in frontier_contributions if c is not None)


def magnitude_upper_bound(
    set_length: float,
    query_length: float,
    idf_squared_open: Sequence[float],
    known_score: float = 0.0,
) -> float:
    """Property 2: best-case score of a set with known length.

    ``idf_squared_open`` holds the squared idfs of the query tokens whose
    lists might still contain the set (not yet seen there and not ruled out
    by order preservation or exhaustion).  ``known_score`` is the aggregated
    lower bound from lists where the set already appeared.
    """
    denom = set_length * query_length
    if denom <= 0.0:
        return known_score
    return known_score + sum(idf_squared_open) / denom


def entry_precedes(
    length_a: float, id_a: int, length_b: float, id_b: int
) -> bool:
    """Whether entry A sorts strictly before entry B in a ``(len, id)`` list.

    Used for order-preservation pruning: if a list's frontier entry B does
    not precede a candidate A (i.e. A precedes or equals B) and A was not
    seen in that list, A will never appear there.
    """
    return (length_a, id_a) < (length_b, id_b)


def tf_boosted_length_bounds(
    query_length: float, tau: float, max_tf: float
) -> Tuple[float, float]:
    """Looser Theorem 1 window for tf-based measures (TF/IDF, BM25).

    Section IV notes that TF/IDF and BM25 follow looser versions of the
    semantic properties, obtained by associating every token with a maximum
    tf component and boosting the bounds accordingly.  With tf capped at
    ``max_tf``, every token weight grows by at most that factor, so the
    window widens by the same factor on both sides.
    """
    if max_tf < 1.0:
        raise ValueError(f"max_tf must be >= 1, got {max_tf}")
    lo, hi = length_bounds(query_length, tau)
    return lo / max_tf, hi * max_tf
