"""SetCollection: the database of token sets the algorithms search over.

A collection assigns every set a dense integer id (0..N-1), retains both the
set view (distinct tokens, used by IDF) and the multiset counts (used by
TF/IDF and BM25), and computes the corpus :class:`~repro.core.weights.IdfStatistics`
and per-set normalized lengths once, on demand.

The paper's experiments store one *word* per set (each word decomposed into
3-grams) with an identifier encoding its location in the base table; here the
``payload`` slot carries any such source metadata.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
)

from .errors import ConfigurationError, IndexNotBuiltError
from .tokenize import Tokenizer
from .weights import IdfStatistics, tf_counts


class SetRecord:
    """One database entry: id, distinct-token set, multiset counts, payload."""

    __slots__ = ("set_id", "tokens", "counts", "payload")

    def __init__(
        self,
        set_id: int,
        tokens: frozenset,
        counts: Dict[str, int],
        payload: Any = None,
    ) -> None:
        self.set_id = set_id
        self.tokens = tokens
        self.counts = counts
        self.payload = payload

    def __len__(self) -> int:
        return len(self.tokens)

    def __repr__(self) -> str:
        return f"SetRecord(id={self.set_id}, size={len(self.tokens)})"


class SetCollection:
    """An append-then-freeze collection of token sets.

    Typical construction paths:

    * :meth:`from_strings` — tokenize raw strings with a
      :class:`~repro.core.tokenize.Tokenizer`;
    * :meth:`from_token_sets` — supply pre-tokenized iterables;
    * incremental: create empty, call :meth:`add` repeatedly, then
      :meth:`freeze`.

    Statistics (:attr:`stats`) and normalized lengths (:meth:`length`) are
    computed lazily at first use after freezing; adding after freezing raises.
    """

    def __init__(self) -> None:
        self._records: List[SetRecord] = []
        self._frozen = False
        self._generation = 0
        self._stats: Optional[IdfStatistics] = None
        self._lengths: Optional[List[float]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_strings(
        cls,
        strings: Iterable[str],
        tokenizer: Tokenizer,
        payload_fn: Optional[Callable[[int, str], Any]] = None,
    ) -> "SetCollection":
        """Build from raw strings; payload defaults to the source string."""
        coll = cls()
        for i, text in enumerate(strings):
            tokens = tokenizer.tokens(text)
            payload = payload_fn(i, text) if payload_fn else text
            coll.add(tokens, payload=payload)
        coll.freeze()
        return coll

    @classmethod
    def from_token_sets(
        cls,
        token_sets: Iterable[Iterable[str]],
        payloads: Optional[Sequence[Any]] = None,
    ) -> "SetCollection":
        coll = cls()
        for i, toks in enumerate(token_sets):
            payload = payloads[i] if payloads is not None else None
            coll.add(list(toks), payload=payload)
        coll.freeze()
        return coll

    def add(self, tokens: Sequence[str], payload: Any = None) -> int:
        """Append one set; returns its id. Empty token lists are allowed
        (they simply never match anything)."""
        if self._frozen:
            raise ConfigurationError("collection is frozen; cannot add")
        counts = tf_counts(list(tokens))
        rec = SetRecord(
            set_id=len(self._records),
            tokens=frozenset(counts),
            counts=counts,
            payload=payload,
        )
        self._records.append(rec)
        self._generation += 1
        return rec.set_id

    def freeze(self) -> "SetCollection":
        self._frozen = True
        return self

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def generation(self) -> int:
        """Mutation counter: bumped on every :meth:`add`.  Caches keyed on
        ``(id(collection), generation)`` are safely invalidated by any
        content change (the service layer's result cache relies on it)."""
        return self._generation

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SetRecord]:
        return iter(self._records)

    def __getitem__(self, set_id: int) -> SetRecord:
        return self._records[set_id]

    def record(self, set_id: int) -> SetRecord:
        return self._records[set_id]

    def payload(self, set_id: int) -> Any:
        return self._records[set_id].payload

    def token_sets(self) -> Iterator[frozenset]:
        for rec in self._records:
            yield rec.tokens

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def _require_frozen(self) -> None:
        if not self._frozen:
            raise IndexNotBuiltError(
                "collection must be frozen before computing statistics"
            )

    @property
    def stats(self) -> IdfStatistics:
        """Corpus idf statistics (computed once, cached)."""
        self._require_frozen()
        if self._stats is None:
            self._stats = IdfStatistics.from_sets(
                rec.tokens for rec in self._records
            )
        return self._stats

    def length(self, set_id: int) -> float:
        """Normalized length of the set with the given id (cached)."""
        return self.lengths()[set_id]

    def lengths(self) -> List[float]:
        """Normalized lengths of every set, indexed by set id."""
        self._require_frozen()
        if self._lengths is None:
            stats = self.stats
            self._lengths = [
                stats.length(rec.tokens) for rec in self._records
            ]
        return self._lengths

    def vocabulary_size(self) -> int:
        return len(self.stats)

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "building"
        return f"SetCollection(n={len(self._records)}, {state})"


def collection_summary(coll: SetCollection) -> Dict[str, float]:
    """Descriptive statistics used by benchmarks and examples."""
    sizes = [len(rec) for rec in coll]
    lengths = coll.lengths() if len(coll) else []
    def _mean(xs: Sequence[float]) -> float:
        return sum(xs) / len(xs) if xs else 0.0
    return {
        "num_sets": float(len(coll)),
        "vocabulary": float(coll.vocabulary_size()) if len(coll) else 0.0,
        "mean_set_size": _mean(sizes),
        "max_set_size": float(max(sizes)) if sizes else 0.0,
        "mean_length": _mean(lengths),
        "max_length": max(lengths) if lengths else 0.0,
    }
