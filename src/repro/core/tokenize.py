"""Tokenizers that turn strings into token sets or multisets.

The paper decomposes strings two ways: into *words* (for the IMDB/DBLP
experiments the unit of retrieval is a word) and into *q-grams* (each word is
converted into a set of 3-grams for similarity evaluation).  Both tokenizers
are provided here, along with a composable pipeline used by the high-level
:class:`~repro.core.search.StringMatcher`.

Because the IDF measure drops the ``tf`` component, most callers want plain
``set`` output; the TF/IDF and BM25 measures need multiset counts, so every
tokenizer can also produce a token->count mapping via :meth:`counts`.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from .errors import ConfigurationError

_WORD_RE = re.compile(r"[A-Za-z0-9]+")


class Tokenizer:
    """Base interface: subclasses implement :meth:`tokens`.

    ``tokens`` returns the token *sequence* (with duplicates, in order);
    :meth:`counts` and :meth:`set` derive the multiset and set views from it.
    """

    def tokens(self, text: str) -> List[str]:
        raise NotImplementedError

    def counts(self, text: str) -> Dict[str, int]:
        """Multiset view: token -> occurrence count."""
        return dict(Counter(self.tokens(text)))

    def set(self, text: str) -> frozenset:
        """Set view: distinct tokens only (the IDF measure's input)."""
        return frozenset(self.tokens(text))

    def __call__(self, text: str) -> List[str]:
        return self.tokens(text)


class WordTokenizer(Tokenizer):
    """Split text into lowercase alphanumeric words.

    ``min_length`` drops words shorter than the given number of characters
    (useful for discarding noise tokens such as single letters).
    """

    def __init__(self, lowercase: bool = True, min_length: int = 1) -> None:
        if min_length < 1:
            raise ConfigurationError("min_length must be >= 1")
        self.lowercase = lowercase
        self.min_length = min_length

    def tokens(self, text: str) -> List[str]:
        if self.lowercase:
            text = text.lower()
        return [w for w in _WORD_RE.findall(text) if len(w) >= self.min_length]

    def __repr__(self) -> str:
        return (
            f"WordTokenizer(lowercase={self.lowercase}, "
            f"min_length={self.min_length})"
        )


class QGramTokenizer(Tokenizer):
    """Decompose a string into overlapping q-grams.

    Following the standard construction (and the paper's experiments, which
    use 3-grams), the string is padded with ``q - 1`` copies of a sentinel
    character on both ends, so a string of length ``L`` yields ``L + q - 1``
    grams and even single-character strings produce usable sets.

    Padding can be disabled with ``pad=False``, in which case strings shorter
    than ``q`` yield a single gram equal to the whole string.
    """

    def __init__(
        self,
        q: int = 3,
        pad: bool = True,
        pad_char: str = "#",
        lowercase: bool = True,
    ) -> None:
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if len(pad_char) != 1:
            raise ConfigurationError("pad_char must be a single character")
        self.q = q
        self.pad = pad
        self.pad_char = pad_char
        self.lowercase = lowercase

    def tokens(self, text: str) -> List[str]:
        if self.lowercase:
            text = text.lower()
        if not text:
            return []
        q = self.q
        if self.pad and q > 1:
            text = self.pad_char * (q - 1) + text + self.pad_char * (q - 1)
        if len(text) < q:
            return [text]
        return [text[i : i + q] for i in range(len(text) - q + 1)]

    def __repr__(self) -> str:
        return (
            f"QGramTokenizer(q={self.q}, pad={self.pad}, "
            f"pad_char={self.pad_char!r}, lowercase={self.lowercase})"
        )


class WordQGramTokenizer(Tokenizer):
    """Tokenize into words, then q-grams of each word, keeping word boundaries.

    This mirrors the paper's pipeline where tuples are tokenized into words
    and each word is converted into a 3-gram set.  The output is the union of
    the per-word gram sequences.
    """

    def __init__(self, q: int = 3, **qgram_kwargs) -> None:
        self._words = WordTokenizer()
        self._grams = QGramTokenizer(q=q, **qgram_kwargs)

    def tokens(self, text: str) -> List[str]:
        out: List[str] = []
        for word in self._words.tokens(text):
            out.extend(self._grams.tokens(word))
        return out

    def __repr__(self) -> str:
        return f"WordQGramTokenizer(q={self._grams.q})"


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Unweighted Jaccard similarity of two token collections (set view).

    Provided for comparison against the weighted measures; returns 1.0 for
    two empty inputs by convention.
    """
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union if union else 0.0


def tokenizer_from_name(name: str, **kwargs) -> Tokenizer:
    """Factory used by configuration code: ``word``, ``qgram`` or ``word+qgram``."""
    registry = {
        "word": WordTokenizer,
        "qgram": QGramTokenizer,
        "word+qgram": WordQGramTokenizer,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown tokenizer {name!r}; choose from {sorted(registry)}"
        ) from None
    return cls(**kwargs)


def split_into_words(text: str) -> List[str]:
    """Convenience wrapper mirroring the paper's word-level record extraction."""
    return WordTokenizer().tokens(text)


def ngram_profile(texts: Sequence[str], q: int = 3) -> Dict[str, int]:
    """Corpus-level q-gram document frequencies (how many texts contain a gram).

    Used by the synthetic-data tooling to sanity-check that generated corpora
    have realistic gram-frequency skew.
    """
    tok = QGramTokenizer(q=q)
    df: Counter = Counter()
    for t in texts:
        df.update(tok.set(t))
    return dict(df)


def gram_count_for_length(word_len: int, q: int = 3, pad: bool = True) -> int:
    """Number of q-grams produced for a word of ``word_len`` characters."""
    if word_len <= 0:
        return 0
    if pad and q > 1:
        return word_len + q - 1
    return max(1, word_len - q + 1)


def length_bucket(token_count: int, buckets: Sequence[Tuple[int, int]]) -> int:
    """Index of the (lo, hi) bucket containing ``token_count``, or -1."""
    for i, (lo, hi) in enumerate(buckets):
        if lo <= token_count <= hi:
            return i
    return -1
