"""High-level facade: build an index once, search it with any algorithm.

:class:`SetSimilaritySearcher` operates on token sets (the library's native
unit); :class:`StringMatcher` wraps it with a tokenizer for the common
data-cleaning workflow of the paper's introduction — matching dirty strings
against a reference table.

>>> from repro import StringMatcher
>>> matcher = StringMatcher(["Main St., Main", "Main St., Maine", "Elm Ave"])
>>> matcher.match("Main St., Mane", threshold=0.5)   # doctest: +SKIP
[("Main St., Maine", 0.87...), ("Main St., Main", 0.79...)]
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # annotation-only: keeps core below algorithms in the DAG
    from ..algorithms.base import AlgorithmResult, SearchResult

from ..storage.invlist import InvertedIndex
from .collection import SetCollection
from .errors import EmptyQueryError
from .properties import effective_threshold
from .query import PreparedQuery
from .similarity import idf_similarity
from .tokenize import QGramTokenizer, Tokenizer
from .topk import TopKResult, TopKSearcher

DEFAULT_ALGORITHM = "sf"

# Bound on first use by _algorithm_factory(); keeps the algorithms layer
# out of core's module-level imports without paying the sys.modules
# lookup of a function-body import on every search.
_make_algorithm = None


def _algorithm_factory():
    # Late registry lookup, same rationale as in join.py: dispatch to
    # the algorithms layer without a module-level upward import.
    global _make_algorithm
    if _make_algorithm is None:
        from ..algorithms.base import make_algorithm

        _make_algorithm = make_algorithm
    return _make_algorithm


class SetSimilaritySearcher:
    """An inverted index over a collection plus algorithm dispatch.

    Parameters mirror :class:`~repro.storage.invlist.InvertedIndex`; by
    default all auxiliary structures are built so every algorithm can run.
    Pass ``with_hash_index=False`` / ``with_id_lists=False`` to save space
    when TA-style / sort-by-id search is not needed.
    """

    def __init__(
        self,
        collection: SetCollection,
        with_id_lists: bool = True,
        with_skip_lists: bool = True,
        with_hash_index: bool = True,
        **index_options: Any,
    ) -> None:
        self.collection = collection
        self.index = InvertedIndex(
            collection,
            with_id_lists=with_id_lists,
            with_skip_lists=with_skip_lists,
            with_hash_index=with_hash_index,
            **index_options,
        )
        self._topk = TopKSearcher(self.index, use_skip_lists=with_skip_lists)

    # ------------------------------------------------------------------
    def prepare(self, tokens: Sequence[str]) -> PreparedQuery:
        return PreparedQuery(tokens, self.collection.stats)

    def search(
        self,
        tokens: Sequence[str],
        threshold: float,
        algorithm: str = DEFAULT_ALGORITHM,
        **algorithm_options: Any,
    ) -> AlgorithmResult:
        """Selection: all sets with IDF similarity >= threshold."""
        query = self.prepare(tokens)
        return self.search_prepared(
            query, threshold, algorithm, **algorithm_options
        )

    def search_prepared(
        self,
        query: PreparedQuery,
        threshold: float,
        algorithm: str = DEFAULT_ALGORITHM,
        **algorithm_options: Any,
    ) -> AlgorithmResult:
        if algorithm == "auto":
            from .analysis import choose_algorithm

            algorithm = choose_algorithm(self.index, query, threshold)
        alg = _algorithm_factory()(
            algorithm, self.index, **algorithm_options
        )
        return alg.search(query, threshold)

    def top_k(self, tokens: Sequence[str], k: int) -> TopKResult:
        """The k most similar sets (future-work extension, Section X)."""
        return self._topk.search(self.prepare(tokens), k)

    def search_or_suggest(
        self,
        tokens: Sequence[str],
        threshold: float,
        suggestions: int = 3,
        algorithm: str = DEFAULT_ALGORITHM,
    ) -> Tuple[List[SearchResult], bool]:
        """Threshold selection with a did-you-mean fallback.

        Returns ``(results, matched)``: the threshold answers with
        ``matched=True`` when any exist, otherwise the top
        ``suggestions`` below-threshold candidates with ``matched=False``
        (empty when nothing overlaps at all).
        """
        result = self.search(tokens, threshold, algorithm)
        if result.results:
            return list(result.results), True
        return list(self.top_k(tokens, suggestions).results), False

    def brute_force(
        self, tokens: Sequence[str], threshold: float
    ) -> List[SearchResult]:
        """Reference answer by scoring every set — used by tests and for
        small collections where index overhead is not worth it."""
        from ..algorithms.base import SearchResult

        stats = self.collection.stats
        try:
            query = self.prepare(tokens)
        except EmptyQueryError:
            return []
        cutoff = effective_threshold(threshold)
        out: List[SearchResult] = []
        lengths = self.collection.lengths()
        for rec in self.collection:
            score = idf_similarity(
                query.tokens,
                rec.tokens,
                stats,
                q_length=query.length,
                s_length=lengths[rec.set_id],
            )
            if score >= cutoff:
                out.append(SearchResult(rec.set_id, score))
        out.sort(key=lambda r: (-r.score, r.set_id))
        return out


class StringMatcher:
    """String-level convenience API for data-cleaning lookups.

    Builds a q-gram searcher over a list of strings; ``match`` returns
    ``(string, score)`` pairs above the threshold, best first.
    """

    def __init__(
        self,
        strings: Sequence[str],
        tokenizer: Optional[Tokenizer] = None,
        **searcher_options: Any,
    ) -> None:
        self.tokenizer = tokenizer or QGramTokenizer(q=3)
        self.strings = list(strings)
        self.collection = SetCollection.from_strings(
            self.strings, self.tokenizer
        )
        self.searcher = SetSimilaritySearcher(
            self.collection, **searcher_options
        )

    def match(
        self,
        query: str,
        threshold: float,
        algorithm: str = DEFAULT_ALGORITHM,
    ) -> List[Tuple[str, float]]:
        """All stored strings with similarity >= threshold, best first."""
        tokens = self.tokenizer.tokens(query)
        if not tokens:
            return []
        result = self.searcher.search(tokens, threshold, algorithm)
        return [
            (self.collection.payload(r.set_id), r.score)
            for r in result.results
        ]

    def best_matches(self, query: str, k: int = 5) -> List[Tuple[str, float]]:
        """The k most similar stored strings (top-k extension)."""
        tokens = self.tokenizer.tokens(query)
        if not tokens:
            return []
        result = self.searcher.top_k(tokens, k)
        return [
            (self.collection.payload(r.set_id), r.score)
            for r in result.results
        ]
