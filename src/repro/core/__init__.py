"""Core concepts: tokenization, weighting, similarity, queries, properties."""

from .collection import SetCollection, SetRecord, collection_summary
from .errors import (
    ConfigurationError,
    EmptyQueryError,
    IndexNotBuiltError,
    InvalidThresholdError,
    ReproError,
    SchemaError,
    StorageError,
    UnknownAlgorithmError,
)
from .properties import (
    frontier_threshold,
    lambda_cutoffs,
    length_bounds,
    magnitude_upper_bound,
    tf_boosted_length_bounds,
    validate_threshold,
    within_length_bounds,
)
from .query import PreparedQuery, prepare
from .similarity import (
    Bm25Measure,
    Bm25PrimeMeasure,
    IdfMeasure,
    SimilarityMeasure,
    TfIdfMeasure,
    bm25_score,
    idf_similarity,
    measure_from_name,
    tfidf_cosine,
)
from .tokenize import (
    QGramTokenizer,
    Tokenizer,
    WordQGramTokenizer,
    WordTokenizer,
    jaccard,
    tokenizer_from_name,
)
from .weights import IdfStatistics, contribution, normalized_length

__all__ = [
    "SetCollection",
    "SetRecord",
    "collection_summary",
    "ConfigurationError",
    "EmptyQueryError",
    "IndexNotBuiltError",
    "InvalidThresholdError",
    "ReproError",
    "SchemaError",
    "StorageError",
    "UnknownAlgorithmError",
    "frontier_threshold",
    "lambda_cutoffs",
    "length_bounds",
    "magnitude_upper_bound",
    "tf_boosted_length_bounds",
    "validate_threshold",
    "within_length_bounds",
    "PreparedQuery",
    "prepare",
    "Bm25Measure",
    "Bm25PrimeMeasure",
    "IdfMeasure",
    "SimilarityMeasure",
    "TfIdfMeasure",
    "bm25_score",
    "idf_similarity",
    "measure_from_name",
    "tfidf_cosine",
    "QGramTokenizer",
    "Tokenizer",
    "WordQGramTokenizer",
    "WordTokenizer",
    "jaccard",
    "tokenizer_from_name",
    "IdfStatistics",
    "contribution",
    "normalized_length",
]
