"""Edit-distance selection via q-gram count filtering (related-work baseline).

The paper's Related Work section surveys edit-distance indexes ([6], [15],
[19]); the classic bridge between q-grams and edit distance — used by the
Gravano et al. approach the SQL baseline descends from — is the *count
filter*: one edit operation destroys at most ``q`` of a string's (padded)
q-grams, so

    ed(x, y) <= k  =>  |G(x) ∩ G(y)|  >=  max(|G(x)|, |G(y)|) - k·q

(with multiset gram semantics; the set-semantics bound used here is weaker
but still complete).  This module implements:

* :func:`levenshtein` — the textbook DP distance (with a band optimization
  for the common small-k case),
* :class:`EditDistanceSearcher` — filter-and-verify selection: candidates
  from the q-gram inverted index via the count filter, finished with exact
  (banded) distance computation.

It is deliberately simple — its role is the paper's framing that TF/IDF-
style weighted measures and edit distance address different notions of
similarity, and a downstream user frequently wants both.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.tokenize import QGramTokenizer
from ..storage.pages import IOStats


def levenshtein(a: str, b: str, max_distance: Optional[int] = None) -> int:
    """Edit distance between two strings.

    With ``max_distance`` set, computation is banded and returns
    ``max_distance + 1`` as soon as the true distance provably exceeds the
    bound — the standard verification fast path.
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    if max_distance is not None and len(b) - len(a) > max_distance:
        return max_distance + 1
    previous = list(range(len(a) + 1))
    for i, cb in enumerate(b, start=1):
        current = [i]
        row_min = i
        for j, ca in enumerate(a, start=1):
            cost = (
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + (ca != cb),
            )
            best = min(cost)
            current.append(best)
            if best < row_min:
                row_min = best
        if max_distance is not None and row_min > max_distance:
            return max_distance + 1
        previous = current
    return previous[-1]


class EditDistanceSearcher:
    """q-gram count filter + banded verification for edit-distance lookups."""

    def __init__(self, strings: Sequence[str], q: int = 3) -> None:
        if q < 1:
            raise ConfigurationError("q must be >= 1")
        self.q = q
        self.strings = list(strings)
        self._tokenizer = QGramTokenizer(q=q)
        # Multiset gram profiles, for the tight count filter.
        self._profiles: List[Counter] = [
            Counter(self._tokenizer.tokens(s)) for s in self.strings
        ]
        self._inverted: Dict[str, List[int]] = {}
        for idx, profile in enumerate(self._profiles):
            for gram in profile:
                self._inverted.setdefault(gram, []).append(idx)

    # ------------------------------------------------------------------
    def count_filter_bound(self, query_grams: int, candidate_grams: int, k: int) -> int:
        """Minimum multiset gram overlap required for ``ed <= k``."""
        return max(query_grams, candidate_grams) - k * self.q

    def search(
        self, query: str, k: int, stats: Optional[IOStats] = None
    ) -> List[Tuple[str, int]]:
        """All stored strings within edit distance ``k``, nearest first.

        Returns ``(string, distance)`` pairs.  ``k = 0`` degenerates to
        exact match.  Completeness follows from the count filter; strings
        sharing no gram with the query are only reachable when the filter
        threshold is non-positive, in which case every string is verified.
        """
        if k < 0:
            raise ConfigurationError("k must be >= 0")
        query_profile = Counter(self._tokenizer.tokens(query))
        query_grams = sum(query_profile.values())

        overlap: Dict[int, int] = {}
        for gram, count in query_profile.items():
            for idx in self._inverted.get(gram, ()):
                if stats is not None:
                    stats.charge_element()
                overlap[idx] = overlap.get(idx, 0) + min(
                    count, self._profiles[idx][gram]
                )

        results: List[Tuple[str, int]] = []
        for idx, candidate in enumerate(self.strings):
            candidate_grams = sum(self._profiles[idx].values())
            needed = self.count_filter_bound(query_grams, candidate_grams, k)
            if needed > 0 and overlap.get(idx, 0) < needed:
                continue  # provably more than k edits away
            distance = levenshtein(query, candidate, max_distance=k)
            if distance <= k:
                results.append((candidate, distance))
        results.sort(key=lambda pair: (pair[1], pair[0]))
        return results

    def candidates_checked(self, query: str, k: int) -> Tuple[int, int]:
        """(verified, total) — how selective the count filter was."""
        query_profile = Counter(self._tokenizer.tokens(query))
        query_grams = sum(query_profile.values())
        overlap: Dict[int, int] = {}
        for gram, count in query_profile.items():
            for idx in self._inverted.get(gram, ()):
                overlap[idx] = overlap.get(idx, 0) + min(
                    count, self._profiles[idx][gram]
                )
        verified = 0
        for idx in range(len(self.strings)):
            candidate_grams = sum(self._profiles[idx].values())
            needed = self.count_filter_bound(query_grams, candidate_grams, k)
            if needed <= 0 or overlap.get(idx, 0) >= needed:
                verified += 1
        return verified, len(self.strings)
