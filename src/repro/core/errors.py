"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
being able to distinguish configuration mistakes from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """An invalid parameter or an inconsistent combination of options."""


class InvalidThresholdError(ConfigurationError):
    """A similarity threshold outside the half-open interval (0, 1]."""

    def __init__(self, threshold: float) -> None:
        super().__init__(
            f"threshold must satisfy 0 < tau <= 1, got {threshold!r}"
        )
        self.threshold = threshold


class EmptyQueryError(ReproError):
    """A query that produced no tokens (nothing to search for)."""


class UnknownAlgorithmError(ConfigurationError):
    """A selection-algorithm name that the registry does not know."""

    def __init__(self, name: str, known: list) -> None:
        super().__init__(
            f"unknown algorithm {name!r}; known algorithms: {sorted(known)}"
        )
        self.name = name
        self.known = sorted(known)


class IndexNotBuiltError(ReproError):
    """An operation that requires a built index was attempted before build."""


class StorageError(ReproError):
    """A failure in the simulated storage layer (pages, hashing, trees)."""


class SchemaError(ReproError):
    """A relational operation referenced a column that does not exist."""
