"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
being able to distinguish configuration mistakes from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """An invalid parameter or an inconsistent combination of options."""


class InvalidThresholdError(ConfigurationError):
    """A similarity threshold outside the half-open interval (0, 1]."""

    def __init__(self, threshold: float) -> None:
        super().__init__(
            f"threshold must satisfy 0 < tau <= 1, got {threshold!r}"
        )
        self.threshold = threshold


class EmptyQueryError(ReproError):
    """A query that produced no tokens (nothing to search for)."""


class UnknownAlgorithmError(ConfigurationError):
    """A selection-algorithm name that the registry does not know."""

    def __init__(self, name: str, known: list) -> None:
        super().__init__(
            f"unknown algorithm {name!r}; known algorithms: {sorted(known)}"
        )
        self.name = name
        self.known = sorted(known)


class IndexNotBuiltError(ReproError):
    """An operation that requires a built index was attempted before build."""


class StorageError(ReproError):
    """A failure in the simulated storage layer (pages, hashing, trees)."""


class CorruptIndexError(StorageError):
    """A persisted index failed integrity checks and could not be recovered.

    ``report`` is the :class:`repro.storage.persist.RecoveryReport`
    describing exactly which generations and components were damaged and
    what recovery was attempted (typed loosely here: ``core`` sits below
    ``storage`` in the layering DAG).
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class ServiceOverloadError(ReproError):
    """Admission control shed this query: the service queue is full.

    ``retry_after`` is the suggested back-off in seconds (surfaced as the
    HTTP ``Retry-After`` header by the service's HTTP front end).
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class CircuitOpenError(ReproError):
    """The service's circuit breaker is open: the backend is failing fast.

    Raised without touching the backend while the breaker cools down;
    callers should treat it like overload (retry later).
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class SchemaError(ReproError):
    """A relational operation referenced a column that does not exist."""
