"""Selection under tf-based measures: TF/IDF, BM25 and BM25'.

Section IV closes with the observation that TF/IDF and BM25 "follow looser
versions of the aforementioned properties (by associating with every token a
maximum tf component and boosting all bounds accordingly)", so the same
index machinery can serve them.  This module implements that as
filter-and-verify on top of the IDF inverted index:

1. **Filter** — gather candidate ids from the query tokens' inverted lists.
   For TF/IDF cosine the Theorem 1 window can be kept, boosted by the
   corpus's maximum term frequency: with every tf capped at ``max_tf``,

       I_tf(q, s) >= tau  =>  tau·len(q)/max_tf² <= len(s) <= max_tf²·len(q)/tau

   (both derivations follow Theorem 1's proof with each matched token's
   weight inflated by at most ``max_tf`` on each side).  For BM25/BM25' the
   normalization does not factor through the set-level lengths, so the
   filter keeps every overlapping set — still complete, merely less pruned.

2. **Verify** — score each candidate exactly with the requested measure and
   keep those at or above ``tau``.

In the common relational case the paper motivates (tf = 1 almost
everywhere), ``max_tf`` is 1 or 2 and the boosted window stays tight.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

from ..algorithms.base import AlgorithmResult, SearchResult
from ..storage.invlist import InvertedIndex
from ..storage.pages import IOStats
from .collection import SetCollection
from .errors import EmptyQueryError
from .properties import effective_threshold, length_bounds
from .query import PreparedQuery
from .similarity import SimilarityMeasure, measure_from_name
from .weights import tf_counts

_WINDOWED_MEASURES = {"tfidf", "idf"}


class WeightedSelector:
    """Filter-and-verify selection for tf-based similarity measures.

    Parameters
    ----------
    collection:
        The database.  Multiset counts recorded at collection build time are
        used both for ``max_tf`` and for exact verification.
    index:
        An existing IDF inverted index over the collection (one is built if
        not supplied; skip lists are used for the boosted window seek).
    """

    def __init__(
        self,
        collection: SetCollection,
        index: Optional[InvertedIndex] = None,
    ) -> None:
        self.collection = collection
        self.index = index or InvertedIndex(
            collection, with_id_lists=False, with_hash_index=False
        )
        self.max_tf = max(
            (
                max(rec.counts.values(), default=1)
                for rec in collection
            ),
            default=1,
        )

    # ------------------------------------------------------------------
    def search(
        self,
        tokens: List[str],
        tau: float,
        measure: str = "tfidf",
        **measure_options,
    ) -> AlgorithmResult:
        """All sets with ``measure`` similarity >= tau (exact).

        ``measure`` is one of ``tfidf``, ``bm25``, ``bm25p`` (or ``idf``,
        which degenerates to the native machinery but is accepted for
        uniformity).  ``tokens`` may be a multiset; term frequencies are
        taken from it.
        """
        cutoff = effective_threshold(tau)
        stats = self.collection.stats
        scorer = measure_from_name(measure, stats, **measure_options)
        io = IOStats()
        started = time.perf_counter()

        q_counts = tf_counts(list(tokens))
        if not q_counts:
            raise EmptyQueryError("query produced no tokens")
        query = PreparedQuery(list(q_counts), stats)

        candidates, elements_total = self._gather(query, tau, measure, io)
        results = self._verify(q_counts, candidates, scorer, cutoff)
        elapsed = time.perf_counter() - started
        return AlgorithmResult(
            algorithm=f"weighted-{measure}",
            results=results,
            stats=io,
            elements_total=elements_total,
            wall_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    def _window(self, query: PreparedQuery, tau: float, measure: str):
        if measure in _WINDOWED_MEASURES:
            lo, hi = length_bounds(query.length, tau)
            boost = float(self.max_tf) ** 2
            return lo / boost, hi * boost
        return 0.0, float("inf")

    def _gather(
        self,
        query: PreparedQuery,
        tau: float,
        measure: str,
        io: IOStats,
    ):
        """Candidate ids from the inverted lists, window-restricted."""
        lo, hi = self._window(query, tau, measure)
        candidates: Set[int] = set()
        elements_total = 0
        for token in query.tokens:
            cursor = self.index.cursor(token, io)
            if cursor is None:
                continue
            elements_total += len(cursor)
            cursor.seek_length_ge(lo)
            while not cursor.exhausted():
                length, set_id = cursor.peek()
                if length > hi:
                    break
                cursor.next()
                candidates.add(set_id)
        return candidates, elements_total

    def _verify(
        self,
        q_counts: Dict[str, int],
        candidates: Set[int],
        scorer: SimilarityMeasure,
        cutoff: float,
    ) -> List[SearchResult]:
        results: List[SearchResult] = []
        for set_id in candidates:
            score = scorer.score(q_counts, self.collection[set_id].counts)
            if score >= cutoff:
                results.append(SearchResult(set_id, score))
        return results

    # ------------------------------------------------------------------
    def brute_force(
        self,
        tokens: List[str],
        tau: float,
        measure: str = "tfidf",
        **measure_options,
    ) -> List[SearchResult]:
        """Reference scoring of the whole collection (tests, small data)."""
        cutoff = effective_threshold(tau)
        scorer = measure_from_name(
            measure, self.collection.stats, **measure_options
        )
        q_counts = tf_counts(list(tokens))
        out = [
            SearchResult(rec.set_id, scorer.score(q_counts, rec.counts))
            for rec in self.collection
        ]
        out = [r for r in out if r.score >= cutoff]
        out.sort(key=lambda r: (-r.score, r.set_id))
        return out
