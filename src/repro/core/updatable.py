"""Updatable search over a growing collection — epoch-based statistics.

The paper's indexes are static for a reason: every idf weight depends on
the global corpus (``N`` and each ``N(t)``), so inserting one set shifts
*every* normalized length and every stored posting order.  Real deployments
still need inserts; the standard resolution (used by search engines) is
*epoching*: scores are defined against a statistics snapshot, new data is
absorbed into a small delta index immediately, and a rebuild refreshes the
snapshot when the delta grows past a bound.

:class:`UpdatableSearcher` implements exactly that contract:

* ``add(tokens, payload)`` — visible to the *next* query, O(delta rebuild);
* scores are always computed with the **current epoch's statistics** (the
  corpus as of the last :meth:`rebuild`); this is documented, observable
  (:attr:`epoch`), and tested — after ``rebuild()`` results equal a fresh
  build over everything;
* ``auto_rebuild_fraction`` — rebuild automatically once the delta exceeds
  that fraction of the base (default 25 %), bounding the drift window.

Queries fan out to the base index and the delta index and merge, so search
cost stays near the static index's until a rebuild amortizes the inserts.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..algorithms.base import AlgorithmResult, SearchResult
from ..storage.pages import IOStats
from .collection import SetCollection
from .errors import ConfigurationError
from .search import SetSimilaritySearcher


class UpdatableSearcher:
    """Insert-friendly wrapper: base index + delta index + epoch rebuilds."""

    def __init__(
        self,
        initial_sets: Optional[Sequence[Sequence[str]]] = None,
        payloads: Optional[Sequence[Any]] = None,
        auto_rebuild_fraction: float = 0.25,
    ) -> None:
        if not (0.0 < auto_rebuild_fraction <= 1.0):
            raise ConfigurationError(
                "auto_rebuild_fraction must be in (0, 1]"
            )
        self.auto_rebuild_fraction = auto_rebuild_fraction
        self.epoch = 0
        self._all_tokens: List[List[str]] = []
        self._all_payloads: List[Any] = []
        if initial_sets:
            for i, tokens in enumerate(initial_sets):
                payload = payloads[i] if payloads is not None else None
                self._all_tokens.append(list(tokens))
                self._all_payloads.append(payload)
        self._base_size = len(self._all_tokens)
        self._base = self._build(self._all_tokens, self._all_payloads)
        self._delta: Optional[SetSimilaritySearcher] = None

    # ------------------------------------------------------------------
    @staticmethod
    def _build(token_lists, payloads) -> SetSimilaritySearcher:
        coll = SetCollection()
        for tokens, payload in zip(token_lists, payloads):
            coll.add(tokens, payload=payload)
        coll.freeze()
        return SetSimilaritySearcher(
            coll, with_id_lists=False, with_hash_index=False
        )

    @property
    def stats_epoch(self):
        """The statistics snapshot every score is computed against."""
        return self._base.collection.stats

    def __len__(self) -> int:
        return len(self._all_tokens)

    @property
    def pending(self) -> int:
        """Sets inserted since the current epoch's snapshot."""
        return len(self._all_tokens) - self._base_size

    @property
    def version(self):
        """Cache-invalidation token: changes on every insert and rebuild.

        The service layer keys its result cache on this value, so any
        mutation — an insert absorbed by the delta index or an epoch
        rebuild — invalidates stale cached answers."""
        return (self.epoch, len(self._all_tokens))

    # ------------------------------------------------------------------
    def add(self, tokens: Sequence[str], payload: Any = None) -> int:
        """Insert one set; returns its id.  Visible to the next query."""
        set_id = len(self._all_tokens)
        self._all_tokens.append(list(tokens))
        self._all_payloads.append(payload)
        self._rebuild_delta()
        if self.pending >= self.auto_rebuild_fraction * max(self._base_size, 1):
            self.rebuild()
        return set_id

    def _rebuild_delta(self) -> None:
        """Delta index over pending sets, scored with the epoch's stats.

        Ids in the delta collection are offset by the base size; queries
        translate them back.
        """
        pending_tokens = self._all_tokens[self._base_size :]
        pending_payloads = self._all_payloads[self._base_size :]
        if not pending_tokens:
            self._delta = None
            return
        coll = _EpochCollection(self._base.collection.stats)
        for tokens, payload in zip(pending_tokens, pending_payloads):
            coll.add(tokens, payload=payload)
        coll.freeze()
        self._delta = SetSimilaritySearcher(
            coll, with_id_lists=False, with_hash_index=False
        )

    def rebuild(self) -> int:
        """Start a new epoch: fold all pending sets into the base index and
        refresh the statistics snapshot.  Returns the new epoch number."""
        self._base = self._build(self._all_tokens, self._all_payloads)
        self._base_size = len(self._all_tokens)
        self._delta = None
        self.epoch += 1
        return self.epoch

    # ------------------------------------------------------------------
    def search(
        self, tokens: Sequence[str], threshold: float,
        algorithm: str = "sf",
    ) -> AlgorithmResult:
        """Selection over base + pending sets (epoch-stats scoring)."""
        base_result = self._base.search(tokens, threshold, algorithm)
        if self._delta is None:
            return base_result
        delta_result = self._delta.search(tokens, threshold, algorithm)
        merged = list(base_result.results) + [
            SearchResult(r.set_id + self._base_size, r.score)
            for r in delta_result.results
        ]
        stats = IOStats()
        stats.add(base_result.stats)
        stats.add(delta_result.stats)
        return AlgorithmResult(
            algorithm=base_result.algorithm,
            results=merged,
            stats=stats,
            elements_total=(
                base_result.elements_total + delta_result.elements_total
            ),
            wall_seconds=(
                base_result.wall_seconds + delta_result.wall_seconds
            ),
            peak_candidates=max(
                base_result.peak_candidates, delta_result.peak_candidates
            ),
        )

    def payload(self, set_id: int) -> Any:
        return self._all_payloads[set_id]


class _EpochCollection(SetCollection):
    """A collection whose statistics are pinned to an existing snapshot."""

    def __init__(self, pinned_stats) -> None:
        super().__init__()
        self._pinned = pinned_stats

    @property
    def stats(self):
        self._require_frozen()
        return self._pinned
