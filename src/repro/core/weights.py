"""idf statistics, normalized set lengths, and per-token contributions.

This module implements the weighting machinery of Section II of the paper:

* ``idf(t) = log2(1 + N / N(t))`` where ``N`` is the number of sets in the
  database and ``N(t)`` the number of sets containing token ``t``;
* the *normalized length* ``len(s) = sqrt(Σ_{t∈s} idf(t)²)``;
* the per-token contribution ``w_i(s) = idf(q^i)² / (len(s)·len(q))`` used by
  every list-merging algorithm.

Tokens never seen in the database get the maximum idf (``N(t)`` treated as 1)
so that unseen query tokens are maximally discriminating, matching the usual
information-retrieval convention; this choice only affects query lengths since
unseen tokens have empty inverted lists.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, Mapping, Optional, Sequence

from .errors import ConfigurationError

__all__ = [
    "IdfStatistics",
    "normalized_length",
    "contribution",
]


class IdfStatistics:
    """Corpus-level token statistics: document frequencies and idf weights.

    Instances are immutable after construction.  Build one with
    :meth:`from_sets` (counting each distinct token once per set, matching
    the IDF measure's set semantics) or supply explicit document frequencies.

    Parameters
    ----------
    num_sets:
        ``N``, the total number of sets in the database.
    doc_freq:
        Mapping from token to ``N(t)``, the number of sets containing it.
    avg_set_size:
        Mean number of distinct tokens per set; needed only by BM25.
    """

    __slots__ = ("num_sets", "_doc_freq", "avg_set_size", "_idf_cache")

    def __init__(
        self,
        num_sets: int,
        doc_freq: Mapping[str, int],
        avg_set_size: Optional[float] = None,
    ) -> None:
        if num_sets < 0:
            raise ConfigurationError("num_sets must be non-negative")
        for token, df in doc_freq.items():
            if df < 1:
                raise ConfigurationError(
                    f"document frequency of {token!r} must be >= 1, got {df}"
                )
        self.num_sets = num_sets
        self._doc_freq = dict(doc_freq)
        self.avg_set_size = avg_set_size
        self._idf_cache: Dict[str, float] = {}

    @classmethod
    def from_sets(cls, sets: Iterable[Iterable[str]]) -> "IdfStatistics":
        """Count document frequencies over an iterable of token collections.

        Each collection is reduced to its distinct tokens before counting, so
        multisets and sets produce identical statistics (as required by the
        IDF measure, which ignores ``tf``).
        """
        df: Counter = Counter()
        n = 0
        total_size = 0
        for s in sets:
            distinct = frozenset(s)
            df.update(distinct)
            n += 1
            total_size += len(distinct)
        avg = (total_size / n) if n else None
        return cls(num_sets=n, doc_freq=df, avg_set_size=avg)

    def doc_freq(self, token: str) -> int:
        """``N(t)``; unseen tokens are treated as appearing in one set."""
        return self._doc_freq.get(token, 1)

    def __contains__(self, token: str) -> bool:
        return token in self._doc_freq

    def __len__(self) -> int:
        return len(self._doc_freq)

    def tokens(self):
        """All tokens with recorded document frequencies."""
        return self._doc_freq.keys()

    def idf(self, token: str) -> float:
        """``idf(t) = log2(1 + N / N(t))`` (paper, Section II)."""
        cached = self._idf_cache.get(token)
        if cached is not None:
            return cached
        n = max(self.num_sets, 1)
        value = math.log2(1.0 + n / self.doc_freq(token))
        self._idf_cache[token] = value
        return value

    def idf_squared(self, token: str) -> float:
        v = self.idf(token)
        return v * v

    def length(self, tokens: Iterable[str]) -> float:
        """Normalized length ``len(s) = sqrt(Σ idf(t)²)`` over distinct tokens."""
        return normalized_length(tokens, self)

    def __repr__(self) -> str:
        return (
            f"IdfStatistics(num_sets={self.num_sets}, "
            f"vocabulary={len(self._doc_freq)})"
        )


def normalized_length(tokens: Iterable[str], stats: IdfStatistics) -> float:
    """``len(s) = sqrt(Σ_{t∈s} idf(t)²)`` over the *distinct* tokens of ``s``.

    The sum runs over tokens in sorted order so two equal sets always get
    bit-identical lengths regardless of construction order — which keeps
    ``tau = 1`` selections and the Theorem 1 window numerically stable.
    """
    total = 0.0
    for t in sorted(frozenset(tokens)):
        v = stats.idf(t)
        total += v * v
    return math.sqrt(total)


def contribution(
    token: str,
    set_length: float,
    query_length: float,
    stats: IdfStatistics,
) -> float:
    """Per-token score contribution ``w_i(s) = idf(t)² / (len(s)·len(q))``.

    Returns 0.0 when either length is zero (empty set or empty query), which
    keeps degenerate inputs from raising and matches the convention that an
    empty set matches nothing.
    """
    denom = set_length * query_length
    if denom <= 0.0:
        return 0.0
    return stats.idf_squared(token) / denom


def tf_counts(tokens: Sequence[str]) -> Dict[str, int]:
    """Term-frequency view of a token sequence (used by TF/IDF and BM25)."""
    return dict(Counter(tokens))
