"""Unweighted set similarity: cosine, Jaccard and Dice selection.

A pleasant consequence of the paper's formulation: with *uniform* token
weights (idf ≡ 1) the IDF measure degenerates to the classic set cosine

    C(q, s) = |q ∩ s| / sqrt(|q| · |s|),

and every Section IV property — order preservation, magnitude boundedness
and the Theorem 1 length window (now on sqrt-cardinalities) — holds
verbatim.  So the whole algorithm suite runs unweighted set similarity
selections unchanged; this module provides the uniform statistics, a
:class:`CosineSetSearcher`, and reductions for Jaccard and Dice:

* ``J(q,s) >= tau  =>  C(q,s) >= 2·tau/(1+tau)``
  (from ``|∩| >= tau(|q|+|s|)/(1+tau)`` and AM-GM), and
* ``D(q,s) >= tau  =>  C(q,s) >= tau``
  (``2|∩|/(|q|+|s|) <= |∩|/sqrt(|q||s|)``),

so a cosine selection at the reduced threshold is a complete candidate
filter, finished by exact verification.
"""

from __future__ import annotations

import math
import time
from typing import Iterable, List, Sequence

from ..algorithms.base import AlgorithmResult, SearchResult
from .collection import SetCollection
from .errors import ConfigurationError
from .properties import effective_threshold, validate_threshold
from .search import SetSimilaritySearcher
from .weights import IdfStatistics


class UniformStatistics(IdfStatistics):
    """idf ≡ 1 for every token: turns IDF into plain set cosine."""

    def idf(self, token: str) -> float:  # noqa: D102 - trivially uniform
        return 1.0

    def idf_squared(self, token: str) -> float:
        return 1.0


class UnweightedSetCollection(SetCollection):
    """A SetCollection whose statistics are uniform (cosine semantics).

    Lengths become ``sqrt(|s|)`` and every index/algorithm built on top
    computes unweighted cosine similarity.
    """

    @property
    def stats(self) -> IdfStatistics:
        self._require_frozen()
        if self._stats is None:
            self._stats = UniformStatistics.from_sets(
                rec.tokens for rec in self
            )
        return self._stats


def jaccard_score(q: frozenset, s: frozenset) -> float:
    union = len(q | s)
    return len(q & s) / union if union else 1.0


def dice_score(q: frozenset, s: frozenset) -> float:
    denom = len(q) + len(s)
    return 2 * len(q & s) / denom if denom else 1.0


def cosine_score(q: frozenset, s: frozenset) -> float:
    denom = math.sqrt(len(q) * len(s))
    return len(q & s) / denom if denom else 1.0


_VERIFIERS = {
    "cosine": cosine_score,
    "jaccard": jaccard_score,
    "dice": dice_score,
}


def reduced_cosine_threshold(measure: str, tau: float) -> float:
    """The cosine threshold implied by ``measure >= tau`` (complete filter)."""
    validate_threshold(tau)
    if measure == "cosine":
        return tau
    if measure == "jaccard":
        return 2.0 * tau / (1.0 + tau)
    if measure == "dice":
        return tau
    raise ConfigurationError(
        f"unknown unweighted measure {measure!r}; "
        f"choose from {sorted(_VERIFIERS)}"
    )


class CosineSetSearcher:
    """Unweighted set similarity selection over the paper's machinery.

    Builds a :class:`SetSimilaritySearcher` over a uniform-weight view of
    the sets; ``search`` answers cosine selections natively with any of the
    seven algorithms, and Jaccard/Dice selections by threshold reduction +
    exact verification.
    """

    def __init__(
        self,
        token_sets: Iterable[Iterable[str]],
        **searcher_options,
    ) -> None:
        coll = UnweightedSetCollection()
        for tokens in token_sets:
            coll.add(list(tokens))
        coll.freeze()
        self.collection = coll
        self.searcher = SetSimilaritySearcher(coll, **searcher_options)

    def search(
        self,
        tokens: Sequence[str],
        tau: float,
        measure: str = "cosine",
        algorithm: str = "sf",
    ) -> AlgorithmResult:
        """All sets with the chosen unweighted similarity >= tau (exact)."""
        cosine_tau = reduced_cosine_threshold(measure, tau)
        base = self.searcher.search(tokens, cosine_tau, algorithm=algorithm)
        if measure == "cosine":
            return base
        verifier = _VERIFIERS[measure]
        cutoff = effective_threshold(tau)
        q = frozenset(tokens)
        started = time.perf_counter()
        verified: List[SearchResult] = []
        for r in base.results:
            score = verifier(q, self.collection[r.set_id].tokens)
            if score >= cutoff:
                verified.append(SearchResult(r.set_id, score))
        elapsed = time.perf_counter() - started
        return AlgorithmResult(
            algorithm=f"{measure}-via-{base.algorithm}",
            results=verified,
            stats=base.stats,
            elements_total=base.elements_total,
            wall_seconds=base.wall_seconds + elapsed,
            peak_candidates=base.peak_candidates,
        )

    def brute_force(
        self, tokens: Sequence[str], tau: float, measure: str = "cosine"
    ) -> List[SearchResult]:
        """Exhaustive reference for tests and tiny collections."""
        verifier = _VERIFIERS.get(measure)
        if verifier is None:
            raise ConfigurationError(
                f"unknown unweighted measure {measure!r}"
            )
        cutoff = effective_threshold(tau)
        q = frozenset(tokens)
        out = [
            SearchResult(rec.set_id, verifier(q, rec.tokens))
            for rec in self.collection
        ]
        out = [r for r in out if r.score >= cutoff]
        out.sort(key=lambda r: (-r.score, r.set_id))
        return out
