"""Set similarity self-join built on the selection primitive.

The paper positions selections against the better-studied *join* operators
([1], [2], [3]); a library shipping fast selections should also answer the
join — "find all pairs with similarity >= tau" — since data cleaning
usually wants duplicate *pairs/clusters*, not one lookup.

The join here runs one selection per set, in increasing normalized-length
order, exploiting Theorem 1 both ways:

* symmetry dedup — each selection keeps only partners with a larger
  ``(len, id)`` key, so every pair is emitted exactly once;
* the per-probe window is the *intersection* of the probe's Theorem 1
  window with "longer than me", i.e. ``[len(s), len(s)/tau]``.

On top of the pairs, :func:`similarity_clusters` produces the
connected-component clustering commonly used for duplicate grouping
(union-find), which the data-cleaning example consumes.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Tuple

from ..core.collection import SetCollection
from ..core.errors import EmptyQueryError
from ..core.properties import validate_threshold
from ..core.query import PreparedQuery
from ..core.search import SetSimilaritySearcher
from ..storage.pages import IOStats


class JoinPair:
    """One matched pair: two set ids (``a < b``) and their similarity."""

    __slots__ = ("a", "b", "score")

    def __init__(self, a: int, b: int, score: float) -> None:
        self.a, self.b = (a, b) if a < b else (b, a)
        self.score = score

    def __iter__(self):
        return iter((self.a, self.b, self.score))

    def __eq__(self, other) -> bool:
        return (self.a, self.b) == (other.a, other.b)

    def __hash__(self) -> int:
        return hash((self.a, self.b))

    def __repr__(self) -> str:
        return f"JoinPair({self.a}, {self.b}, {self.score:.4f})"


class JoinResult:
    """All pairs plus aggregate telemetry."""

    def __init__(self, pairs: List[JoinPair], stats: IOStats,
                 wall_seconds: float) -> None:
        self.pairs = sorted(pairs, key=lambda p: (p.a, p.b))
        self.stats = stats
        self.wall_seconds = wall_seconds

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[JoinPair]:
        return iter(self.pairs)

    def as_edges(self) -> List[Tuple[int, int]]:
        return [(p.a, p.b) for p in self.pairs]


def similarity_self_join(
    searcher: SetSimilaritySearcher,
    tau: float,
    algorithm: str = "sf",
) -> JoinResult:
    """All pairs ``(a, b)`` with ``I(a, b) >= tau`` over the searcher's
    collection, each emitted once, with exact scores."""
    # Late registry lookup: the algorithms layer sits above core in the
    # module DAG, so the join resolves its engine at call time instead of
    # pinning a module-level core -> algorithms edge (see docs/static_analysis.md).
    from ..algorithms.base import make_algorithm

    validate_threshold(tau)
    collection = searcher.collection
    stats_total = IOStats()
    started = time.perf_counter()
    pairs: List[JoinPair] = []

    lengths = collection.lengths()
    # Probe in increasing (len, id) order; keep partners strictly "after".
    order = sorted(range(len(collection)), key=lambda i: (lengths[i], i))
    rank = {set_id: pos for pos, set_id in enumerate(order)}

    for set_id in order:
        rec = collection[set_id]
        if not rec.tokens:
            continue
        try:
            query = PreparedQuery(sorted(rec.tokens), collection.stats)
        except EmptyQueryError:
            continue
        # Only partners at least as long as the probe can still be unpaired
        # (shorter ones probed earlier), so raise the window's lower edge
        # to the probe's own length — roughly halving the reads.
        result = make_algorithm(algorithm, searcher.index).search(
            query, tau, length_floor=lengths[set_id]
        )
        stats_total.add(result.stats)
        my_rank = rank[set_id]
        for r in result.results:
            if r.set_id == set_id:
                continue
            if rank[r.set_id] > my_rank:
                pairs.append(JoinPair(set_id, r.set_id, r.score))
    elapsed = time.perf_counter() - started
    return JoinResult(pairs, stats_total, elapsed)


def brute_force_self_join(
    collection: SetCollection, tau: float
) -> List[JoinPair]:
    """O(n²) reference join for tests and tiny inputs."""
    from .properties import effective_threshold
    from .similarity import idf_similarity

    cutoff = effective_threshold(tau)
    stats = collection.stats
    lengths = collection.lengths()
    pairs: List[JoinPair] = []
    n = len(collection)
    for a in range(n):
        ta = collection[a].tokens
        if not ta:
            continue
        for b in range(a + 1, n):
            tb = collection[b].tokens
            if not tb:
                continue
            score = idf_similarity(
                ta, tb, stats,
                q_length=lengths[a], s_length=lengths[b],
            )
            if score >= cutoff:
                pairs.append(JoinPair(a, b, score))
    return sorted(pairs, key=lambda p: (p.a, p.b))


class UnionFind:
    """Path-compressing union-find over dense integer ids."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._size = [1] * n

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True


def similarity_clusters(
    searcher: SetSimilaritySearcher,
    tau: float,
    algorithm: str = "sf",
    min_size: int = 2,
) -> List[List[int]]:
    """Connected components of the similarity graph at threshold ``tau``.

    The standard duplicate-grouping step: any chain of pairwise matches
    lands in one cluster.  Returns clusters of at least ``min_size``
    members, each sorted by id, largest clusters first.
    """
    join = similarity_self_join(searcher, tau, algorithm)
    uf = UnionFind(len(searcher.collection))
    for a, b, _score in join:
        uf.union(a, b)
    groups: Dict[int, List[int]] = {}
    for set_id in range(len(searcher.collection)):
        groups.setdefault(uf.find(set_id), []).append(set_id)
    clusters = [
        sorted(members)
        for members in groups.values()
        if len(members) >= min_size
    ]
    clusters.sort(key=lambda c: (-len(c), c[0]))
    return clusters
