"""Index integrity validation — check every structural invariant loudly.

The algorithms' correctness rests on invariants the index must uphold:

1. every weight-ordered list is sorted by ``(length, id)``;
2. a set's normalized length is **identical in every list** it appears in,
   and matches the collection's computed length (Property 1 collapses
   without this — see the reconstruction tests that tripped over it);
3. every (set, token) membership appears in exactly the right lists —
   no missing and no phantom postings;
4. auxiliary structures agree: the hash index contains exactly the list's
   ids; id-ordered lists hold the same memberships; skip-list seeks land
   at or before every boundary they are asked for.

:func:`validate_index` runs all checks and returns a
:class:`ValidationReport`; ``report.raise_if_invalid()`` turns findings
into :class:`~repro.core.errors.StorageError`.  Intended after loading
foreign data, around persistence, and in stress tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.collection import SetCollection
from ..core.errors import StorageError

if TYPE_CHECKING:  # annotation-only: keeps core below storage in the DAG
    from ..storage.invlist import InvertedIndex


class ValidationReport:
    """Findings from an index validation pass."""

    def __init__(self) -> None:
        self.errors: List[str] = []
        self.checked_tokens = 0
        self.checked_postings = 0

    def add(self, message: str) -> None:
        self.errors.append(message)

    @property
    def valid(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        if self.errors:
            preview = "; ".join(self.errors[:5])
            more = (
                f" (+{len(self.errors) - 5} more)"
                if len(self.errors) > 5
                else ""
            )
            raise StorageError(f"index validation failed: {preview}{more}")

    def __repr__(self) -> str:
        state = "valid" if self.valid else f"{len(self.errors)} errors"
        return (
            f"ValidationReport({state}, tokens={self.checked_tokens}, "
            f"postings={self.checked_postings})"
        )


def validate_index(
    index: InvertedIndex,
    collection: Optional[SetCollection] = None,
    length_tolerance: float = 1e-9,
) -> ValidationReport:
    """Run all structural checks; pass the collection for membership and
    length cross-validation (defaults to the index's own collection)."""
    report = ValidationReport()
    coll = collection if collection is not None else index.collection
    lengths = coll.lengths()

    seen_memberships: Dict[tuple, float] = {}
    observed_length: Dict[int, float] = {}

    for token in index.tokens():
        report.checked_tokens += 1
        # Tolerant scan: this pass reports corruption softly, so it must
        # not trip the fail-fast contract cursor on the first bad key.
        cursor = index.cursor(token, checked=False)
        previous = None
        ids_in_list = []
        while not cursor.exhausted():
            length, set_id = cursor.next()
            report.checked_postings += 1
            key = (length, set_id)
            if previous is not None and key < previous:
                report.add(
                    f"list {token!r} out of order at id {set_id}"
                )
            previous = key
            ids_in_list.append(set_id)
            # Invariant 2: one length per set, everywhere.
            earlier = observed_length.get(set_id)
            if earlier is not None and earlier != length:
                report.add(
                    f"set {set_id} has length {length!r} in list "
                    f"{token!r} but {earlier!r} elsewhere"
                )
            observed_length[set_id] = length
            if not (0 <= set_id < len(coll)):
                report.add(
                    f"list {token!r} references unknown set {set_id}"
                )
                continue
            if abs(lengths[set_id] - length) > length_tolerance:
                report.add(
                    f"set {set_id} stored length {length!r} != computed "
                    f"{lengths[set_id]!r}"
                )
            if token not in coll[set_id].tokens:
                report.add(
                    f"phantom posting: set {set_id} lacks token {token!r}"
                )
            seen_memberships[(set_id, token)] = length

        # Invariant 4a: hash index mirrors the list exactly.
        if index.with_hash_index:
            for set_id in ids_in_list:
                if index.probe(token, set_id) is None:
                    report.add(
                        f"hash index for {token!r} missing id {set_id}"
                    )

        # Invariant 4b: id-ordered list holds the same memberships.
        if index.with_id_lists:
            id_cursor = index.id_cursor(token)
            id_side = []
            while not id_cursor.exhausted():
                sid, ln = id_cursor.next()
                id_side.append(sid)
            if sorted(ids_in_list) != id_side:
                report.add(
                    f"id-ordered list for {token!r} disagrees with the "
                    f"weight-ordered list"
                )

    # Invariant 3: no missing postings.
    for rec in coll:
        for token in rec.tokens:
            if (rec.set_id, token) not in seen_memberships:
                if token in index:
                    report.add(
                        f"missing posting: set {rec.set_id} has token "
                        f"{token!r} but the list lacks it"
                    )
                else:
                    report.add(
                        f"missing list for token {token!r} "
                        f"(set {rec.set_id})"
                    )
    return report
