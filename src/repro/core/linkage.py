"""Multi-field record linkage: weighted fusion of per-field similarities.

Real data cleaning rarely matches one string: a customer record has a name,
an address, a city — each with its own error characteristics and its own
discriminative power.  :class:`FieldedMatcher` builds one q-gram searcher
per field and scores record pairs as a weighted combination of the
per-field IDF similarities:

    S(r, r') = Σ_f weight_f · I_f(r.f, r'.f)   with   Σ_f weight_f = 1.

Candidate generation stays index-backed and provably complete through two
facts: (a) a weighted average never exceeds its maximum, so any record at
combined similarity ``tau`` has *some* field at ``I_f >= tau``; and (b) if
every other field scored a perfect 1.0, field ``f`` still needs
``b_f = (tau - (1 - weight_f)) / weight_f``.  Each field is gathered from
its index at ``b_f`` when that bound is positive (it is always <= tau, so
this is the more inclusive choice) and at ``tau`` otherwise; the union is
verified exactly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..core.collection import SetCollection
from ..core.errors import ConfigurationError
from ..core.properties import effective_threshold, validate_threshold
from ..core.search import SetSimilaritySearcher
from ..core.similarity import idf_similarity
from ..core.tokenize import QGramTokenizer, Tokenizer


class FieldedMatch:
    """One linked record: id, combined score, per-field breakdown."""

    __slots__ = ("record_id", "score", "per_field")

    def __init__(
        self, record_id: int, score: float, per_field: Dict[str, float]
    ) -> None:
        self.record_id = record_id
        self.score = score
        self.per_field = per_field

    def __repr__(self) -> str:
        return f"FieldedMatch(id={self.record_id}, score={self.score:.4f})"


class FieldedMatcher:
    """Index-backed weighted multi-field matching.

    Parameters
    ----------
    records:
        Sequence of field-name -> string mappings (missing fields allowed).
    weights:
        Field name -> weight; normalized to sum to 1.  Fields absent from
        ``weights`` are ignored entirely.
    tokenizer:
        Shared tokenizer for every field (padded 3-grams by default).
    """

    def __init__(
        self,
        records: Sequence[Mapping[str, str]],
        weights: Mapping[str, float],
        tokenizer: Optional[Tokenizer] = None,
    ) -> None:
        if not weights:
            raise ConfigurationError("weights must name at least one field")
        total = float(sum(weights.values()))
        if total <= 0:
            raise ConfigurationError("weights must sum to a positive value")
        self.weights: Dict[str, float] = {
            field: w / total for field, w in weights.items()
        }
        self.tokenizer = tokenizer or QGramTokenizer(q=3)
        self.records = list(records)

        self._searchers: Dict[str, SetSimilaritySearcher] = {}
        for field in self.weights:
            collection = SetCollection()
            for record in self.records:
                text = record.get(field, "") or ""
                collection.add(
                    self.tokenizer.tokens(text), payload=text
                )
            collection.freeze()
            self._searchers[field] = SetSimilaritySearcher(
                collection, with_id_lists=False, with_hash_index=False
            )

    # ------------------------------------------------------------------
    def field_similarity(
        self, field: str, query_text: str, record_id: int
    ) -> float:
        """Exact per-field IDF similarity of a query against one record."""
        searcher = self._searchers[field]
        tokens = self.tokenizer.tokens(query_text)
        if not tokens:
            return 0.0
        collection = searcher.collection
        return idf_similarity(
            tokens,
            collection[record_id].tokens,
            collection.stats,
            s_length=collection.length(record_id),
        )

    def _per_field_threshold(self, field: str, tau: float) -> float:
        """The field's gather threshold: ``b_f`` (others perfect) when that
        bound is positive, else ``tau`` (the average-<=-max fact).  Both
        are complete; ``b_f <= tau`` always, so it is the inclusive pick."""
        weight = self.weights[field]
        bound = (tau - (1.0 - weight)) / weight
        if bound <= 0.0:
            return tau
        return min(bound, 1.0)

    def match(
        self,
        query: Mapping[str, str],
        threshold: float,
        max_candidates: Optional[int] = None,
    ) -> List[FieldedMatch]:
        """Records whose weighted combined similarity reaches ``threshold``.

        Candidates come from every weighted field's index at that field's
        gather threshold (see :meth:`_per_field_threshold`); the union is
        verified exactly against the combined score.
        """
        validate_threshold(threshold)
        cutoff = effective_threshold(threshold)
        candidates: set = set()
        for field in self.weights:
            text = query.get(field, "") or ""
            tokens = self.tokenizer.tokens(text)
            if not tokens:
                continue
            per_field = self._per_field_threshold(field, threshold)
            result = self._searchers[field].search(tokens, per_field)
            candidates.update(result.ids())

        matches: List[FieldedMatch] = []
        for record_id in candidates:
            per_field: Dict[str, float] = {}
            combined = 0.0
            for field, weight in self.weights.items():
                text = query.get(field, "") or ""
                sim = (
                    self.field_similarity(field, text, record_id)
                    if text
                    else 0.0
                )
                per_field[field] = sim
                combined += weight * sim
            if combined >= cutoff:
                matches.append(FieldedMatch(record_id, combined, per_field))
        matches.sort(key=lambda m: (-m.score, m.record_id))
        if max_candidates is not None:
            matches = matches[:max_candidates]
        return matches

    def brute_force(
        self, query: Mapping[str, str], threshold: float
    ) -> List[FieldedMatch]:
        """Exhaustive reference scoring (tests, tiny datasets)."""
        cutoff = effective_threshold(threshold)
        out: List[FieldedMatch] = []
        for record_id in range(len(self.records)):
            per_field: Dict[str, float] = {}
            combined = 0.0
            for field, weight in self.weights.items():
                text = query.get(field, "") or ""
                sim = (
                    self.field_similarity(field, text, record_id)
                    if text
                    else 0.0
                )
                per_field[field] = sim
                combined += weight * sim
            if combined >= cutoff:
                out.append(FieldedMatch(record_id, combined, per_field))
        out.sort(key=lambda m: (-m.score, m.record_id))
        return out
