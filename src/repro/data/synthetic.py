"""Synthetic corpora standing in for the paper's IMDB/DBLP datasets.

The paper's experiments run over the IMDB actor/movie table (7M rows) and
DBLP.  Those datasets are not redistributable, so this module generates
corpora with the same *structural* properties the algorithms are sensitive
to:

* a heavily skewed (Zipfian) word-frequency distribution — this is what
  creates the short rare-token lists and long frequent-token lists that SF's
  idf ordering exploits;
* words built from a shared syllable inventory — so different words share
  3-grams, giving realistic inverted-list length skew and partial matches;
* a word-length distribution covering the paper's query buckets (1–5,
  6–10, 11–15, 16–20 grams per word);
* every word tagged with an identifier for its (row, column, position) in
  the generated record table, mirroring the paper's 8-byte location ids.

Nothing downstream depends on the text being *English*; only the
distributional shape matters, and that is controlled here directly.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.collection import SetCollection
from ..core.errors import ConfigurationError
from ..core.tokenize import QGramTokenizer

# Syllable inventory: short cores plus longer name-like suffixes, so that
# generated words overlap in q-grams the way real names do.
_SYLLABLES = [
    "an", "ar", "er", "in", "on", "en", "or", "al", "el", "ri",
    "ma", "co", "de", "lo", "sa", "ta", "mi", "ro", "li", "na",
    "ber", "ton", "ing", "son", "man", "ley", "sen", "dor", "vik", "las",
    "field", "ville", "berg", "worth", "stein", "wood", "ford", "land",
    "smith", "gard",
]

_FIRST_NAMES_HINT = ["jo", "al", "an", "ma", "el", "ch", "be", "da"]


class WordGenerator:
    """Deterministic generator of name-like words."""

    def __init__(self, seed: int = 2008) -> None:
        self._rng = random.Random(seed)

    #: Probability of a word having 1..5 syllables.  Skewed short, like the
    #: word-length distribution of real name/title corpora (IMDB words are
    #: mostly 4-8 characters); this is what makes Length Boundedness prune
    #: *more* for longer queries (Figures 6b/7b).
    SYLLABLE_WEIGHTS = (0.38, 0.34, 0.16, 0.08, 0.04)

    def word(self, min_syllables: int = 1, max_syllables: int = 5) -> str:
        rng = self._rng
        choices = range(min_syllables, max_syllables + 1)
        weights = self.SYLLABLE_WEIGHTS[
            min_syllables - 1 : max_syllables
        ]
        n = rng.choices(list(choices), weights=list(weights), k=1)[0]
        parts = [rng.choice(_SYLLABLES) for _ in range(n)]
        if rng.random() < 0.3:
            parts.insert(0, rng.choice(_FIRST_NAMES_HINT))
        word = "".join(parts)
        if rng.random() < 0.15:  # occasional odd letter, as in real data
            pos = rng.randrange(len(word) + 1)
            word = word[:pos] + rng.choice("abcdefghijklmnopqrstuvwxyz") + word[pos:]
        return word

    def vocabulary(
        self,
        size: int,
        min_syllables: int = 1,
        max_syllables: int = 5,
    ) -> List[str]:
        """``size`` *distinct* words."""
        seen = set()
        out: List[str] = []
        attempts = 0
        while len(out) < size:
            w = self.word(min_syllables, max_syllables)
            attempts += 1
            if w not in seen:
                seen.add(w)
                out.append(w)
            if attempts > 50 * size:
                raise ConfigurationError(
                    "syllable inventory too small for requested vocabulary"
                )
        return out


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Unnormalized Zipf weights 1/rank^exponent for ranks 1..n."""
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


def generate_records(
    num_records: int,
    vocabulary_size: int = 2000,
    words_per_record: Tuple[int, int] = (2, 4),
    zipf_exponent: float = 1.0,
    seed: int = 2008,
) -> List[str]:
    """IMDB-like records: each a few space-separated words, Zipf-sampled.

    Returns the record strings; use :func:`word_occurrences` /
    :func:`build_word_collection` to get the word-level database the
    paper's experiments search over.
    """
    rng = random.Random(seed)
    vocab = WordGenerator(seed).vocabulary(vocabulary_size)
    weights = zipf_weights(vocabulary_size, zipf_exponent)
    lo, hi = words_per_record
    records = []
    for _ in range(num_records):
        k = rng.randint(lo, hi)
        records.append(" ".join(rng.choices(vocab, weights=weights, k=k)))
    return records


class WordLocation:
    """The paper's 8-byte location id: (row, position) of a word occurrence."""

    __slots__ = ("word", "row", "position")

    def __init__(self, word: str, row: int, position: int) -> None:
        self.word = word
        self.row = row
        self.position = position

    def packed(self) -> int:
        """Pack into a single integer (40-bit row, 24-bit position)."""
        return (self.row << 24) | (self.position & 0xFFFFFF)

    def __repr__(self) -> str:
        return f"WordLocation({self.word!r}, row={self.row}, pos={self.position})"


def word_occurrences(records: Sequence[str]) -> List[WordLocation]:
    """Every word occurrence across the records, with its location."""
    out: List[WordLocation] = []
    for row, record in enumerate(records):
        for position, word in enumerate(record.split()):
            out.append(WordLocation(word, row, position))
    return out


def distinct_words(records: Sequence[str]) -> List[str]:
    """Distinct words across the records, in first-appearance order."""
    seen: Dict[str, None] = {}
    for record in records:
        for word in record.split():
            seen.setdefault(word)
    return list(seen)


def build_word_collection(
    words: Iterable[str],
    q: int = 3,
    tokenizer: Optional[QGramTokenizer] = None,
) -> SetCollection:
    """The word-level database of the experiments: one set of q-grams per
    word, payload = the word itself."""
    tok = tokenizer or QGramTokenizer(q=q)
    return SetCollection.from_strings(list(words), tok)


_TITLE_WORDS = [
    "efficient", "scalable", "approximate", "indexing", "queries",
    "similarity", "joins", "streams", "mining", "learning", "graphs",
    "databases", "optimization", "parallel", "distributed", "adaptive",
    "robust", "incremental", "probabilistic", "semantic",
]


def generate_dblp_records(
    num_records: int,
    num_authors: int = 800,
    seed: int = 2008,
) -> List[str]:
    """DBLP-like records: author names plus a paper-title word mix.

    The paper reports that "results for DBLP followed identical trends";
    this generator provides the second corpus flavour so the trend claim
    can be checked too: records are longer than IMDB-style ones (2-3
    authors + 4-8 title words) and the title vocabulary is small and very
    skewed, while author names come from the open-ended name generator.
    """
    rng = random.Random(seed)
    authors = WordGenerator(seed + 1).vocabulary(num_authors)
    author_weights = zipf_weights(num_authors, 0.8)
    title_weights = zipf_weights(len(_TITLE_WORDS), 0.7)
    records = []
    for _ in range(num_records):
        names = rng.choices(authors, weights=author_weights,
                            k=rng.randint(2, 3))
        title = rng.choices(_TITLE_WORDS, weights=title_weights,
                            k=rng.randint(4, 8))
        records.append(" ".join(names + title))
    return records


def generate_word_database(
    num_records: int = 2000,
    vocabulary_size: int = 1500,
    q: int = 3,
    seed: int = 2008,
) -> Tuple[SetCollection, List[str]]:
    """End-to-end: records -> distinct words -> q-gram SetCollection.

    Returns ``(collection, words)`` with ``collection[i].payload == words[i]``.
    """
    records = generate_records(
        num_records, vocabulary_size=vocabulary_size, seed=seed
    )
    words = distinct_words(records)
    return build_word_collection(words, q=q), words
