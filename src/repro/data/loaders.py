"""Loaders for user-supplied data: text, CSV/TSV, and token-set files.

The synthetic generators stand in for the paper's corpora; real deployments
have their own strings.  These loaders turn the common file shapes into a
:class:`~repro.core.collection.SetCollection` ready for indexing:

* :func:`load_lines` — one string per line (the CLI's ``index`` input);
* :func:`load_delimited` — CSV/TSV with a designated text column (and an
  optional payload column), e.g. an exported customer table;
* :func:`load_token_sets` — pre-tokenized data, one whitespace-separated
  token set per line (interoperates with set-similarity tool formats).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, List, Optional

from ..core.collection import SetCollection
from ..core.errors import ConfigurationError
from ..core.tokenize import QGramTokenizer, Tokenizer


def iter_lines(path) -> Iterator[str]:
    """Non-empty, newline-stripped lines of a UTF-8 text file."""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if line.strip():
                yield line


def load_lines(
    path,
    tokenizer: Optional[Tokenizer] = None,
    limit: Optional[int] = None,
) -> SetCollection:
    """One record per line; payload is the line itself."""
    tok = tokenizer or QGramTokenizer(q=3)
    collection = SetCollection()
    for i, line in enumerate(iter_lines(path)):
        if limit is not None and i >= limit:
            break
        collection.add(tok.tokens(line), payload=line)
    return collection.freeze()


def load_delimited(
    path,
    text_column,
    payload_column=None,
    delimiter: str = ",",
    has_header: bool = True,
    tokenizer: Optional[Tokenizer] = None,
    limit: Optional[int] = None,
) -> SetCollection:
    """CSV/TSV loader.

    ``text_column``/``payload_column`` are column names when
    ``has_header`` (the default) or 0-based indexes otherwise.  The payload
    defaults to the text value; pass a distinct payload column to carry a
    record key through search results.
    """
    tok = tokenizer or QGramTokenizer(q=3)
    collection = SetCollection()
    with open(path, encoding="utf-8", newline="") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        header: Optional[List[str]] = None
        if has_header:
            try:
                header = next(reader)
            except StopIteration:
                raise ConfigurationError(f"{path} is empty") from None

        def position(column) -> int:
            if isinstance(column, int):
                return column
            if header is None:
                raise ConfigurationError(
                    "column names require has_header=True"
                )
            try:
                return header.index(column)
            except ValueError:
                raise ConfigurationError(
                    f"no column {column!r}; header is {header}"
                ) from None

        text_pos = position(text_column)
        payload_pos = (
            position(payload_column) if payload_column is not None else None
        )
        for i, row in enumerate(reader):
            if limit is not None and i >= limit:
                break
            if text_pos >= len(row):
                continue  # ragged row: nothing to index
            text = row[text_pos]
            payload = (
                row[payload_pos]
                if payload_pos is not None and payload_pos < len(row)
                else text
            )
            collection.add(tok.tokens(text), payload=payload)
    return collection.freeze()


def load_token_sets(path, limit: Optional[int] = None) -> SetCollection:
    """Pre-tokenized input: one whitespace-separated token set per line."""
    collection = SetCollection()
    for i, line in enumerate(iter_lines(path)):
        if limit is not None and i >= limit:
            break
        tokens = line.split()
        collection.add(tokens, payload=line)
    return collection.freeze()


def dump_token_sets(collection: SetCollection, path) -> int:
    """Inverse of :func:`load_token_sets`; returns the number of lines."""
    out = Path(path)
    with open(out, "w", encoding="utf-8") as fh:
        for rec in collection:
            fh.write(" ".join(sorted(rec.tokens)) + "\n")
    return len(collection)
