"""Query workloads matching the paper's experimental protocol (§VIII-A).

The paper builds workloads of 100 words each "by randomly extracting words
between lengths 1-5, 6-10, 11-15, and 16-20 3-grams from the base table"
(so every word has at least one exact match), then applies "a fixed number
of random letter insertions, deletions and swaps" to create near-match
queries.  This module reproduces that: bucket the collection's words by
q-gram count, sample, perturb, and hand back the query strings alongside
the ids they were sampled from.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.collection import SetCollection
from ..core.errors import ConfigurationError
from ..core.tokenize import QGramTokenizer
from .errors import apply_modifications

GRAM_BUCKETS: Tuple[Tuple[int, int], ...] = (
    (1, 5),
    (6, 10),
    (11, 15),
    (16, 20),
)
"""The paper's query-size buckets, in 3-grams per word."""


class QueryWorkload:
    """A set of query strings with provenance.

    ``queries[i]`` was derived from ``source_ids[i]`` (a set id in the
    collection) by ``modifications`` random edits.  With 0 modifications
    every query has at least one exact match — its source.
    """

    def __init__(
        self,
        queries: List[str],
        source_ids: List[int],
        bucket: Tuple[int, int],
        modifications: int,
    ) -> None:
        self.queries = queries
        self.source_ids = source_ids
        self.bucket = bucket
        self.modifications = modifications

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __repr__(self) -> str:
        return (
            f"QueryWorkload(n={len(self.queries)}, bucket={self.bucket}, "
            f"mods={self.modifications})"
        )


def bucket_words(
    collection: SetCollection,
    tokenizer: Optional[QGramTokenizer] = None,
) -> Dict[Tuple[int, int], List[int]]:
    """Group set ids by the paper's gram-count buckets.

    The bucket of a word is the number of q-grams in its set (its distinct
    token count), which for padded 3-grams tracks word length directly.
    """
    buckets: Dict[Tuple[int, int], List[int]] = {b: [] for b in GRAM_BUCKETS}
    for rec in collection:
        n = len(rec.tokens)
        for lo, hi in GRAM_BUCKETS:
            if lo <= n <= hi:
                buckets[(lo, hi)].append(rec.set_id)
                break
    return buckets


def make_workload(
    collection: SetCollection,
    bucket: Tuple[int, int] = (11, 15),
    count: int = 100,
    modifications: int = 0,
    seed: int = 2008,
) -> QueryWorkload:
    """Sample ``count`` words from the bucket and apply the modifications.

    Sampling is with replacement when the bucket holds fewer than ``count``
    words (small synthetic corpora), without replacement otherwise —
    matching the paper's random extraction either way.
    """
    if bucket not in GRAM_BUCKETS:
        raise ConfigurationError(
            f"bucket must be one of {GRAM_BUCKETS}, got {bucket}"
        )
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    rng = random.Random(seed)
    candidates = bucket_words(collection)[bucket]
    if not candidates:
        raise ConfigurationError(
            f"collection has no words in bucket {bucket}"
        )
    if len(candidates) >= count:
        chosen = rng.sample(candidates, count)
    else:
        chosen = rng.choices(candidates, k=count)
    queries: List[str] = []
    for set_id in chosen:
        word = collection.payload(set_id)
        if modifications:
            word = apply_modifications(word, modifications, rng)
        queries.append(word)
    return QueryWorkload(queries, chosen, bucket, modifications)


def make_traffic(
    workload: QueryWorkload,
    repeat: int = 3,
    seed: int = 2008,
) -> List[str]:
    """A served-traffic replay of a workload.

    Production query streams are not distinct-query benchmarks: the same
    lookups recur (retries, hot entities, fan-in from many clients).
    This flattens a workload into ``repeat`` shuffled copies of every
    query — the arrival pattern the service layer's result cache and
    request coalescing are built for, and the workload shape
    ``benchmarks/bench_service.py`` measures throughput on.
    """
    if repeat < 1:
        raise ConfigurationError("repeat must be >= 1")
    rng = random.Random(seed)
    texts = list(workload) * repeat
    rng.shuffle(texts)
    return texts


def all_bucket_workloads(
    collection: SetCollection,
    count: int = 100,
    modifications: int = 0,
    seed: int = 2008,
) -> List[QueryWorkload]:
    """One workload per paper bucket (Figures 6b/7b sweeps)."""
    out = []
    for bucket in GRAM_BUCKETS:
        try:
            out.append(
                make_workload(collection, bucket, count, modifications, seed)
            )
        except ConfigurationError:
            continue  # tiny corpora may lack a bucket entirely
    return out
