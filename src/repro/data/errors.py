"""Error models: character modifications and graded-error datasets.

Two uses in the paper:

* the query workloads apply "a fixed number of random letter insertions,
  deletions and swaps (termed *modifications*)" to sampled words, producing
  queries with close-but-not-exact matches (Figures 6c/7c);
* Table I evaluates measure quality on the cu1..cu8 datasets of the
  SIGMOD'07 benchmark [10] — eight datasets with graded error levels, from
  high error (cu1) to low (cu8).  Those datasets derive from real company
  names and are not redistributable; :func:`make_graded_dataset` regenerates
  the construction: clean source strings plus erroneous duplicates, where
  the error level controls how many modifications each duplicate receives
  and how many of its words are touched.

All randomness flows through an explicit seed, so datasets are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..core.errors import ConfigurationError

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"

NUM_ERROR_LEVELS = 8


def apply_modifications(
    text: str, num_modifications: int, rng: random.Random
) -> str:
    """Apply random character insertions, deletions and adjacent swaps.

    Mirrors the paper's query perturbation.  Deletions and swaps are skipped
    when the string is too short for them; the replacement operation drawn
    is then an insertion, so exactly ``num_modifications`` edits are applied.
    """
    if num_modifications < 0:
        raise ConfigurationError("num_modifications must be >= 0")
    chars = list(text)
    for _ in range(num_modifications):
        ops = ["insert"]
        if len(chars) >= 1:
            ops.append("delete")
        if len(chars) >= 2:
            ops.append("swap")
        op = rng.choice(ops)
        if op == "insert":
            pos = rng.randrange(len(chars) + 1)
            chars.insert(pos, rng.choice(_ALPHABET))
        elif op == "delete":
            pos = rng.randrange(len(chars))
            del chars[pos]
        else:  # swap adjacent characters
            pos = rng.randrange(len(chars) - 1)
            chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
    return "".join(chars)


def modifications_for_level(level: int) -> Tuple[int, float]:
    """Error intensity of a cu-style level.

    Returns ``(mods_per_dirty_word, fraction_of_words_touched)``; level 1 is
    the dirtiest (cu1), level 8 the cleanest (cu8), matching the monotone
    precision trend of Table I.
    """
    if not (1 <= level <= NUM_ERROR_LEVELS):
        raise ConfigurationError(
            f"level must be in 1..{NUM_ERROR_LEVELS}, got {level}"
        )
    mods = max(1, (NUM_ERROR_LEVELS + 1 - level) // 2)  # 4,3,3,2,2,1,1,1
    touched = 0.25 + 0.75 * (NUM_ERROR_LEVELS - level) / (NUM_ERROR_LEVELS - 1)
    return mods, touched


class GradedDataset:
    """A graded-error dataset: strings + duplicate-group ground truth.

    ``strings[i]`` belongs to group ``groups[i]``; all strings sharing a
    group derive from the same clean source.  Queries for the Table I
    experiment are drawn from the dirty strings; the relevant answers for a
    query are the other members of its group.
    """

    def __init__(
        self,
        level: int,
        strings: List[str],
        groups: List[int],
    ) -> None:
        self.level = level
        self.strings = strings
        self.groups = groups
        self._members: Dict[int, List[int]] = {}
        for idx, g in enumerate(groups):
            self._members.setdefault(g, []).append(idx)

    def group_members(self, group: int) -> List[int]:
        return self._members[group]

    def relevant_for(self, index: int) -> List[int]:
        """Indexes of the other strings in the same duplicate group."""
        return [
            i for i in self._members[self.groups[index]] if i != index
        ]

    def dirty_indexes(self) -> List[int]:
        """Indexes of non-first group members (the erroneous duplicates)."""
        out = []
        for members in self._members.values():
            out.extend(members[1:])
        return out

    def __len__(self) -> int:
        return len(self.strings)

    def __repr__(self) -> str:
        return (
            f"GradedDataset(level=cu{self.level}, strings={len(self)}, "
            f"groups={len(self._members)})"
        )


def make_graded_dataset(
    level: int,
    clean_strings: Sequence[str],
    duplicates_per_string: int = 3,
    seed: int = 2008,
) -> GradedDataset:
    """Build a cu<level>-style dataset from clean source strings.

    Each clean string is kept and joined by ``duplicates_per_string``
    erroneous copies; the error level controls, per copy, how many of its
    words are modified and how many edits each touched word receives.
    """
    mods, touched_fraction = modifications_for_level(level)
    rng = random.Random(seed * 100 + level)
    strings: List[str] = []
    groups: List[int] = []
    for group, clean in enumerate(clean_strings):
        strings.append(clean)
        groups.append(group)
        words = clean.split()
        for _ in range(duplicates_per_string):
            dirty_words = []
            touched_any = False
            for w in words:
                if rng.random() < touched_fraction:
                    dirty_words.append(apply_modifications(w, mods, rng))
                    touched_any = True
                else:
                    dirty_words.append(w)
            if not touched_any and words:
                # Guarantee every duplicate differs from its source.
                pos = rng.randrange(len(words))
                dirty_words[pos] = apply_modifications(words[pos], mods, rng)
            strings.append(" ".join(dirty_words))
            groups.append(group)
    return GradedDataset(level, strings, groups)


def make_all_levels(
    clean_strings: Sequence[str],
    duplicates_per_string: int = 3,
    seed: int = 2008,
) -> List[GradedDataset]:
    """cu1..cu8 in one call (dirtiest first, as in Table I)."""
    return [
        make_graded_dataset(
            level, clean_strings, duplicates_per_string, seed
        )
        for level in range(1, NUM_ERROR_LEVELS + 1)
    ]
