"""Synthetic datasets, error models and query workloads."""

from .loaders import (
    dump_token_sets,
    load_delimited,
    load_lines,
    load_token_sets,
)
from .errors import (
    GradedDataset,
    apply_modifications,
    make_all_levels,
    make_graded_dataset,
    modifications_for_level,
)
from .synthetic import (
    WordGenerator,
    WordLocation,
    build_word_collection,
    distinct_words,
    generate_records,
    generate_word_database,
    word_occurrences,
    zipf_weights,
)
from .workloads import (
    GRAM_BUCKETS,
    QueryWorkload,
    all_bucket_workloads,
    bucket_words,
    make_workload,
)

__all__ = [
    "dump_token_sets",
    "load_delimited",
    "load_lines",
    "load_token_sets",
    "GradedDataset",
    "apply_modifications",
    "make_all_levels",
    "make_graded_dataset",
    "modifications_for_level",
    "WordGenerator",
    "WordLocation",
    "build_word_collection",
    "distinct_words",
    "generate_records",
    "generate_word_database",
    "word_occurrences",
    "zipf_weights",
    "GRAM_BUCKETS",
    "QueryWorkload",
    "all_bucket_workloads",
    "bucket_words",
    "make_workload",
]
