"""Mini relational engine + the paper's SQL-based baseline."""

from .engine import (
    group_sum,
    hash_join,
    having,
    index_range_scan,
    project,
    select,
    table_scan,
)
from .sqlbaseline import SqlBaseline
from .sqlite_backend import SqliteBaseline
from .table import Schema, Table

__all__ = [
    "group_sum",
    "hash_join",
    "having",
    "index_range_scan",
    "project",
    "select",
    "table_scan",
    "SqlBaseline",
    "SqliteBaseline",
    "Schema",
    "Table",
]
