"""Section III-A on a real RDBMS: the SQL baseline executed by SQLite.

The paper implements its relational competitor on MS SQL Server 2005; the
same schema and plan run verbatim on any SQL engine.  This module executes
them on Python's bundled SQLite:

* ``base(id INTEGER, text TEXT)``;
* ``qgrams(id INTEGER, gram TEXT, len REAL, weight REAL)`` — one row per
  (set, token), ``weight = idf(gram)²/len(s)``;
* a composite covering index on ``(gram, len, id, weight)`` (SQLite's
  analogue of the paper's clustered composite B-tree);
* the selection query (with the Theorem 1 window pushed into the index
  range predicate):

  .. code-block:: sql

      SELECT id, SUM(weight) / :qlen AS score
      FROM qgrams
      WHERE gram IN (:g1, ..., :gn) AND len BETWEEN :lo AND :hi
      GROUP BY id
      HAVING score >= :tau

This is both a correctness cross-check for the simulated engine in
:mod:`repro.relational.sqlbaseline` and a genuinely usable deployment path
(the database can live on disk and outlive the process).
"""

from __future__ import annotations

import sqlite3
import time
from typing import List

from ..algorithms.base import AlgorithmResult, SearchResult
from ..core.collection import SetCollection
from ..core.errors import IndexNotBuiltError
from ..core.properties import effective_threshold
from ..core.query import PreparedQuery
from ..storage.pages import IOStats

DDL = """
CREATE TABLE base (id INTEGER PRIMARY KEY, text TEXT);
CREATE TABLE qgrams (id INTEGER, gram TEXT, len REAL, weight REAL);
"""
INDEX_DDL = (
    "CREATE INDEX idx_qgrams_composite ON qgrams (gram, len, id, weight);"
)


class SqliteBaseline:
    """The paper's SQL competitor on an actual SQL engine (SQLite).

    Parameters
    ----------
    collection:
        The frozen database of sets.
    database:
        SQLite connection string; defaults to in-memory.  Pass a file path
        to persist the relational index across processes.
    use_length_bounds:
        Push the Theorem 1 window into the WHERE clause (the paper's
        default); disable for the Figure 8 *SQL NLB* ablation.
    """

    name = "sqlite"

    def __init__(
        self,
        collection: SetCollection,
        database: str = ":memory:",
        use_length_bounds: bool = True,
    ) -> None:
        if not collection.frozen:
            raise IndexNotBuiltError("collection must be frozen")
        self.collection = collection
        self.use_length_bounds = use_length_bounds
        self._conn = sqlite3.connect(database)
        self._build()

    def _build(self) -> None:
        stats = self.collection.stats
        lengths = self.collection.lengths()
        cur = self._conn
        cur.executescript(DDL)
        cur.executemany(
            "INSERT INTO base VALUES (?, ?)",
            (
                (rec.set_id, str(rec.payload))
                for rec in self.collection
            ),
        )
        rows = []
        for rec in self.collection:
            length = lengths[rec.set_id]
            for token in rec.tokens:
                weight = (
                    stats.idf_squared(token) / length if length > 0 else 0.0
                )
                rows.append((rec.set_id, token, length, weight))
        cur.executemany("INSERT INTO qgrams VALUES (?, ?, ?, ?)", rows)
        cur.executescript(INDEX_DDL)
        cur.commit()

    # ------------------------------------------------------------------
    def search(self, query: PreparedQuery, tau: float) -> AlgorithmResult:
        """Run the aggregate/group-by plan inside SQLite."""
        cutoff = effective_threshold(tau)
        started = time.perf_counter()
        if self.use_length_bounds:
            lo, hi = query.bounds(tau)
        else:
            lo, hi = -1.0, float("1e308")
        grams = list(query.tokens)
        placeholders = ", ".join("?" for _ in grams)
        sql = (
            "SELECT id, SUM(weight) / ? AS score FROM qgrams "
            f"WHERE gram IN ({placeholders}) AND len BETWEEN ? AND ? "
            "GROUP BY id HAVING score >= ?"
        )
        params = [query.length, *grams, lo, hi, cutoff]
        rows = self._conn.execute(sql, params).fetchall()
        elapsed = time.perf_counter() - started
        results = [SearchResult(set_id, score) for set_id, score in rows]
        return AlgorithmResult(
            algorithm=(
                self.name if self.use_length_bounds else "sqlite-nlb"
            ),
            results=results,
            stats=IOStats(),  # SQLite does not expose page-level counters
            elements_total=0,
            wall_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    def explain(self, query: PreparedQuery, tau: float) -> List[str]:
        """EXPLAIN QUERY PLAN for the selection (shows the index usage)."""
        lo, hi = query.bounds(tau) if self.use_length_bounds else (-1.0, 1e308)
        grams = list(query.tokens)
        placeholders = ", ".join("?" for _ in grams)
        sql = (
            "EXPLAIN QUERY PLAN SELECT id, SUM(weight) / ? AS score "
            f"FROM qgrams WHERE gram IN ({placeholders}) "
            "AND len BETWEEN ? AND ? GROUP BY id HAVING score >= ?"
        )
        params = [query.length, *grams, lo, hi, effective_threshold(tau)]
        return [row[-1] for row in self._conn.execute(sql, params)]

    def row_counts(self) -> dict:
        counts = {}
        for table in ("base", "qgrams"):
            (n,) = self._conn.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()
            counts[table] = n
        return counts

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SqliteBaseline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
