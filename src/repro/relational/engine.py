"""A tiny iterator-style query executor: scan, seek, filter, group-aggregate.

Just enough relational machinery to run the plan the paper's SQL approach
executes — ``SELECT id, SUM(weight) FROM qgrams WHERE gram IN (...) AND len
BETWEEN lo AND hi GROUP BY id HAVING SUM(weight) >= tau`` — over either a
clustered B+-tree (index plan) or a full table scan (the plan the paper had
to abort because it "did not terminate in a reasonable amount of time").

Operators are plain generator functions over tuples; they compose the same
way Volcano-style iterators do, and every physical access charges the shared
:class:`~repro.storage.pages.IOStats` ledger through the underlying storage
structures.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, Optional, Tuple

from ..storage.btree import BPlusTree
from ..storage.pages import IOStats
from .table import Table


def table_scan(table: Table, stats: Optional[IOStats] = None) -> Iterator[tuple]:
    """Full sequential scan of a relation."""
    return table.scan(stats)


def index_range_scan(
    index: BPlusTree,
    lo: Any,
    hi: Any,
    stats: Optional[IOStats] = None,
) -> Iterator[Tuple[Any, Any]]:
    """Clustered-index range scan: seek + leaf walk."""
    return index.range_scan(lo, hi, stats)


def select(
    rows: Iterable[tuple], predicate: Callable[[tuple], bool]
) -> Iterator[tuple]:
    """Filter (relational selection)."""
    for row in rows:
        if predicate(row):
            yield row


def project(
    rows: Iterable[tuple], positions: Tuple[int, ...]
) -> Iterator[tuple]:
    """Projection to a subset of column positions."""
    for row in rows:
        yield tuple(row[p] for p in positions)


def group_sum(
    rows: Iterable[tuple],
    key_position: int,
    value_position: int,
) -> Dict[Any, float]:
    """Hash aggregation: ``SELECT key, SUM(value) ... GROUP BY key``."""
    acc: Dict[Any, float] = {}
    for row in rows:
        key = row[key_position]
        acc[key] = acc.get(key, 0.0) + row[value_position]
    return acc


def having(
    groups: Dict[Any, float], predicate: Callable[[float], bool]
) -> Dict[Any, float]:
    """HAVING clause over an aggregation result."""
    return {k: v for k, v in groups.items() if predicate(v)}


def hash_join(
    left: Iterable[tuple],
    right: Iterable[tuple],
    left_key: int,
    right_key: int,
) -> Iterator[tuple]:
    """Classic build/probe hash equi-join (build side: ``left``)."""
    build: Dict[Any, list] = {}
    for row in left:
        build.setdefault(row[left_key], []).append(row)
    for row in right:
        for match in build.get(row[right_key], ()):
            yield match + row
