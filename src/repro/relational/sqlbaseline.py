"""The SQL baseline of Section III-A: q-gram table + clustered composite B-tree.

Build once from a :class:`~repro.core.collection.SetCollection`:

* a **base table** ``(id, text)`` holding the source strings;
* a **q-gram table** ``(id, gram, len, weight)`` in 1NF with one row per
  (set, token), where ``weight = idf(gram)² / len(s)``;
* a **clustered composite B+-tree** on ``(gram, len, id)`` (the paper's
  3-gram/length/id/weight index, built clustered "to save space").

A selection query runs the aggregate/group-by/join plan: one index range
scan per query token — with the Theorem 1 length window pushed into the
scan range as ``gram = g AND len BETWEEN τ·len(q) AND len(q)/τ`` — feeding a
hash aggregation on set id, then a HAVING filter at ``τ``.  Disabling
``use_length_bounds`` widens each range to the token's whole partition
(the paper's *SQL NLB* of Figure 8); ``use_index=False`` falls back to the
full-table-scan plan the paper could not run to completion.

The ``search`` method returns the same :class:`AlgorithmResult` the
inverted-list algorithms produce, so the harness treats SQL uniformly.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..algorithms.base import AlgorithmResult, SearchResult
from ..core.collection import SetCollection
from ..core.errors import IndexNotBuiltError
from ..core.properties import effective_threshold
from ..core.query import PreparedQuery
from ..storage.btree import BPlusTree
from ..storage.pages import IOStats
from .engine import group_sum, having, index_range_scan, table_scan
from .table import Schema, Table

GRAM_BYTES = 4  # 3-gram + padding, as stored
ID_BYTES = 8
LEN_BYTES = 8
WEIGHT_BYTES = 8


class SqlBaseline:
    """Relational set-similarity selection (the paper's "SQL" competitor)."""

    name = "sql"

    def __init__(
        self,
        collection: SetCollection,
        use_length_bounds: bool = True,
        use_index: bool = True,
        btree_order: int = 64,
    ) -> None:
        if not collection.frozen:
            raise IndexNotBuiltError("collection must be frozen")
        self.collection = collection
        self.use_length_bounds = use_length_bounds
        self.use_index = use_index

        stats = collection.stats
        lengths = collection.lengths()

        self.base_table = Table(
            "base",
            Schema([("id", ID_BYTES), ("text", 32)]),
        )
        self.qgram_table = Table(
            "qgrams",
            Schema(
                [
                    ("id", ID_BYTES),
                    ("gram", GRAM_BYTES),
                    ("len", LEN_BYTES),
                    ("weight", WEIGHT_BYTES),
                ]
            ),
        )
        entries: List[Tuple[Tuple[str, float, int], float]] = []
        for rec in self.collection:
            self.base_table.insert((rec.set_id, rec.payload))
            length = lengths[rec.set_id]
            for token in rec.tokens:
                weight = (
                    stats.idf_squared(token) / length if length > 0 else 0.0
                )
                self.qgram_table.insert((rec.set_id, token, length, weight))
                entries.append(((token, length, rec.set_id), weight))
        entries.sort(key=lambda e: e[0])
        self.index = BPlusTree.bulk_load(entries, order=btree_order)
        # Per-token partition sizes, for the pruning-power denominator.
        self._partition: Dict[str, int] = {}
        for rec in self.collection:
            for token in rec.tokens:
                self._partition[token] = self._partition.get(token, 0) + 1

    # ------------------------------------------------------------------
    def search(self, query: PreparedQuery, tau: float) -> AlgorithmResult:
        """Run the aggregate/group-by plan; returns a uniform result."""
        tau = effective_threshold(tau)
        io = IOStats()
        started = time.perf_counter()
        if self.use_index:
            scores = self._index_plan(query, tau, io)
        else:
            scores = self._scan_plan(query, tau, io)
        answers = [
            SearchResult(set_id, score)
            for set_id, score in having(scores, lambda v: v >= tau).items()
        ]
        elapsed = time.perf_counter() - started
        total = sum(
            self._partition.get(token, 0) for token in query.tokens
        )
        label = self.name if self.use_length_bounds else "sql-nlb"
        return AlgorithmResult(
            algorithm=label,
            results=answers,
            stats=io,
            elements_total=total,
            wall_seconds=elapsed,
        )

    def _index_plan(
        self, query: PreparedQuery, tau: float, io: IOStats
    ) -> Dict[int, float]:
        """One clustered range scan per token, aggregated on the fly."""
        if self.use_length_bounds:
            lo_len, hi_len = query.bounds(tau)
        else:
            lo_len, hi_len = 0.0, float("inf")
        inv_qlen = 1.0 / query.length if query.length > 0 else 0.0
        scores: Dict[int, float] = {}
        for token in query.tokens:
            lo_key = (token, lo_len, -1)
            hi_key = (token, hi_len, 1 << 62)
            for _key, weight in index_range_scan(
                self.index, lo_key, hi_key, io
            ):
                set_id = _key[2]
                scores[set_id] = scores.get(set_id, 0.0) + weight * inv_qlen
        return scores

    def _scan_plan(
        self, query: PreparedQuery, tau: float, io: IOStats
    ) -> Dict[int, float]:
        """Index-less plan: full scan + filter + aggregate (kept for
        completeness; the paper aborted it)."""
        if self.use_length_bounds:
            lo_len, hi_len = query.bounds(tau)
        else:
            lo_len, hi_len = 0.0, float("inf")
        wanted = set(query.tokens)
        inv_qlen = 1.0 / query.length if query.length > 0 else 0.0
        id_pos = self.qgram_table.column("id")
        gram_pos = self.qgram_table.column("gram")
        len_pos = self.qgram_table.column("len")
        w_pos = self.qgram_table.column("weight")
        matching = (
            (row[id_pos], row[w_pos] * inv_qlen)
            for row in table_scan(self.qgram_table, io)
            if row[gram_pos] in wanted and lo_len <= row[len_pos] <= hi_len
        )
        return group_sum(
            [(sid, w) for sid, w in matching], key_position=0, value_position=1
        )

    # ------------------------------------------------------------------
    def size_report(self) -> Dict[str, int]:
        """Bytes per component (Figure 5's SQL bars)."""
        return {
            "base_table": self.base_table.size_bytes(),
            "qgram_table": self.qgram_table.size_bytes(),
            "btree": self.index.size_bytes(),
            "total": (
                self.base_table.size_bytes()
                + self.qgram_table.size_bytes()
                + self.index.size_bytes()
            ),
        }

    def __repr__(self) -> str:
        return (
            f"SqlBaseline(rows={len(self.qgram_table)}, "
            f"btree_height={self.index.height})"
        )
