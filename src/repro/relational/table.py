"""Minimal relational tables in First Normal Form.

The SQL baseline of Section III-A stores the database in two relations:

* the **base table** — one row per word occurrence, carrying the source
  string and its location (the paper packs row/column/location into an
  8-byte identifier);
* the **q-gram table** — one row per (word, gram): ``(id, gram, len,
  weight)``, where ``len`` is the word's normalized length and ``weight``
  the query-independent part of the contribution, ``idf(gram)²/len(s)``
  (dividing by ``len(q)`` at query time completes ``w_i(s)``).

Rows live in a :class:`~repro.storage.pages.PagedFile` so scans charge
sequential page I/O like every other access path in this package, and table
sizes come out of the same byte model used for Figure 5.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import SchemaError
from ..storage.pages import IOStats, PagedFile


class Schema:
    """Ordered, named, byte-sized columns."""

    def __init__(self, columns: Sequence[Tuple[str, int]]) -> None:
        if not columns:
            raise SchemaError("a schema needs at least one column")
        names = [name for name, _ in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self.columns = list(columns)
        self._index = {name: i for i, (name, _) in enumerate(columns)}

    def position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; have {list(self._index)}"
            ) from None

    @property
    def names(self) -> List[str]:
        return [name for name, _ in self.columns]

    def row_bytes(self) -> int:
        return sum(width for _, width in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{n}:{w}B" for n, w in self.columns)
        return f"Schema({cols})"


class Table:
    """An append-only 1NF relation over a paged file."""

    def __init__(self, name: str, schema: Schema, page_capacity: int = 128):
        self.name = name
        self.schema = schema
        self._file = PagedFile(schema.row_bytes(), page_capacity)

    def insert(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.schema):
            raise SchemaError(
                f"row arity {len(row)} != schema arity {len(self.schema)}"
            )
        self._file.append(tuple(row))

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    def __len__(self) -> int:
        return len(self._file)

    def size_bytes(self) -> int:
        return self._file.size_bytes()

    def scan(self, stats: Optional[IOStats] = None) -> Iterator[tuple]:
        """Full sequential scan with page accounting."""
        cursor = self._file.cursor(stats)
        while not cursor.exhausted():
            yield cursor.next()

    def rows(self) -> Iterator[tuple]:
        """Raw iteration without I/O charging (index builds, tests)."""
        return self._file.records()

    def column(self, name: str) -> int:
        return self.schema.position(name)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self)})"
