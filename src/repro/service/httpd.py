"""Stdlib HTTP front end for :class:`~repro.service.SimilarityService`.

A deliberately small JSON-over-HTTP endpoint (``http.server`` only — no
framework dependency), enough to serve an index to other processes and
to load-test the service layer:

* ``POST /search`` — body ``{"tokens": [...]}`` or ``{"text": "..."}``
  (the latter requires the service to carry a tokenizer), plus optional
  ``"threshold"``, ``"algorithm"``, ``"deadline_ms"``.  Responds with
  :meth:`ServiceResult.to_dict` (payloads resolved).
* ``POST /batch`` — body ``{"queries": [<query>, ...], ...}`` where each
  query is a token list or a string; one result object per query.
* ``GET /stats`` — serving counters and cache statistics.
* ``GET /metrics`` — Prometheus text exposition of the global metrics
  registry (empty body when telemetry is disabled).
* ``GET /healthz`` — liveness.

The server is a ``ThreadingHTTPServer``: one thread per connection, all
sharing the service's caches (which are lock-protected) and its
read-only index.

>>> server = ServiceHTTPServer(service, host="127.0.0.1", port=0)
>>> server.start()          # doctest: +SKIP
>>> server.url              # doctest: +SKIP
'http://127.0.0.1:49152'
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from ..core.errors import (
    CircuitOpenError,
    ReproError,
    ServiceOverloadError,
)
from ..obs import metrics as obs_metrics
from .service import ServiceResult, SimilarityService

DEFAULT_THRESHOLD = 0.7
MAX_BODY_BYTES = 4 * 1024 * 1024


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the service owned by the server instance.

    ``self.server`` is the ``ThreadingHTTPServer``;
    :class:`ServiceHTTPServer` attaches ``service`` and ``verbose``
    attributes to it before serving.
    """

    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        body: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if status >= 400:
            registry = obs_metrics.get_registry()
            if registry.enabled:
                registry.counter(
                    "http_errors_total",
                    "HTTP error responses by status code.",
                    ("status",),
                ).labels(status=str(status)).inc()
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(
                400, {"ok": False, "error": "missing or oversized body"}
            )
            return None
        try:
            body = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"ok": False, "error": f"bad JSON: {exc}"})
            return None
        if not isinstance(body, dict):
            self._send_json(
                400, {"ok": False, "error": "body must be a JSON object"}
            )
            return None
        return body

    def _count_request(self, path: str) -> None:
        registry = obs_metrics.get_registry()
        if registry.enabled:
            registry.counter(
                "http_requests_total",
                "HTTP requests by path (unknown paths fold into 'other').",
                ("path",),
            ).labels(path=path).inc()

    def _send_metrics(self) -> None:
        data = obs_metrics.render_prometheus(
            obs_metrics.get_registry()
        ).encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", obs_metrics.PROMETHEUS_CONTENT_TYPE
        )
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_unexpected(self, exc: BaseException) -> None:
        """Map an unhandled handler exception to a JSON 500.

        Without this, ``BaseHTTPRequestHandler`` dumps a traceback to
        the socket mid-response.  The body carries the exception type
        but not its message — internals stay out of client responses;
        operators get the detail from the (verbose) server log.
        """
        if self.server.verbose:
            self.log_error(
                "unhandled %s: %s", type(exc).__name__, exc
            )
        self._send_json(
            500,
            {
                "ok": False,
                "error": f"internal error ({type(exc).__name__})",
            },
        )

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        try:
            known = ("/healthz", "/stats", "/metrics")
            self._count_request(self.path if self.path in known else "other")
            if self.path == "/healthz":
                self._send_json(200, {"ok": True})
            elif self.path == "/stats":
                self._send_json(200, self.server.service.stats())
            elif self.path == "/metrics":
                self._send_metrics()
            else:
                self._send_json(404, {"ok": False, "error": "unknown path"})
        except Exception as exc:  # repro-check: allow-broad-except
            self._send_unexpected(exc)

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler contract)
        try:
            self._route_post()
        except Exception as exc:  # repro-check: allow-broad-except
            self._send_unexpected(exc)

    def _route_post(self) -> None:
        if self.path not in ("/search", "/batch"):
            self._count_request("other")
            self._send_json(404, {"ok": False, "error": "unknown path"})
            return
        self._count_request(self.path)
        body = self._read_json()
        if body is None:
            return
        try:
            if self.path == "/search":
                self._handle_search(body)
            else:
                self._handle_batch(body)
        except (ServiceOverloadError, CircuitOpenError) as exc:
            # Load shedding / fail-fast: tell the client when to retry.
            self._send_json(
                503,
                {"ok": False, "error": str(exc), "overloaded": True},
                headers={
                    "Retry-After": str(
                        max(1, int(round(exc.retry_after)))
                    )
                },
            )
        except ReproError as exc:
            self._send_json(400, {"ok": False, "error": str(exc)})
        except (TypeError, ValueError) as exc:
            self._send_json(400, {"ok": False, "error": str(exc)})

    def _query_tokens(self, body: Dict[str, Any], query: Any):
        service = self.server.service
        if isinstance(query, str):
            if service.tokenizer is None:
                raise ValueError(
                    "string queries need a server-side tokenizer; "
                    "send 'tokens' instead"
                )
            return service.tokenizer.tokens(query)
        if isinstance(query, list) and all(
            isinstance(t, str) for t in query
        ):
            return query
        raise ValueError("a query must be a string or a list of tokens")

    @staticmethod
    def _deadline_of(body: Dict[str, Any]) -> Optional[float]:
        deadline_ms = body.get("deadline_ms")
        return deadline_ms / 1000.0 if deadline_ms is not None else None

    def _result_dict(self, result: ServiceResult) -> Dict[str, Any]:
        service = self.server.service
        if result.result is None:
            return result.to_dict()
        return result.to_dict(payload_fn=service.payload)

    def _handle_search(self, body: Dict[str, Any]) -> None:
        service = self.server.service
        query = body.get("tokens", body.get("text"))
        if query is None:
            raise ValueError("body needs 'tokens' or 'text'")
        tokens = self._query_tokens(body, query)
        result = service.search(
            tokens,
            float(body.get("threshold", DEFAULT_THRESHOLD)),
            algorithm=body.get("algorithm"),
            deadline=self._deadline_of(body),
        )
        self._send_json(200, self._result_dict(result))

    def _handle_batch(self, body: Dict[str, Any]) -> None:
        service = self.server.service
        raw = body.get("queries")
        if not isinstance(raw, list):
            raise ValueError("body needs 'queries': a list")
        token_lists = []
        for query in raw:
            # A query tokenizing to nothing becomes an error slot in
            # the batch answer, not an HTTP error for the whole batch.
            token_lists.append(self._query_tokens(body, query))
        results = service.search_batch(
            token_lists,
            float(body.get("threshold", DEFAULT_THRESHOLD)),
            algorithm=body.get("algorithm"),
            deadline=self._deadline_of(body),
            strategy=body.get("strategy", "threads"),
        )
        self._send_json(
            200,
            {
                "ok": True,
                "results": [self._result_dict(r) for r in results],
            },
        )


class ServiceHTTPServer:
    """Owns a ``ThreadingHTTPServer`` bound to a service instance.

    ``port=0`` binds an ephemeral port (use :attr:`port`/:attr:`url`
    after construction).  ``start()`` serves on a daemon thread;
    ``serve_forever()`` blocks the calling thread (the CLI path).
    """

    def __init__(
        self,
        service: SimilarityService,
        host: str = "127.0.0.1",
        port: int = 8080,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        self._httpd = ThreadingHTTPServer(
            (host, port), _ServiceRequestHandler
        )
        self._httpd.daemon_threads = True
        # Hand the handler its context through the server object.
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceHTTPServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-httpd",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


__all__ = ["ServiceHTTPServer", "DEFAULT_THRESHOLD"]
