"""Service resilience primitives: retry, circuit breaker, admission.

Three small machines sit between :class:`SimilarityService` and its
backend, turning infrastructure failures (real, or injected by
:mod:`repro.faults`) into bounded, observable behaviour:

* :class:`RetryPolicy` / :func:`call_with_retries` — bounded retries
  with exponential backoff and **full jitter**
  (``uniform(0, min(max_delay, base * 2**attempt))``) for
  :class:`~repro.faults.errors.TransientIOError`.  The jitter PRNG is
  seeded and the sleeper injectable, so tests replay exact backoff
  sequences without sleeping.
* :class:`CircuitBreaker` — per-backend closed → open → half-open.
  After ``threshold`` consecutive failures the breaker fails fast with
  :class:`~repro.core.errors.CircuitOpenError` (no backend call) until
  ``reset_seconds`` pass on an injectable monotonic clock; the next
  call is a half-open probe whose outcome closes or re-opens it.
* :class:`AdmissionController` — bounded in-flight work.  Arrivals that
  would exceed ``max_inflight`` are shed immediately with
  :class:`~repro.core.errors.ServiceOverloadError` (the HTTP layer maps
  it to 503 + ``Retry-After``) instead of queueing unboundedly; a
  draining controller sheds everything new while :meth:`drain` waits
  for in-flight queries to finish.

Metrics (through the PR-3 registry, when enabled): ``retries_total``,
``retry_backoff_seconds``, ``breaker_state``, ``queries_shed_total``
(by reason), ``service_inflight_queries``.  Knob-to-behaviour mapping
lives in ``docs/robustness.md``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional, Tuple, Type

from ..core.errors import CircuitOpenError, ServiceOverloadError
from ..faults.errors import TransientIOError
from ..obs import metrics as obs_metrics

__all__ = [
    "RetryPolicy",
    "call_with_retries",
    "CircuitBreaker",
    "AdmissionController",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

BREAKER_CLOSED = 0
BREAKER_OPEN = 1
BREAKER_HALF_OPEN = 2

_STATE_NAMES = {
    BREAKER_CLOSED: "closed",
    BREAKER_OPEN: "open",
    BREAKER_HALF_OPEN: "half-open",
}


class RetryPolicy:
    """Bounded retries with seeded exponential backoff + full jitter.

    ``attempts`` counts *total* tries (1 = no retries).  Delay before
    retry ``k`` (0-based) is drawn uniformly from
    ``[0, min(max_delay, base_delay * 2**k))`` — AWS-style full jitter,
    which decorrelates retry storms better than equal jitter.  The draw
    comes from one seeded PRNG under a lock, so a single-threaded test
    sees a reproducible delay sequence; ``sleeper`` defaults to
    :func:`time.sleep` and is replaced by a recording stub in tests.
    """

    def __init__(
        self,
        attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 1.0,
        seed: int = 0,
        sleeper: Optional[Callable[[float], None]] = None,
        retryable: Tuple[Type[BaseException], ...] = (TransientIOError,),
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.seed = seed
        self.sleeper = sleeper if sleeper is not None else time.sleep
        self.retryable = retryable
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def backoff(self, retry_index: int) -> float:
        """Jittered delay before 0-based retry ``retry_index``."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** retry_index))
        with self._lock:
            return self._rng.uniform(0.0, ceiling)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(attempts={self.attempts}, "
            f"base={self.base_delay}, max={self.max_delay})"
        )


def call_with_retries(fn: Callable, *args, policy: RetryPolicy):
    """Invoke ``fn(*args)``, retrying per ``policy`` on retryable errors.

    Non-retryable exceptions propagate immediately; the last retryable
    error propagates after the attempt budget is spent.  Each retry
    bumps ``retries_total`` and records its backoff in the
    ``retry_backoff_seconds`` histogram.
    """
    registry = obs_metrics.get_registry()
    last: Optional[BaseException] = None
    for attempt in range(policy.attempts):
        try:
            return fn(*args)
        except policy.retryable as exc:
            last = exc
            if attempt == policy.attempts - 1:
                break
            delay = policy.backoff(attempt)
            if registry.enabled:
                registry.counter(
                    "retries_total",
                    "Backend calls retried after a transient failure.",
                ).inc()
                registry.histogram(
                    "retry_backoff_seconds",
                    "Jittered backoff slept before each retry.",
                    buckets=(
                        0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                    ),
                ).observe(delay)
            if delay > 0.0:
                policy.sleeper(delay)
    assert last is not None  # the loop either returned or recorded an error
    raise last


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    ``allow()`` is called before each backend attempt: it raises
    :class:`CircuitOpenError` while open, and admits exactly one probe
    at a time once ``reset_seconds`` have elapsed (half-open).  The
    caller reports the outcome via :meth:`record_success` /
    :meth:`record_failure`.  The ``breaker_state`` gauge mirrors the
    state (0 closed / 1 open / 2 half-open).
    """

    def __init__(
        self,
        threshold: int = 5,
        reset_seconds: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_seconds <= 0:
            raise ValueError("reset_seconds must be positive")
        self.threshold = threshold
        self.reset_seconds = reset_seconds
        self.clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> int:
        with self._lock:
            return self._state

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self.state]

    def _set_state(self, state: int) -> None:
        # Caller holds the lock.
        self._state = state
        registry = obs_metrics.get_registry()
        if registry.enabled:
            registry.gauge(
                "breaker_state",
                "Circuit breaker state: 0 closed, 1 open, 2 half-open.",
            ).set(state)

    def allow(self) -> None:
        """Admit one attempt or raise :class:`CircuitOpenError`."""
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return
            if self._state == BREAKER_OPEN:
                remaining = (
                    self._opened_at + self.reset_seconds - self.clock()
                )
                if remaining > 0.0:
                    raise CircuitOpenError(
                        f"circuit breaker open for another "
                        f"{remaining:.3f}s after {self._failures} "
                        "consecutive failures",
                        retry_after=max(remaining, 0.001),
                    )
                self._set_state(BREAKER_HALF_OPEN)
                self._probing = False
            # Half-open: exactly one in-flight probe decides the state.
            if self._probing:
                raise CircuitOpenError(
                    "circuit breaker half-open: a probe is already "
                    "in flight",
                    retry_after=self.reset_seconds,
                )
            self._probing = True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probing = False
            if self._state != BREAKER_CLOSED:
                self._set_state(BREAKER_CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if (
                self._state == BREAKER_HALF_OPEN
                or self._failures >= self.threshold
            ):
                self._opened_at = self.clock()
                if self._state != BREAKER_OPEN:
                    self._set_state(BREAKER_OPEN)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state_name}, "
            f"failures={self._failures}/{self.threshold})"
        )


class AdmissionController:
    """Bounded in-flight work with load shedding and drain support.

    ``max_inflight=None`` disables the bound but keeps in-flight
    accounting (needed for :meth:`drain`).  ``acquire(weight)`` either
    admits the work or raises :class:`ServiceOverloadError` at once —
    there is no hidden queue to build unbounded latency in.
    """

    def __init__(self, max_inflight: Optional[int] = None) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self._inflight = 0
        self._draining = False
        self._cond = threading.Condition()

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    def _shed(self, weight: int, reason: str) -> None:
        registry = obs_metrics.get_registry()
        if registry.enabled:
            registry.counter(
                "queries_shed_total",
                "Queries rejected by admission control.",
                ("reason",),
            ).labels(reason=reason).inc(weight)

    def acquire(self, weight: int = 1) -> None:
        """Admit ``weight`` queries or shed them with an overload error."""
        with self._cond:
            if self._draining:
                self._shed(weight, "draining")
                raise ServiceOverloadError(
                    "service is draining for shutdown", retry_after=5.0
                )
            if (
                self.max_inflight is not None
                and self._inflight + weight > self.max_inflight
            ):
                self._shed(weight, "overload")
                raise ServiceOverloadError(
                    f"service at capacity ({self._inflight} in flight, "
                    f"limit {self.max_inflight})",
                    retry_after=1.0,
                )
            self._inflight += weight
            self._observe_inflight()

    def release(self, weight: int = 1) -> None:
        with self._cond:
            self._inflight = max(0, self._inflight - weight)
            self._observe_inflight()
            if self._inflight == 0:
                self._cond.notify_all()

    def _observe_inflight(self) -> None:
        # Caller holds the lock.
        registry = obs_metrics.get_registry()
        if registry.enabled:
            registry.gauge(
                "service_inflight_queries",
                "Queries currently admitted and executing.",
            ).set(self._inflight)

    def begin_drain(self) -> None:
        """Stop admitting; arrivals now shed with reason ``draining``."""
        with self._cond:
            self._draining = True

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Begin draining and wait for in-flight work to finish.

        Returns True when the service emptied, False on timeout (the
        controller stays draining either way).
        """
        with self._cond:
            self._draining = True
            return self._cond.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    def resume(self) -> None:
        """Leave draining mode (tests and planned restarts)."""
        with self._cond:
            self._draining = False

    def __repr__(self) -> str:
        return (
            f"AdmissionController(inflight={self.inflight}, "
            f"max={self.max_inflight}, draining={self.draining})"
        )
