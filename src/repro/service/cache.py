"""Bounded LRU caches for the query service layer.

Two things are worth caching between selection queries:

* **prepared queries** — :class:`~repro.core.query.PreparedQuery`
  construction sorts the distinct tokens, looks up every idf weight and
  computes the normalized query length (Theorem 1's ``len(q)``); for a
  repeated or overlapping query this work is identical every time;
* **results** — a selection is a pure function of
  ``(query tokens, tau, algorithm)`` *for a fixed corpus*, so answers can
  be replayed until the corpus changes.

Both caches are generation-checked: every entry is stamped with the
backend *version token* (see :meth:`repro.core.collection.SetCollection.generation`
and :attr:`repro.core.updatable.UpdatableSearcher.version`) current when
it was stored, and a lookup under a different version is a miss.  A
version change therefore invalidates the whole cache lazily — no
eviction sweep, no subscription to index internals.

Thread safety: all mutating operations hold one lock (an
``OrderedDict`` move-to-end is not atomic under concurrent writers).
The lock is never held while computing a value, so concurrent misses
for the same key may duplicate work but never corrupt state.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Tuple

from ..core.errors import ConfigurationError
from ..obs import metrics as obs_metrics

_MISS = object()


class GenerationLRUCache:
    """A bounded LRU mapping whose entries expire on version change.

    ``version`` can be any hashable token; entries stored under one
    version are invisible (and lazily evicted) under any other.

    A cache built with a ``name`` additionally publishes every hit and
    miss to the global metrics registry as ``cache_hits_total`` /
    ``cache_misses_total`` labeled ``{cache=name}``; anonymous caches
    keep only their local counters.
    """

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ConfigurationError("cache capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[Hashable, Any]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _publish(self, hit: bool) -> None:
        if not self.name:
            return
        registry = obs_metrics.get_registry()
        if not registry.enabled:
            return
        family = "cache_hits_total" if hit else "cache_misses_total"
        help_text = (
            "Cache lookups served from the cache."
            if hit
            else "Cache lookups that fell through (including stale entries)."
        )
        registry.counter(family, help_text, ("cache",)).labels(
            cache=self.name
        ).inc()

    def get(self, key: Hashable, version: Hashable) -> Any:
        """The cached value, or ``None`` on miss/stale entry."""
        with self._lock:
            entry = self._entries.get(key, _MISS)
            if entry is _MISS:
                self.misses += 1
                hit = False
            else:
                stored_version, value = entry
                if stored_version != version:
                    # Stale: the backend mutated since this was stored.
                    del self._entries[key]
                    self.invalidations += 1
                    self.misses += 1
                    hit = False
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    hit = True
        self._publish(hit)
        return value if hit else None

    def put(self, key: Hashable, version: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = (version, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }

    def __repr__(self) -> str:
        return (
            f"GenerationLRUCache(size={len(self._entries)}/"
            f"{self.capacity}, hits={self.hits}, misses={self.misses})"
        )


def result_cache_key(
    tokens: Tuple[str, ...], tau: float, algorithm: str
) -> Tuple[Hashable, ...]:
    """The canonical result-cache key.

    Token *order and multiplicity* do not affect a selection
    (:class:`~repro.core.query.PreparedQuery` distinct-sorts), so the key
    uses the distinct token set; ``tau`` participates exactly (two
    thresholds are different queries even when within SCORE_EPSILON of
    each other — cached replay must be bit-identical, never merely
    close).
    """
    return (frozenset(tokens), tau, algorithm)


def prepared_cache_key(tokens: Tuple[str, ...]) -> Hashable:
    """Prepared queries depend only on the distinct token set (plus the
    corpus statistics, which the version stamp covers)."""
    return frozenset(tokens)
