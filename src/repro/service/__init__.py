"""Concurrent query serving over the selection algorithms.

The ``service`` layer sits above ``algorithms`` in the package DAG and
turns the one-query-at-a-time library into a throughput-oriented
server: generation-checked LRU caches for prepared queries and results,
thread-pool batch execution with rare-token locality sorting and
request coalescing, per-query deadlines with an explicitly flagged SF
fallback, and a stdlib JSON-over-HTTP front end (``repro serve``).

See ``docs/service.md`` for the architecture and guarantees.
"""

from .cache import (
    GenerationLRUCache,
    prepared_cache_key,
    result_cache_key,
)
from .httpd import ServiceHTTPServer
from .resilience import (
    AdmissionController,
    CircuitBreaker,
    RetryPolicy,
    call_with_retries,
)
from .service import (
    BATCH_STRATEGIES,
    DEGRADED_ALGORITHM,
    SHARED_SCAN_OVERLAP,
    ServiceConfig,
    ServiceResult,
    SimilarityService,
)

__all__ = [
    "BATCH_STRATEGIES",
    "DEGRADED_ALGORITHM",
    "SHARED_SCAN_OVERLAP",
    "AdmissionController",
    "CircuitBreaker",
    "GenerationLRUCache",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceResult",
    "SimilarityService",
    "call_with_retries",
    "prepared_cache_key",
    "result_cache_key",
]
