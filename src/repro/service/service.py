"""The concurrent query service: caching, batching, deadlines.

The paper's algorithms answer one selection at a time; a serving
deployment amortizes work *across* queries.  :class:`SimilarityService`
wraps a :class:`~repro.core.search.SetSimilaritySearcher` (or an
:class:`~repro.core.updatable.UpdatableSearcher`) behind a facade that

* caches **prepared queries** (token idf weights, ``len(q)``, the
  Theorem 1 window machinery) and **results** in generation-checked LRU
  caches (:mod:`repro.service.cache`) — any index mutation changes the
  backend's version token and lazily invalidates both;
* executes **batches** on a ``ThreadPoolExecutor`` with per-query
  ``IOStats`` isolation (every execution opens its own cursors and
  ledger; the index structures are read-only during search), sorting the
  batch by each query's rarest tokens so queries sharing hot lists run
  adjacently — better buffer-pool locality — and coalescing identical
  in-batch queries so a burst of duplicates costs one execution;
* enforces per-query **deadlines** with graceful degradation: on
  timeout the configured algorithm is abandoned and the query re-runs as
  ``SF`` with a *tightened* cutoff (higher threshold → stronger λ/window
  pruning → bounded work).  A degraded answer contains only exact,
  correct scores but may miss borderline results between the requested
  and tightened thresholds; it is always explicitly flagged, never
  silent.

When no deadline fires and the per-query (``"threads"``) strategy runs,
service answers are **bit-identical** to calling
``searcher.search_prepared`` directly — the service adds no scoring path
of its own.  The ``"shared"`` strategy delegates to
:class:`~repro.algorithms.batch.BatchSelector` (each token list scanned
once for the whole batch); its answer *sets* are identical with scores
equal up to floating-point summation order.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import AlgorithmResult
from ..algorithms.batch import BatchSelector, batch_overlap_factor
from ..core.errors import ConfigurationError, EmptyQueryError
from ..core.query import PreparedQuery
from ..core.search import SetSimilaritySearcher
from ..core.updatable import UpdatableSearcher
from ..faults import runtime as faults_runtime
from ..obs import metrics as obs_metrics
from .cache import (
    GenerationLRUCache,
    prepared_cache_key,
    result_cache_key,
)
from .resilience import (
    AdmissionController,
    CircuitBreaker,
    RetryPolicy,
    call_with_retries,
)

DEGRADED_ALGORITHM = "sf"

BATCH_STRATEGIES = ("threads", "shared", "auto")

#: ``"auto"`` switches to the shared scan at this mean number of
#: interested queries per distinct batch token (the crossover shape
#: measured by ``benchmarks/bench_extension_batch.py``).
SHARED_SCAN_OVERLAP = 3.0


class ServiceConfig:
    """Tunables for :class:`SimilarityService`.

    Parameters
    ----------
    algorithm:
        Default selection algorithm (any registered name, or ``"auto"``).
    max_workers:
        Thread-pool width for batch execution (``None`` lets the
        executor pick; CPython threads bound scheduling overhead rather
        than adding CPUs for the simulated index, so modest widths win).
    result_cache_size / prepared_cache_size:
        LRU capacities; ``0`` disables the respective cache.
    deadline_seconds:
        Default per-query deadline; ``None`` means no deadline.
    degrade_tighten:
        How far the fallback cutoff moves from ``tau`` toward ``1.0``
        on a deadline miss: ``tau' = tau + degrade_tighten * (1 - tau)``.
    locality_sort:
        Sort batches by rarest-token key before dispatch.
    retry_attempts / retry_base_delay / retry_max_delay / retry_seed:
        Bounded-retry policy for transient backend I/O failures
        (:class:`~repro.service.resilience.RetryPolicy`): total tries,
        exponential-backoff base and cap (seconds), and the jitter
        PRNG seed.
    breaker_threshold / breaker_reset_seconds:
        Circuit breaker: consecutive failures before opening, and how
        long it fails fast before admitting a half-open probe.
    max_inflight:
        Admission-control bound on concurrently admitted queries
        (batch weight = batch size); ``None`` disables shedding.
    """

    __slots__ = (
        "algorithm",
        "max_workers",
        "result_cache_size",
        "prepared_cache_size",
        "deadline_seconds",
        "degrade_tighten",
        "locality_sort",
        "retry_attempts",
        "retry_base_delay",
        "retry_max_delay",
        "retry_seed",
        "breaker_threshold",
        "breaker_reset_seconds",
        "max_inflight",
    )

    def __init__(
        self,
        algorithm: str = "sf",
        max_workers: Optional[int] = None,
        result_cache_size: int = 1024,
        prepared_cache_size: int = 4096,
        deadline_seconds: Optional[float] = None,
        degrade_tighten: float = 0.5,
        locality_sort: bool = True,
        retry_attempts: int = 3,
        retry_base_delay: float = 0.05,
        retry_max_delay: float = 1.0,
        retry_seed: int = 0,
        breaker_threshold: int = 5,
        breaker_reset_seconds: float = 30.0,
        max_inflight: Optional[int] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        if not (0.0 < degrade_tighten <= 1.0):
            raise ConfigurationError("degrade_tighten must be in (0, 1]")
        if deadline_seconds is not None and deadline_seconds <= 0.0:
            raise ConfigurationError("deadline_seconds must be positive")
        if retry_attempts < 1:
            raise ConfigurationError("retry_attempts must be >= 1")
        if breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be >= 1")
        if breaker_reset_seconds <= 0.0:
            raise ConfigurationError("breaker_reset_seconds must be positive")
        if max_inflight is not None and max_inflight < 1:
            raise ConfigurationError("max_inflight must be >= 1")
        self.algorithm = algorithm
        self.max_workers = max_workers
        self.result_cache_size = result_cache_size
        self.prepared_cache_size = prepared_cache_size
        self.deadline_seconds = deadline_seconds
        self.degrade_tighten = degrade_tighten
        self.locality_sort = locality_sort
        self.retry_attempts = retry_attempts
        self.retry_base_delay = retry_base_delay
        self.retry_max_delay = retry_max_delay
        self.retry_seed = retry_seed
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_seconds = breaker_reset_seconds
        self.max_inflight = max_inflight

    def degraded_tau(self, tau: float) -> float:
        """The tightened cutoff used after a deadline miss."""
        return min(1.0, tau + self.degrade_tighten * (1.0 - tau))


class ServiceResult:
    """One service answer: the algorithm result plus serving metadata.

    ``result`` is ``None`` only when ``error`` is set (e.g. an empty
    query in a batch).  ``degraded`` marks a deadline fallback: scores
    are exact but answers between ``tau`` and ``degraded_tau`` may be
    missing.  ``cached`` marks a result-cache replay; ``coalesced``
    marks a duplicate answered by another in-batch execution.
    """

    __slots__ = (
        "result",
        "tau",
        "algorithm",
        "cached",
        "coalesced",
        "degraded",
        "degraded_tau",
        "error",
        "wall_seconds",
    )

    def __init__(
        self,
        result: Optional[AlgorithmResult],
        tau: float,
        algorithm: str,
        cached: bool = False,
        coalesced: bool = False,
        degraded: bool = False,
        degraded_tau: Optional[float] = None,
        error: Optional[str] = None,
        wall_seconds: float = 0.0,
    ) -> None:
        self.result = result
        self.tau = tau
        self.algorithm = algorithm
        self.cached = cached
        self.coalesced = coalesced
        self.degraded = degraded
        self.degraded_tau = degraded_tau
        self.error = error
        self.wall_seconds = wall_seconds

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def results(self):
        """The answer list (empty when the query errored)."""
        return self.result.results if self.result is not None else []

    def to_dict(self, payload_fn=None) -> Dict[str, Any]:
        """JSON-ready representation (used by the HTTP endpoint)."""
        matches = []
        for r in self.results:
            match: Dict[str, Any] = {"id": r.set_id, "score": r.score}
            if payload_fn is not None:
                match["payload"] = payload_fn(r.set_id)
            matches.append(match)
        out: Dict[str, Any] = {
            "ok": self.ok,
            "algorithm": self.algorithm,
            "threshold": self.tau,
            "cached": self.cached,
            "degraded": self.degraded,
            "results": matches,
        }
        if self.degraded:
            out["degraded_threshold"] = self.degraded_tau
        if self.error is not None:
            out["error"] = self.error
        return out

    def __repr__(self) -> str:
        flags = [
            name
            for name in ("cached", "coalesced", "degraded")
            if getattr(self, name)
        ]
        suffix = f" [{','.join(flags)}]" if flags else ""
        return (
            f"ServiceResult(answers={len(self.results)}, "
            f"tau={self.tau}, alg={self.algorithm}{suffix})"
        )


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class _SearcherBackend:
    """Static index backend over a :class:`SetSimilaritySearcher`."""

    def __init__(self, searcher: SetSimilaritySearcher) -> None:
        self.searcher = searcher
        # Force the lazy corpus statistics and lengths now, so worker
        # threads never race to initialize them mid-batch.
        collection = searcher.collection
        if collection.frozen and len(collection):
            collection.stats
            collection.lengths()

    def version(self) -> Tuple[Any, ...]:
        collection = self.searcher.collection
        return (id(collection), collection.generation)

    def prepare(self, tokens: Sequence[str]) -> PreparedQuery:
        return self.searcher.prepare(tokens)

    def execute(
        self,
        tokens: Sequence[str],
        prepared: PreparedQuery,
        tau: float,
        algorithm: str,
    ) -> AlgorithmResult:
        return self.searcher.search_prepared(prepared, tau, algorithm)

    def batch_selector(self) -> Optional[BatchSelector]:
        return BatchSelector(self.searcher.index)

    def payload(self, set_id: int) -> Any:
        return self.searcher.collection.payload(set_id)


class _UpdatableBackend:
    """Mutable backend over an :class:`UpdatableSearcher` (epoch stats)."""

    def __init__(self, updatable: UpdatableSearcher) -> None:
        self.updatable = updatable

    def version(self) -> Tuple[Any, ...]:
        return self.updatable.version

    def prepare(self, tokens: Sequence[str]) -> PreparedQuery:
        # Used for validation and locality sorting only; execution goes
        # through the updatable's own base+delta fan-out.
        return PreparedQuery(tokens, self.updatable.stats_epoch)

    def execute(
        self,
        tokens: Sequence[str],
        prepared: PreparedQuery,
        tau: float,
        algorithm: str,
    ) -> AlgorithmResult:
        return self.updatable.search(list(tokens), tau, algorithm)

    def batch_selector(self) -> Optional[BatchSelector]:
        return None  # the delta index rules out a single shared scan

    def payload(self, set_id: int) -> Any:
        return self.updatable.payload(set_id)


# ----------------------------------------------------------------------
# the facade
# ----------------------------------------------------------------------
class SimilarityService:
    """Concurrent selection serving over one index backend.

    Accepts either backend type::

        service = SimilarityService(searcher)            # static index
        service = SimilarityService(updatable_searcher)  # epoch updates

    Close it (or use it as a context manager) to release the worker
    pool; a service that never sees a deadline or a batch never starts
    one.
    """

    def __init__(
        self,
        backend,
        config: Optional[ServiceConfig] = None,
        tokenizer=None,
    ) -> None:
        if isinstance(backend, SetSimilaritySearcher):
            self._backend = _SearcherBackend(backend)
        elif isinstance(backend, UpdatableSearcher):
            self._backend = _UpdatableBackend(backend)
        else:
            raise ConfigurationError(
                "backend must be a SetSimilaritySearcher or an "
                f"UpdatableSearcher, got {type(backend).__name__}"
            )
        self.config = config or ServiceConfig()
        self.tokenizer = tokenizer
        self._results = (
            GenerationLRUCache(self.config.result_cache_size, name="result")
            if self.config.result_cache_size
            else None
        )
        self._prepared = (
            GenerationLRUCache(
                self.config.prepared_cache_size, name="prepared"
            )
            if self.config.prepared_cache_size
            else None
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._retry = RetryPolicy(
            attempts=self.config.retry_attempts,
            base_delay=self.config.retry_base_delay,
            max_delay=self.config.retry_max_delay,
            seed=self.config.retry_seed,
        )
        self._breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            reset_seconds=self.config.breaker_reset_seconds,
        )
        self._admission = AdmissionController(self.config.max_inflight)
        self.queries_served = 0
        self.degraded_count = 0
        self.coalesced_count = 0
        self.deadline_misses = 0

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop admitting, wait for in-flight queries,
        then release the pool.  New arrivals are shed with
        :class:`~repro.core.errors.ServiceOverloadError` while draining.
        Returns True when everything in flight completed in time."""
        drained = self._admission.drain(timeout)
        self.close()
        return drained

    def __enter__(self) -> "SimilarityService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.max_workers,
                    thread_name_prefix="repro-service",
                )
            return self._executor

    # -- preparation & caching -----------------------------------------
    def prepare(self, tokens: Sequence[str]) -> PreparedQuery:
        """Prepared-query cache front: same semantics as the searcher's
        ``prepare`` (raises :class:`EmptyQueryError` on empty input)."""
        version = self._backend.version()
        if self._prepared is None:
            return self._backend.prepare(tokens)
        key = prepared_cache_key(tuple(tokens))
        prepared = self._prepared.get(key, version)
        if prepared is None:
            prepared = self._backend.prepare(tokens)
            self._prepared.put(key, version, prepared)
        return prepared

    def invalidate(self) -> int:
        """Drop every cached entry; returns the number dropped.

        Rarely needed: version stamping already invalidates entries
        lazily after any index mutation.
        """
        dropped = 0
        for cache in (self._results, self._prepared):
            if cache is not None:
                dropped += cache.clear()
        return dropped

    def stats(self) -> Dict[str, Any]:
        """Serving counters plus per-cache hit/miss statistics."""
        return {
            "queries_served": self.queries_served,
            "degraded": self.degraded_count,
            "coalesced": self.coalesced_count,
            "deadline_misses": self.deadline_misses,
            "inflight": self._admission.inflight,
            "draining": self._admission.draining,
            "breaker_state": self._breaker.state_name,
            "result_cache": (
                self._results.stats() if self._results else None
            ),
            "prepared_cache": (
                self._prepared.stats() if self._prepared else None
            ),
        }

    # -- resilient backend execution -----------------------------------
    def _execute_raw(
        self,
        tokens: Sequence[str],
        prepared: PreparedQuery,
        tau: float,
        algorithm: str,
    ) -> AlgorithmResult:
        faults_runtime.maybe_fire("service.execute")
        return self._backend.execute(tokens, prepared, tau, algorithm)

    def _execute_resilient(
        self,
        tokens: Sequence[str],
        prepared: PreparedQuery,
        tau: float,
        algorithm: str,
    ) -> AlgorithmResult:
        """One backend execution behind the breaker and retry policy.

        Transient I/O errors (real or injected at the
        ``service.execute`` fault point) are retried with jittered
        backoff; exhausted retries and unexpected failures feed the
        circuit breaker, which fails fast once ``breaker_threshold``
        consecutive executions have failed.
        """
        self._breaker.allow()
        try:
            result = call_with_retries(
                self._execute_raw,
                tokens,
                prepared,
                tau,
                algorithm,
                policy=self._retry,
            )
        except Exception:  # repro-check: allow-broad-except
            # Any failure flavour counts against the breaker; the
            # exception itself is re-raised untouched.
            self._breaker.record_failure()
            raise
        self._breaker.record_success()
        return result

    # -- single-query path ---------------------------------------------
    def search(
        self,
        tokens: Sequence[str],
        tau: float,
        algorithm: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> ServiceResult:
        """One selection through the admission, cache, and deadline
        machinery.

        Raises :class:`EmptyQueryError` for queries with no tokens
        (batch slots report it as ``error`` instead) and
        :class:`~repro.core.errors.ServiceOverloadError` when admission
        control sheds the query.
        """
        self._admission.acquire(1)
        try:
            return self._search_admitted(tokens, tau, algorithm, deadline)
        finally:
            self._admission.release(1)

    def _search_admitted(
        self,
        tokens: Sequence[str],
        tau: float,
        algorithm: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> ServiceResult:
        algorithm = algorithm or self.config.algorithm
        deadline = (
            deadline if deadline is not None
            else self.config.deadline_seconds
        )
        started = time.perf_counter()
        version = self._backend.version()
        key = result_cache_key(tuple(tokens), tau, algorithm)
        if self._results is not None:
            hit = self._results.get(key, version)
            if hit is not None:
                self._count(queries=1)
                wall = time.perf_counter() - started
                self._observe_latency(wall)
                return ServiceResult(
                    hit, tau, algorithm, cached=True, wall_seconds=wall,
                )
        prepared = self.prepare(tokens)
        if deadline is None:
            out = ServiceResult(
                self._execute_resilient(tokens, prepared, tau, algorithm),
                tau,
                algorithm,
            )
        else:
            future = self._pool().submit(
                self._execute_resilient, tokens, prepared, tau, algorithm
            )
            out = self._collect_with_deadline(
                future, tokens, prepared, tau, algorithm, deadline
            )
        if (
            self._results is not None
            and not out.degraded
            and out.result is not None
        ):
            self._results.put(key, version, out.result)
        out.wall_seconds = time.perf_counter() - started
        self._observe_latency(out.wall_seconds)
        self._count(queries=1, degraded=1 if out.degraded else 0)
        return out

    def search_text(
        self,
        text: str,
        tau: float,
        algorithm: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> ServiceResult:
        """String front door (requires a tokenizer)."""
        if self.tokenizer is None:
            raise ConfigurationError(
                "search_text requires the service to be built with a "
                "tokenizer"
            )
        return self.search(
            self.tokenizer.tokens(text), tau, algorithm, deadline
        )

    def payload(self, set_id: int) -> Any:
        return self._backend.payload(set_id)

    def _count(
        self, queries: int = 0, degraded: int = 0, coalesced: int = 0,
        deadline_misses: int = 0,
    ) -> None:
        with self._counter_lock:
            self.queries_served += queries
            self.degraded_count += degraded
            self.coalesced_count += coalesced
            self.deadline_misses += deadline_misses
        registry = obs_metrics.get_registry()
        if not registry.enabled:
            return
        if queries:
            registry.counter(
                "service_queries_total",
                "Queries answered by the service facade "
                "(cached, coalesced, and degraded included).",
            ).inc(queries)
        if degraded:
            registry.counter(
                "deadline_degradations_total",
                "Queries answered by the tightened-threshold SF fallback.",
            ).inc(degraded)
        if coalesced:
            registry.counter(
                "coalesced_queries_total",
                "In-batch duplicates answered by another execution.",
            ).inc(coalesced)
        if deadline_misses:
            registry.counter(
                "deadline_misses_total",
                "Primary executions that exceeded their deadline.",
            ).inc(deadline_misses)

    def _observe_latency(self, wall_seconds: float) -> None:
        registry = obs_metrics.get_registry()
        if registry.enabled:
            registry.histogram(
                "service_request_latency_seconds",
                "Wall-clock latency of SimilarityService.search calls "
                "(cache hits included).",
            ).observe(wall_seconds)

    def _collect_with_deadline(
        self,
        future: "Future[AlgorithmResult]",
        tokens: Sequence[str],
        prepared: PreparedQuery,
        tau: float,
        algorithm: str,
        deadline: float,
    ) -> ServiceResult:
        """Await the primary attempt; degrade gracefully on timeout.

        CPython threads cannot be cancelled, so a timed-out primary
        keeps running in its worker; its result is adopted anyway if it
        finished by the time the fallback completes (late but complete
        beats degraded).  The fallback runs *in the collecting thread* —
        never submitted to the pool, so a saturated pool cannot starve
        the degraded path.
        """
        try:
            return ServiceResult(
                future.result(timeout=deadline), tau, algorithm
            )
        except FutureTimeout:
            self._count(deadline_misses=1)
        fallback_tau = self.config.degraded_tau(tau)
        fallback = self._execute_resilient(
            tokens, prepared, fallback_tau, DEGRADED_ALGORITHM
        )
        if future.done() and future.exception() is None:
            # The primary finished while the fallback ran: prefer the
            # complete answer (late, but neither degraded nor wrong).
            return ServiceResult(future.result(), tau, algorithm)
        return ServiceResult(
            fallback,
            tau,
            algorithm,
            degraded=True,
            degraded_tau=fallback_tau,
        )

    # -- batch path -----------------------------------------------------
    def search_batch(
        self,
        queries: Sequence[Sequence[str]],
        tau: float,
        algorithm: Optional[str] = None,
        deadline: Optional[float] = None,
        strategy: str = "threads",
    ) -> List[ServiceResult]:
        """Execute a batch of token-set queries at one threshold.

        Returns one :class:`ServiceResult` per input, in input order;
        queries that tokenize to nothing get ``error`` slots rather than
        raising.  ``strategy`` is ``"threads"`` (per-query algorithm,
        deadlines honoured, bit-identical answers), ``"shared"``
        (term-at-a-time :class:`BatchSelector` scan, no deadlines) or
        ``"auto"`` (shared when token overlap is high and no deadline is
        configured).

        Admission control weighs the whole batch: when admitting
        ``len(queries)`` more queries would exceed ``max_inflight``,
        the batch is shed with
        :class:`~repro.core.errors.ServiceOverloadError`.
        """
        weight = max(len(queries), 1)
        self._admission.acquire(weight)
        try:
            return self._search_batch_admitted(
                queries, tau, algorithm, deadline, strategy
            )
        finally:
            self._admission.release(weight)

    def _search_batch_admitted(
        self,
        queries: Sequence[Sequence[str]],
        tau: float,
        algorithm: Optional[str] = None,
        deadline: Optional[float] = None,
        strategy: str = "threads",
    ) -> List[ServiceResult]:
        if strategy not in BATCH_STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {BATCH_STRATEGIES}, "
                f"got {strategy!r}"
            )
        algorithm = algorithm or self.config.algorithm
        deadline = (
            deadline if deadline is not None
            else self.config.deadline_seconds
        )
        version = self._backend.version()

        prepared: List[Optional[PreparedQuery]] = []
        out: List[Optional[ServiceResult]] = []
        for tokens in queries:
            try:
                prepared.append(self.prepare(tokens))
                out.append(None)
            except EmptyQueryError as exc:
                prepared.append(None)
                out.append(
                    ServiceResult(None, tau, algorithm, error=str(exc))
                )

        if strategy == "auto":
            live = [q for q in prepared if q is not None]
            strategy = (
                "shared"
                if deadline is None
                and self._backend.batch_selector() is not None
                and batch_overlap_factor(live) >= SHARED_SCAN_OVERLAP
                else "threads"
            )

        if strategy == "shared":
            self._run_shared(queries, prepared, out, tau, version)
        else:
            self._run_threads(
                queries, prepared, out, tau, algorithm, deadline, version
            )
        self._count(
            queries=sum(1 for r in out if r is not None and r.ok)
        )
        return out  # type: ignore[return-value]  # every slot is filled

    def _run_threads(
        self,
        queries: Sequence[Sequence[str]],
        prepared: List[Optional[PreparedQuery]],
        out: List[Optional[ServiceResult]],
        tau: float,
        algorithm: str,
        deadline: Optional[float],
        version,
    ) -> None:
        """Per-query execution: cache, coalesce, sort, dispatch, collect."""
        # 1. Replay cache hits; group the remaining work by result key
        #    so identical in-batch queries execute once (coalescing).
        pending: Dict[Tuple, List[int]] = {}
        for i, query in enumerate(prepared):
            if query is None:
                continue
            key = result_cache_key(tuple(queries[i]), tau, algorithm)
            if self._results is not None:
                hit = self._results.get(key, version)
                if hit is not None:
                    out[i] = ServiceResult(hit, tau, algorithm, cached=True)
                    continue
            pending.setdefault(key, []).append(i)

        # 2. Locality sort: queries sharing their rarest (highest-idf)
        #    tokens run adjacently, so consecutive workers touch the
        #    same hot lists (and the same buffer-pool pages).
        order = list(pending.items())
        if self.config.locality_sort:
            order.sort(key=lambda item: prepared[item[1][0]].tokens)

        # 3. Dispatch one execution per distinct key.  Workers never
        #    submit nested pool work (the deadline fallback runs in the
        #    collector), so the pool cannot deadlock on itself.
        pool = self._pool()
        futures = [
            (
                key,
                indices,
                pool.submit(
                    self._execute_resilient,
                    queries[indices[0]],
                    prepared[indices[0]],
                    tau,
                    algorithm,
                ),
            )
            for key, indices in order
        ]

        # 4. Collect in dispatch order.  The per-query deadline clock
        #    starts when the collector reaches the future — by then the
        #    future has been runnable at least that long, so no query is
        #    degraded for time it spent queued behind the batch.
        for key, indices, future in futures:
            if deadline is None:
                primary = ServiceResult(future.result(), tau, algorithm)
            else:
                primary = self._collect_with_deadline(
                    future,
                    queries[indices[0]],
                    prepared[indices[0]],
                    tau,
                    algorithm,
                    deadline,
                )
            if (
                self._results is not None
                and not primary.degraded
                and primary.result is not None
            ):
                self._results.put(key, version, primary.result)
            if primary.degraded:
                self._count(degraded=len(indices))
            out[indices[0]] = primary
            for duplicate in indices[1:]:
                out[duplicate] = ServiceResult(
                    primary.result,
                    tau,
                    algorithm,
                    coalesced=True,
                    degraded=primary.degraded,
                    degraded_tau=primary.degraded_tau,
                )
                self._count(coalesced=1)

    def _run_shared(
        self,
        queries: Sequence[Sequence[str]],
        prepared: List[Optional[PreparedQuery]],
        out: List[Optional[ServiceResult]],
        tau: float,
        version,
    ) -> None:
        """Term-at-a-time shared scan over the batch's cache misses.

        Results are cached under the ``"batch"`` algorithm label — the
        shared scan's summation order may differ from a per-query
        algorithm's in the last float ulp, so the two cache populations
        are kept distinct to preserve the bit-identical replay guarantee
        of the per-query path.
        """
        selector = self._backend.batch_selector()
        if selector is None:
            raise ConfigurationError(
                "the shared batch strategy requires a static index "
                "backend (UpdatableSearcher serves base + delta indexes)"
            )
        miss_indices: List[int] = []
        for i, query in enumerate(prepared):
            if query is None:
                continue
            key = result_cache_key(tuple(queries[i]), tau, "batch")
            if self._results is not None:
                hit = self._results.get(key, version)
                if hit is not None:
                    out[i] = ServiceResult(hit, tau, "batch", cached=True)
                    continue
            miss_indices.append(i)
        if not miss_indices:
            return
        results, _stats = selector.search_many(
            [prepared[i] for i in miss_indices], tau
        )
        for i, result in zip(miss_indices, results):
            key = result_cache_key(tuple(queries[i]), tau, "batch")
            if self._results is not None:
                self._results.put(key, version, result)
            out[i] = ServiceResult(result, tau, "batch")

    def __repr__(self) -> str:
        return (
            f"SimilarityService(served={self.queries_served}, "
            f"degraded={self.degraded_count})"
        )


__all__ = [
    "BATCH_STRATEGIES",
    "DEGRADED_ALGORITHM",
    "SHARED_SCAN_OVERLAP",
    "ServiceConfig",
    "ServiceResult",
    "SimilarityService",
]
