"""Runtime invariant contracts for the paper's semantic properties.

The pruning algorithms are only correct while three invariants hold
(Section IV of the paper):

* **Order Preservation (Property 1)** — every weight-ordered inverted
  list is sorted by increasing ``(len(s), id(s))``;
* **Magnitude Boundedness (Property 2)** — per-token contributions
  ``w_i(s) = idf(q^i)² / (len(s)·len(q))`` are monotone non-increasing
  as a list is consumed, and so are SF's λ cutoffs;
* **Length Boundedness (Theorem 1)** — every answer ``s`` satisfies
  ``τ·len(q) ≤ len(s) ≤ len(q)/τ``.

Nothing in normal operation should ever violate them, which is exactly
why refactors break them silently.  This module provides cheap runtime
assertions that the storage layer and the iTA/iNRA/SF hot paths consult
*only* when checking is enabled; with checking disabled (the default)
the cost is one boolean test at a handful of per-query call sites —
never per posting.

Enable with the environment variable ``REPRO_CHECK_INVARIANTS=1``
(read once at import time) or programmatically::

    from repro import contracts
    previous = contracts.set_invariant_checking(True)
    ...
    contracts.set_invariant_checking(previous)

The test suite enables checking globally (see ``tests/conftest.py``);
benchmarks run with it disabled.  Violations raise
:class:`ContractViolation`, which is both a :class:`ReproError` (so the
CLI reports it cleanly) and an :class:`AssertionError` (so it reads as
what it is: a broken internal invariant, not a user mistake).
"""

from __future__ import annotations

import functools
import os
from typing import Callable, Iterable, Optional, Sequence, Tuple, TypeVar

from .core.errors import ReproError

__all__ = [
    "ENV_VAR",
    "ContractViolation",
    "invariants_enabled",
    "set_invariant_checking",
    "invariant",
    "assert_sorted",
    "check_order_preservation",
    "check_magnitude_bound",
    "check_length_window",
]

ENV_VAR = "REPRO_CHECK_INVARIANTS"

_TRUTHY = {"1", "true", "yes", "on"}

FuncT = TypeVar("FuncT", bound=Callable)


class ContractViolation(ReproError, AssertionError):
    """An internal semantic invariant was observed broken at runtime."""

    def __init__(self, contract: str, detail: str) -> None:
        self.contract = contract
        self.detail = detail
        super().__init__(f"contract violated [{contract}]: {detail}")


class _CheckState:
    """Mutable process-wide switch; a class so the flag can be flipped
    after modules captured a reference to the singleton."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled


CHECKS = _CheckState(os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY)


def invariants_enabled() -> bool:
    """Whether runtime invariant checking is currently on."""
    return CHECKS.enabled


def set_invariant_checking(enabled: bool) -> bool:
    """Flip checking on or off; returns the previous state.

    Structures that snapshot the flag at construction time (e.g. index
    cursors) keep the behaviour they were built with; flip the flag
    before building a searcher to instrument it.
    """
    previous = CHECKS.enabled
    CHECKS.enabled = bool(enabled)
    return previous


def invariant(contract: str) -> Callable[[FuncT], FuncT]:
    """Decorator marking a function as an invariant check.

    The decorated function body runs only while checking is enabled;
    when disabled the wrapper returns immediately, so ``@invariant``
    checks may be called unconditionally from hot paths at the price of
    one boolean test.
    """

    def decorate(func: FuncT) -> FuncT:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not CHECKS.enabled:
                return None
            return func(*args, **kwargs)

        wrapper.contract = contract  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


@invariant("sortedness")
def assert_sorted(
    entries: Iterable, what: str = "sequence", strict: bool = False
) -> None:
    """Raise unless ``entries`` is in non-decreasing (or strictly
    increasing) order."""
    previous = None
    for position, entry in enumerate(entries):
        if previous is not None and (
            entry < previous or (strict and entry == previous)
        ):
            raise ContractViolation(
                "sortedness",
                f"{what} out of order at position {position}: "
                f"{entry!r} after {previous!r}",
            )
        previous = entry


@invariant("order-preservation")
def check_order_preservation(
    entries: Iterable[Tuple[float, int]], source: str = "inverted list"
) -> None:
    """Property 1: ``(len, id)`` keys strictly increase along a list."""
    previous: Optional[Tuple[float, int]] = None
    for position, key in enumerate(entries):
        if previous is not None and key <= previous:
            raise ContractViolation(
                "order-preservation",
                f"{source} not sorted by (len, id) at position "
                f"{position}: {key!r} follows {previous!r}",
            )
        previous = key


@invariant("magnitude-boundedness")
def check_magnitude_bound(
    contributions: Sequence[float],
    source: str = "per-token contributions",
    tolerance: float = 1e-12,
) -> None:
    """Property 2: a list's contribution sequence never increases."""
    for position in range(1, len(contributions)):
        if contributions[position] > contributions[position - 1] + tolerance:
            raise ContractViolation(
                "magnitude-boundedness",
                f"{source} increased at position {position}: "
                f"{contributions[position]!r} after "
                f"{contributions[position - 1]!r}",
            )


@invariant("length-boundedness")
def check_length_window(
    lengths: Iterable[Tuple[int, float]],
    query_length: float,
    tau: float,
    floor: float = 0.0,
    tolerance: float = 1e-9,
    source: str = "result set",
) -> None:
    """Theorem 1: answers lie inside ``[τ·len(q), len(q)/τ]``.

    ``lengths`` yields ``(set_id, normalized_length)`` pairs for the
    reported answers.  ``floor`` is any caller-imposed extra lower bound
    (the self-join's probe-length floor).  The check holds whether or
    not the executing algorithm *used* Length Boundedness: exact answers
    always satisfy Theorem 1, so a result outside the window means the
    scoring or pruning logic is broken.
    """
    if not (0.0 < tau <= 1.0) or query_length <= 0.0:
        return
    lo = max(tau * query_length, floor)
    hi = query_length / tau
    for set_id, length in lengths:
        if length < lo - tolerance or length > hi + tolerance:
            raise ContractViolation(
                "length-boundedness",
                f"{source} contains set {set_id} with normalized length "
                f"{length!r} outside the window [{lo!r}, {hi!r}] "
                f"(tau={tau!r}, len(q)={query_length!r})",
            )
