"""Candidate-set bookkeeping structures for the threshold algorithms.

Three organizations, matching the paper:

* :class:`Candidate` — per-set running state (length, aggregated lower
  bound, bitmask of lists where the set has been seen).
* :class:`HashCandidateSet` — a flat hash table keyed by set id, scanned in
  full (or lazily, with early termination) once per round-robin iteration.
  This is what NRA/iNRA use.
* :class:`PartitionedCandidateSet` — Section VII's organization for the
  Hybrid algorithm: one length-sorted list ``c_i`` per inverted list plus a
  hash table.  Candidates discovered in list ``i`` arrive in increasing
  ``(length, id)`` order, so insertion is an O(1) append; ``max_len(C)`` is
  the max over the tails of the per-list lists (O(n), not O(|C|)); pruning
  drops provably dead candidates from the backs of the lists.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["Candidate", "HashCandidateSet", "PartitionedCandidateSet"]


class Candidate:
    """Running state for one set under consideration.

    ``seen_mask`` has bit ``i`` set once the set has been read from list
    ``i``; ``dead_mask`` has bit ``i`` set once list ``i`` is *ruled out*
    for this set (order preservation passed it, or the list completed).
    The exact score is final when every list is either seen or dead.
    """

    __slots__ = ("set_id", "length", "lower", "seen_mask", "dead_mask")

    def __init__(self, set_id: int, length: float) -> None:
        self.set_id = set_id
        self.length = length
        self.lower = 0.0
        self.seen_mask = 0
        self.dead_mask = 0

    def see(self, list_index: int, contribution: float) -> None:
        bit = 1 << list_index
        if not self.seen_mask & bit:
            self.seen_mask |= bit
            self.lower += contribution

    def seen(self, list_index: int) -> bool:
        return bool(self.seen_mask & (1 << list_index))

    def rule_out(self, list_index: int) -> None:
        self.dead_mask |= 1 << list_index

    def resolved(self, all_mask: int) -> bool:
        """True when every list has been seen or ruled out (score final)."""
        return (self.seen_mask | self.dead_mask) & all_mask == all_mask

    def sort_key(self) -> Tuple[float, int]:
        return (self.length, self.set_id)

    def __repr__(self) -> str:
        return (
            f"Candidate(id={self.set_id}, len={self.length:.3f}, "
            f"lower={self.lower:.4f})"
        )


class HashCandidateSet:
    """Flat hash-table candidate set (NRA / iNRA organization)."""

    def __init__(self) -> None:
        self._by_id: Dict[int, Candidate] = {}
        self.peak = 0

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, set_id: int) -> bool:
        return set_id in self._by_id

    def get(self, set_id: int) -> Optional[Candidate]:
        return self._by_id.get(set_id)

    def add(self, candidate: Candidate) -> Candidate:
        self._by_id[candidate.set_id] = candidate
        if len(self._by_id) > self.peak:
            self.peak = len(self._by_id)
        return candidate

    def remove(self, set_id: int) -> None:
        self._by_id.pop(set_id, None)

    def __iter__(self) -> Iterator[Candidate]:
        return iter(self._by_id.values())

    def scan(self) -> List[Candidate]:
        """Snapshot for iteration while mutating the set."""
        return list(self._by_id.values())

    def clear(self) -> None:
        self._by_id.clear()


class PartitionedCandidateSet:
    """Section VII's per-list partitioned organization (used by Hybrid).

    Each candidate lives in exactly one partition: the list it was first
    discovered in.  Within a partition, candidates are stored in discovery
    order, which by construction is increasing ``(length, id)``.  Dead
    candidates are tombstoned in the hash table and physically removed
    lazily when partitions are trimmed from the back.
    """

    def __init__(self, num_lists: int) -> None:
        self._by_id: Dict[int, Candidate] = {}
        self._partitions: List[List[Candidate]] = [[] for _ in range(num_lists)]
        self.peak = 0

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, set_id: int) -> bool:
        return set_id in self._by_id

    def get(self, set_id: int) -> Optional[Candidate]:
        return self._by_id.get(set_id)

    def add(self, candidate: Candidate, discovered_in: int) -> Candidate:
        """Append to the discovery partition — O(1), no sorting needed."""
        self._by_id[candidate.set_id] = candidate
        self._partitions[discovered_in].append(candidate)
        if len(self._by_id) > self.peak:
            self.peak = len(self._by_id)
        return candidate

    def remove(self, set_id: int) -> None:
        """Tombstone: drop from the hash table; the partition entry is
        skipped (and physically dropped when the back is trimmed)."""
        self._by_id.pop(set_id, None)

    def _trim_partition_back(self, partition: List[Candidate]) -> None:
        while partition and partition[-1].set_id not in self._by_id:
            partition.pop()

    def max_length(self) -> float:
        """``max_len(C)``: max candidate length, from the partition tails.

        Costs O(num_lists) — peeking one (live) tail per partition — instead
        of a scan of the whole candidate set; this is exactly the point of
        the Section VII organization.
        """
        best = 0.0
        for partition in self._partitions:
            self._trim_partition_back(partition)
            if partition:
                tail = partition[-1]
                if tail.length > best:
                    best = tail.length
        return best

    def prune_back(self, is_dead: Callable[[Candidate], bool]) -> int:
        """Drop dead candidates from the back of every partition.

        ``is_dead`` must be monotone within a partition (true for the
        length-based best-case bound: partitions are length-sorted and the
        best-case score is non-increasing in length), so popping stops at
        the first live candidate.  Returns the number removed.
        """
        removed = 0
        for partition in self._partitions:
            while partition:
                self._trim_partition_back(partition)
                if not partition:
                    break
                tail = partition[-1]
                if is_dead(tail):
                    partition.pop()
                    self._by_id.pop(tail.set_id, None)
                    removed += 1
                else:
                    break
        return removed

    def __iter__(self) -> Iterator[Candidate]:
        return iter(self._by_id.values())

    def scan(self) -> List[Candidate]:
        return list(self._by_id.values())
