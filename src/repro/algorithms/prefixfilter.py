"""Prefix filter selection — the related-work baseline of Section IX.

Chaudhuri, Ganti & Kaushik's prefix filter [2] was designed for joins; the
paper notes it "can be modified to work for all weighted similarity
measures for selection queries" (the degenerate join with a single probe
set).  This module implements that modification for the IDF measure, as a
candidate-generation + verification baseline:

**Principle.**  Fix a global token order (here: decreasing idf², ties by
token).  For a set ``s``, let its *prefix* ``P_beta(s)`` be the shortest
head of ``s``'s ordered tokens whose removal drops more than a ``1 - beta``
fraction of impossible weight — concretely, the shortest head such that the
remaining suffix satisfies ``Σ_{t in suffix} idf(t)² < beta · len(s)²``.
If ``I(q, s) >= tau`` then

    Σ_{t ∈ q∩s} idf(t)²  >=  tau · len(q) · len(s),

so ``q`` and ``s`` must share at least one token inside each other's
prefixes computed at ``beta = tau·len(q)/len(s) ...`` — in practice the
index is built once for a *minimum supported threshold* ``tau_min`` using
the worst case of Theorem 1 (``len(q) >= tau_min · len(s)``), giving
``beta = tau_min²``.  Queries with ``tau >= tau_min`` are answered exactly;
lower thresholds raise :class:`~repro.core.errors.ConfigurationError`.

The index stores postings only for prefix tokens, so it is much smaller
than the full inverted index; the price is a verification pass over every
candidate.  The benchmark compares its candidate counts against SF's
element accesses — reproducing the paper's judgement that it is "subsumed
by the SQL based approach" (and a fortiori by the specialized algorithms).
"""

from __future__ import annotations

import time
from typing import List, Sequence, Set

from ..core.collection import SetCollection
from ..core.errors import ConfigurationError, EmptyQueryError
from ..core.properties import effective_threshold, validate_threshold
from ..core.similarity import idf_similarity
from .base import AlgorithmResult, SearchResult
from ..storage.pages import IOStats


def _ordered_tokens(tokens, stats) -> List[str]:
    """Global prefix order: decreasing idf², ties by token string."""
    return sorted(tokens, key=lambda t: (-stats.idf_squared(t), t))


def _prefix_length(
    ordered: Sequence[str], stats, beta: float, set_norm_sq: float
) -> int:
    """Shortest head such that the suffix weight is below beta·len(s)²."""
    if set_norm_sq <= 0.0:
        return 0
    suffix = set_norm_sq
    for i, token in enumerate(ordered):
        if suffix < beta * set_norm_sq:
            return i
        suffix -= stats.idf_squared(token)
    return len(ordered)


class PrefixFilterSearcher:
    """Prefix-filter selection for the IDF measure (exact for tau >= tau_min).

    Parameters
    ----------
    collection:
        The database of sets.
    tau_min:
        The smallest threshold the index must support.  Smaller values keep
        longer prefixes (bigger index, weaker filter); ``tau_min = 1.0``
        indexes only each set's single heaviest token.
    """

    def __init__(self, collection: SetCollection, tau_min: float = 0.5):
        validate_threshold(tau_min)
        if not collection.frozen:
            raise ConfigurationError("collection must be frozen")
        self.collection = collection
        self.tau_min = tau_min
        stats = collection.stats
        # Worst case of Theorem 1: len(q) >= tau_min·len(s), so a shared
        # prefix token is guaranteed whenever the suffix weight stays below
        # tau_min² · len(s)².
        beta = tau_min * tau_min
        self._index: Dict[str, List[int]] = {}
        self._prefix_sizes: List[int] = []
        lengths = collection.lengths()
        for rec in collection:
            ordered = _ordered_tokens(rec.tokens, stats)
            norm_sq = lengths[rec.set_id] ** 2
            plen = _prefix_length(ordered, stats, beta, norm_sq)
            # Guarantee a non-empty prefix for non-empty sets.
            plen = max(plen, 1) if ordered else 0
            self._prefix_sizes.append(plen)
            for token in ordered[:plen]:
                self._index.setdefault(token, []).append(rec.set_id)

    # ------------------------------------------------------------------
    def index_postings(self) -> int:
        """Total prefix postings (compare with the full index's count)."""
        return sum(len(ids) for ids in self._index.values())

    def search(self, tokens: Sequence[str], tau: float) -> AlgorithmResult:
        """Exact selection for ``tau >= tau_min``."""
        validate_threshold(tau)
        if tau < self.tau_min:
            raise ConfigurationError(
                f"index built for tau >= {self.tau_min}, got {tau}"
            )
        stats = self.collection.stats
        distinct = frozenset(tokens)
        if not distinct:
            raise EmptyQueryError("query produced no tokens")
        io = IOStats()
        started = time.perf_counter()

        ordered = _ordered_tokens(distinct, stats)
        q_norm_sq = sum(stats.idf_squared(t) for t in ordered)
        # The query's own prefix at beta = tau² (its exact threshold).
        q_plen = max(_prefix_length(ordered, stats, tau * tau, q_norm_sq), 1)

        candidates: Set[int] = set()
        for token in ordered[:q_plen]:
            for set_id in self._index.get(token, ()):
                io.charge_element()
                candidates.add(set_id)

        cutoff = effective_threshold(tau)
        q_length = q_norm_sq ** 0.5
        lengths = self.collection.lengths()
        results: List[SearchResult] = []
        for set_id in candidates:
            rec = self.collection[set_id]
            score = idf_similarity(
                distinct, rec.tokens, stats,
                q_length=q_length, s_length=lengths[set_id],
            )
            if score >= cutoff:
                results.append(SearchResult(set_id, score))
        elapsed = time.perf_counter() - started
        return AlgorithmResult(
            algorithm="prefix-filter",
            results=results,
            stats=io,
            elements_total=self.index_postings(),
            wall_seconds=elapsed,
            peak_candidates=len(candidates),
        )
