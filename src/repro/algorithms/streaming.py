"""Streaming selections: yield answers as they are confirmed.

The batch interfaces return complete answer lists; interactive callers
(autocomplete, "first good match wins" pipelines) want results *as found*
and the right to stop early — abandoning the scan without paying for the
rest.  Two algorithm families support confirmed-early emission naturally:

* **sort-by-id** — the heap-top id's score is final the moment it is
  popped (it either appeared in every list already or never will again);
* **TA-style** — every encountered id is completed on the spot by random
  access, so any qualifying id can be emitted immediately; iTA's window
  and probe-avoidance carry over.

:func:`stream_search` returns a generator over
:class:`~repro.algorithms.base.SearchResult`; dropping the generator stops
all list consumption at that point.  NRA-family algorithms are deliberately
not offered here: their answers confirm only at pruning boundaries, which
makes emission order erratic — use the batch API for those.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.properties import effective_threshold, validate_threshold
from ..core.query import PreparedQuery
from ..storage.invlist import InvertedIndex
from ..storage.pages import IOStats
from .base import QueryLists, SearchResult

STREAMING_ALGORITHMS = ("sort-by-id", "ita")


def stream_search(
    index: InvertedIndex,
    query: PreparedQuery,
    tau: float,
    algorithm: str = "ita",
    stats: Optional[IOStats] = None,
    use_length_bounds: bool = True,
    use_skip_lists: bool = True,
) -> Iterator[SearchResult]:
    """Generate answers incrementally; safe to abandon at any point.

    Emission order: ascending set id for ``sort-by-id``; discovery order
    (roughly descending contribution) for ``ita``.  Every emitted score is
    exact and final.
    """
    validate_threshold(tau)
    if algorithm == "sort-by-id":
        return _stream_sort_by_id(index, query, tau, stats)
    if algorithm == "ita":
        return _stream_ita(
            index, query, tau, stats, use_length_bounds, use_skip_lists
        )
    raise ConfigurationError(
        f"streaming supports {STREAMING_ALGORITHMS}, got {algorithm!r}"
    )


def _stream_sort_by_id(
    index: InvertedIndex,
    query: PreparedQuery,
    tau: float,
    stats: Optional[IOStats],
) -> Iterator[SearchResult]:
    cutoff = effective_threshold(tau)
    io = stats if stats is not None else IOStats()
    lists = QueryLists(index, query, io, order="id")
    heap: List[Tuple[int, int]] = []
    for i, cursor in enumerate(lists.cursors):
        if not cursor.exhausted():
            heapq.heappush(heap, (cursor.peek()[0], i))
    while heap:
        top_id = heap[0][0]
        score = 0.0
        while heap and heap[0][0] == top_id:
            _, i = heapq.heappop(heap)
            cursor = lists.cursors[i]
            _sid, length = cursor.next()
            score += lists.contribution(i, length)
            if not cursor.exhausted():
                heapq.heappush(heap, (cursor.peek()[0], i))
        if score >= cutoff:
            yield SearchResult(top_id, score)


def _stream_ita(
    index: InvertedIndex,
    query: PreparedQuery,
    tau: float,
    stats: Optional[IOStats],
    use_length_bounds: bool,
    use_skip_lists: bool,
) -> Iterator[SearchResult]:
    cutoff = effective_threshold(tau)
    io = stats if stats is not None else IOStats()
    lists = QueryLists(index, query, io, use_skip_lists=use_skip_lists)
    n = len(lists)
    if n == 0:
        return
    if use_length_bounds:
        lo, hi = query.bounds(cutoff)
    else:
        lo, hi = 0.0, float("inf")
    cursors = lists.cursors
    if use_length_bounds:
        for cursor in cursors:
            cursor.seek_length_ge(lo)
    complete = [False] * n
    frontier_key: List[Optional[Tuple[float, int]]] = [None] * n
    frontier_contrib = [0.0] * n
    seen = set()
    for i, cursor in enumerate(cursors):
        if cursor.exhausted():
            complete[i] = True

    while not all(complete):
        for i, cursor in enumerate(cursors):
            if complete[i]:
                continue
            if cursor.exhausted() or cursor.peek()[0] > hi:
                complete[i] = True
                frontier_contrib[i] = 0.0
                continue
            length, set_id = cursor.next()
            frontier_key[i] = (length, set_id)
            frontier_contrib[i] = lists.contribution(i, length)
            if cursor.exhausted():
                complete[i] = True
                frontier_contrib[i] = 0.0
            if set_id in seen:
                continue
            seen.add(set_id)
            key = (length, set_id)
            plausible = [
                j
                for j in range(n)
                if j != i
                and not complete[j]
                and (frontier_key[j] is None or frontier_key[j] < key)
            ]
            total_idf_sq = lists.idf_squared[i] + sum(
                lists.idf_squared[j] for j in plausible
            )
            total_idf_sq = min(total_idf_sq, length * length)
            denom = length * query.length
            if denom <= 0 or total_idf_sq / denom < cutoff:
                continue
            score = lists.contribution(i, length)
            for j in plausible:
                found = index.probe(lists.tokens[j], set_id, io)
                if found is not None:
                    score += lists.contribution(j, length)
            if score >= cutoff:
                yield SearchResult(set_id, score)
        if all(complete):
            break
        f_threshold = sum(
            frontier_contrib[j] for j in range(n) if not complete[j]
        )
        if f_threshold < cutoff:
            break


def first_match(
    index: InvertedIndex,
    query: PreparedQuery,
    tau: float,
    algorithm: str = "ita",
) -> Optional[SearchResult]:
    """The cheapest 'does anything match?' probe: stop at the first hit."""
    for result in stream_search(index, query, tau, algorithm):
        return result
    return None
