"""Classic NRA (No Random Access) — Algorithm 1 of the paper.

Round-robin sequential reads over the weight-ordered lists; an in-memory
hash table of candidates with aggregated lower bounds and per-list seen
bits.  Upper bounds use only *monotonicity*: a candidate's missing lists are
charged at the current frontier contribution ``w_i(f_i)``.  None of the
Section IV semantic properties are used — no length-window seeking, no
order-preservation absence deduction, no magnitude-bounded upper bounds.
That is exactly why Lemma 1 can construct instances where NRA reads
arbitrarily more elements than iNRA.

The paper's experimental setup could not run textbook NRA to completion and
enabled two bookkeeping reducers (Section VIII-A): skip candidate-set scans
while ``F >= tau`` (no candidate can be pruned before that point anyway for
termination purposes) and stop a pruning scan early once a viable candidate
is found.  Both are on by default here (``lazy_scans``); construct with
``lazy_scans=False`` for the textbook behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..storage.invlist import InvertedIndex
from .base import (
    QueryLists,
    SearchResult,
    SelectionAlgorithm,
    register_algorithm,
)
from .candidates import Candidate, HashCandidateSet


@register_algorithm
class NRA(SelectionAlgorithm):
    """Textbook NRA over weight-ordered inverted lists (Algorithm 1;
    the Lemma 1 lower-bound baseline)."""

    name = "nra"

    def __init__(
        self,
        index: InvertedIndex,
        lazy_scans: bool = True,
        **kwargs,
    ) -> None:
        # Classic NRA uses neither length bounds nor skip lists; accept and
        # override the shared knobs so the harness can construct uniformly.
        kwargs["use_length_bounds"] = False
        kwargs["use_skip_lists"] = False
        super().__init__(index, **kwargs)
        self.lazy_scans = lazy_scans

    def _run(self, lists: QueryLists, tau: float) -> Tuple[List[SearchResult], int]:
        n = len(lists)
        if n == 0:
            return [], 0
        all_mask = (1 << n) - 1
        candidates = HashCandidateSet()
        results: List[SearchResult] = []
        # frontier[i]: contribution of the last element read from list i
        # (an upper bound on everything unread there); None once exhausted.
        frontier: List[Optional[float]] = [None] * n
        for i, cursor in enumerate(lists.cursors):
            first_len, _ = cursor.peek()
            frontier[i] = lists.contribution(i, first_len)

        while True:
            active = False
            for i, cursor in enumerate(lists.cursors):
                if cursor.exhausted():
                    frontier[i] = None
                    continue
                active = True
                length, set_id = cursor.next()
                frontier[i] = lists.contribution(i, length)
                cand = candidates.get(set_id)
                if cand is None:
                    cand = candidates.add(Candidate(set_id, length))
                cand.see(i, lists.contribution(i, length))
                if cursor.exhausted():
                    frontier[i] = None

            f_threshold = sum(c for c in frontier if c is not None)
            exhausted_mask = 0
            for i in range(n):
                if frontier[i] is None:
                    exhausted_mask |= 1 << i

            if not active:
                # All lists consumed: every lower bound is the exact score.
                for cand in candidates.scan():
                    if cand.lower >= tau:
                        results.append(SearchResult(cand.set_id, cand.lower))
                candidates.clear()
                break

            if self.lazy_scans and f_threshold >= tau and exhausted_mask == 0:
                # Section VIII-A optimization: pruning cannot empty the
                # candidate set while F >= tau, so skip the scan entirely.
                continue

            for cand in candidates.scan():
                lists.stats.charge_candidate_scan()
                # Lists that ran out can no longer contribute.
                cand.dead_mask |= exhausted_mask & ~cand.seen_mask
                if cand.resolved(all_mask):
                    if cand.lower >= tau:
                        results.append(SearchResult(cand.set_id, cand.lower))
                    candidates.remove(cand.set_id)
                    continue
                upper = cand.lower
                for i in range(n):
                    bit = 1 << i
                    if not (cand.seen_mask | cand.dead_mask) & bit:
                        upper += frontier[i] or 0.0
                if upper < tau:
                    candidates.remove(cand.set_id)
                elif self.lazy_scans:
                    # Early termination: first viable candidate ends the scan.
                    break

            # Terminate only when no candidate is alive AND no unseen set
            # can still qualify (an unseen set's score is bounded by F).
            if len(candidates) == 0 and f_threshold < tau:
                break

        return results, candidates.peak
