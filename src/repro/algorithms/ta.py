"""Classic TA (Threshold Algorithm) with random accesses — Fagin et al.

Round-robin sequential reads like NRA, but every newly encountered set id is
immediately *completed*: the algorithm probes every other list's extendible
hash index (one random page I/O each, see
:mod:`repro.storage.exthash`) to find whether the set appears there and adds
the corresponding contribution.  Because every seen id has an exact score,
no candidate set is maintained at all; the algorithm stops as soon as the
frontier threshold ``F = Σ w_i(f_i)`` drops below ``tau``, at which point no
unseen id can qualify.

The cost profile is the mirror image of NRA's: minimal bookkeeping and the
strongest possible stopping condition, paid for with ``n - 1`` random I/Os
per distinct id encountered — which is why Figure 6(b) shows TA degrading
sharply with query size.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..storage.invlist import InvertedIndex
from .base import (
    QueryLists,
    SearchResult,
    SelectionAlgorithm,
    register_algorithm,
)


@register_algorithm
class TA(SelectionAlgorithm):
    """Textbook TA over weight-ordered lists + per-list hash indexes
    (Fagin et al.; the paper's Section III-C random-access baseline)."""

    name = "ta"

    def __init__(self, index: InvertedIndex, **kwargs) -> None:
        kwargs["use_length_bounds"] = False
        kwargs["use_skip_lists"] = False
        super().__init__(index, **kwargs)

    def _complete_score(
        self, lists: QueryLists, from_list: int, set_id: int, length: float
    ) -> float:
        """Exact score via random-access probes of every other list."""
        score = lists.contribution(from_list, length)
        for j in range(len(lists)):
            if j == from_list:
                continue
            found = self.index.probe(lists.tokens[j], set_id, lists.stats)
            if found is not None:
                score += lists.contribution(j, length)
        return score

    def _run(self, lists: QueryLists, tau: float) -> Tuple[List[SearchResult], int]:
        n = len(lists)
        if n == 0:
            return [], 0
        results: List[SearchResult] = []
        seen: Set[int] = set()
        frontier: List[Optional[float]] = [None] * n

        while True:
            active = False
            for i, cursor in enumerate(lists.cursors):
                if cursor.exhausted():
                    frontier[i] = None
                    continue
                active = True
                length, set_id = cursor.next()
                frontier[i] = (
                    lists.contribution(i, length)
                    if not cursor.exhausted()
                    else None
                )
                if set_id in seen:
                    continue
                seen.add(set_id)
                score = self._complete_score(lists, i, set_id, length)
                if score >= tau:
                    results.append(SearchResult(set_id, score))
            if not active:
                break
            f_threshold = sum(c for c in frontier if c is not None)
            if f_threshold < tau:
                break
        return results, len(seen)
