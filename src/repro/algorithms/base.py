"""Shared infrastructure for the selection algorithms.

Every algorithm implements the same contract: given an
:class:`~repro.storage.invlist.InvertedIndex` and a
:class:`~repro.core.query.PreparedQuery`, return every set id whose IDF
similarity with the query is at least ``tau``, together with its exact score
and the I/O ledger accumulated while finding it.  That uniform contract is
what lets the benchmark harness swap algorithms freely and what lets the
tests check every algorithm against the brute-force reference.

:class:`QueryLists` resolves a prepared query against an index: it opens one
weight-order cursor per query token that actually has postings, keeping the
squared idfs aligned with the open cursors (tokens absent from the corpus
have empty lists and can never contribute to a score, but they still count
toward ``len(q)`` — the prepared query already handled that).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..contracts import (
    ContractViolation,
    check_length_window,
    invariants_enabled,
)
from ..core.errors import UnknownAlgorithmError
from ..core.properties import effective_threshold
from ..core.query import PreparedQuery
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..storage.invlist import InvertedIndex, WeightOrderCursor
from ..storage.pages import IOStats

__all__ = [
    "SearchResult",
    "AlgorithmResult",
    "QueryLists",
    "SelectionAlgorithm",
    "register_algorithm",
    "algorithm_names",
    "make_algorithm",
]


class SearchResult:
    """One answer: a set id and its exact IDF similarity."""

    __slots__ = ("set_id", "score")

    def __init__(self, set_id: int, score: float) -> None:
        self.set_id = set_id
        self.score = score

    def __iter__(self):
        return iter((self.set_id, self.score))

    def __eq__(self, other) -> bool:
        # Intentional exact comparison: equality here means "the same
        # answer object", not "equivalent score".
        return (  # repro-check: allow-float-eq
            (self.set_id, self.score) == (other.set_id, other.score)
        )

    def __repr__(self) -> str:
        return f"SearchResult(id={self.set_id}, score={self.score:.4f})"


class AlgorithmResult:
    """Answers plus execution telemetry.

    ``elements_total`` is the combined length of the query's inverted lists
    — the denominator of the paper's *pruning power* metric
    (``1 - elements_read / elements_total``).

    ``shared_stats`` marks a result whose ledger is shared with other
    queries (batched execution charges one ledger for the whole batch), so
    ``elements_read > elements_total`` is expected there rather than an
    accounting bug.
    """

    __slots__ = (
        "algorithm",
        "results",
        "stats",
        "elements_total",
        "wall_seconds",
        "peak_candidates",
        "shared_stats",
    )

    def __init__(
        self,
        algorithm: str,
        results: List[SearchResult],
        stats: IOStats,
        elements_total: int,
        wall_seconds: float = 0.0,
        peak_candidates: int = 0,
        shared_stats: bool = False,
    ) -> None:
        self.algorithm = algorithm
        self.results = sorted(results, key=lambda r: (-r.score, r.set_id))
        self.stats = stats
        self.elements_total = elements_total
        self.wall_seconds = wall_seconds
        self.peak_candidates = peak_candidates
        self.shared_stats = shared_stats

    @property
    def pruning_power(self) -> float:
        """Fraction of the query's list elements never read (paper, §VIII-C)."""
        if self.elements_total == 0:
            return 1.0
        read = self.stats.elements_read
        if read > self.elements_total and not self.shared_stats:
            if invariants_enabled():
                raise ContractViolation(
                    "io-accounting",
                    f"{self.algorithm} charged {read} element reads against "
                    f"lists totalling {self.elements_total} entries; a "
                    "per-query ledger over-counted (pass shared_stats=True "
                    "for ledgers deliberately shared across queries)",
                )
        read = min(read, self.elements_total)
        return 1.0 - read / self.elements_total

    def ids(self) -> List[int]:
        return [r.set_id for r in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __repr__(self) -> str:
        return (
            f"AlgorithmResult({self.algorithm}, answers={len(self.results)}, "
            f"pruning={self.pruning_power:.3f})"
        )


class QueryLists:
    """A prepared query resolved against an index: open cursors + weights.

    Attributes are aligned: ``cursors[i]`` is the weight-order cursor for the
    token with squared idf ``idf_squared[i]``; tokens whose lists are empty
    are dropped (they contribute nothing to any score).  Order follows the
    prepared query: decreasing idf.
    """

    __slots__ = (
        "query",
        "cursors",
        "idf_squared",
        "tokens",
        "elements_total",
        "stats",
    )

    def __init__(
        self,
        index: InvertedIndex,
        query: PreparedQuery,
        stats: IOStats,
        use_skip_lists: bool = True,
        order: str = "weight",
    ) -> None:
        self.query = query
        self.stats = stats
        self.cursors: List[WeightOrderCursor] = []
        self.idf_squared: List[float] = []
        self.tokens: List[str] = []
        total = 0
        for token, idf_sq in zip(query.tokens, query.idf_squared):
            if order == "weight":
                cursor = index.cursor(token, stats, use_skip_list=use_skip_lists)
            else:
                cursor = index.id_cursor(token, stats)
            if cursor is None or len(cursor) == 0:
                continue
            self.cursors.append(cursor)
            self.idf_squared.append(idf_sq)
            self.tokens.append(token)
            total += len(cursor)
        self.elements_total = total

    def __len__(self) -> int:
        return len(self.cursors)

    def contribution(self, list_index: int, set_length: float) -> float:
        """``w_i(s)`` for the i-th open list and a set of the given length."""
        denom = set_length * self.query.length
        if denom <= 0.0:
            return 0.0
        return self.idf_squared[list_index] / denom

    def total_idf_squared(self) -> float:
        return sum(self.idf_squared)


class SelectionAlgorithm:
    """Base class: configuration knobs + the timed ``search`` entry point.

    Parameters
    ----------
    index:
        The inverted index to search.
    use_length_bounds:
        Apply Theorem 1 (seek lists to ``tau*len(q)``, stop at
        ``len(q)/tau``).  Disabled for the paper's *NLB* ablation (Fig. 8).
    use_skip_lists:
        Seek with the per-list skip index instead of scan-and-discard.
        Disabled for the *NSL* ablation (Fig. 9).  Irrelevant when
        ``use_length_bounds`` is False (there is nothing to seek to).
    """

    name = "abstract"
    list_order = "weight"

    def __init__(
        self,
        index: InvertedIndex,
        use_length_bounds: bool = True,
        use_skip_lists: bool = True,
        buffer_pool_pages: Optional[int] = None,
    ) -> None:
        self.index = index
        self.use_length_bounds = use_length_bounds
        self.use_skip_lists = use_skip_lists
        self.buffer_pool_pages = buffer_pool_pages
        self._length_floor = 0.0

    # ------------------------------------------------------------------
    def search(
        self,
        query: PreparedQuery,
        tau: float,
        length_floor: float = 0.0,
    ) -> AlgorithmResult:
        """Run the selection and time it.

        Internally the comparison threshold is ``tau - SCORE_EPSILON`` (see
        :data:`repro.core.properties.SCORE_EPSILON`), consistently across
        every algorithm and the brute-force reference.

        ``length_floor`` restricts answers to sets with normalized length
        at least the floor — an *additional* constraint intersected with
        the Theorem 1 window.  The self-join uses it to visit only
        partners at least as long as the probe, halving its reads; plain
        selections leave it at 0.
        """
        tau = effective_threshold(tau)
        self._length_floor = max(0.0, length_floor)
        if self.buffer_pool_pages:
            from ..storage.buffer import BufferedIOStats

            stats: IOStats = BufferedIOStats(self.buffer_pool_pages)
        else:
            stats = IOStats()
        started = time.perf_counter()
        with obs_trace.span("query", algo=self.name, tau=tau) as query_span:
            lists = QueryLists(
                self.index,
                query,
                stats,
                use_skip_lists=self.use_skip_lists,
                order=self.list_order,
            )
            results, peak = self._run(lists, tau)
            query_span.note(answers=len(results), lists=len(lists))
        if self._length_floor > 0.0 and results:
            # Algorithms without a window (classic NRA/TA, sort-by-id) do
            # not enforce the floor while scanning; filter uniformly here
            # so the contract holds for every algorithm.
            lengths = self.index.collection.lengths()
            floor = self._length_floor
            results = [
                r for r in results if lengths[r.set_id] >= floor
            ]
        if invariants_enabled():
            self._check_result_contracts(query, tau, results)
        elapsed = time.perf_counter() - started
        result = AlgorithmResult(
            algorithm=self.name,
            results=results,
            stats=stats,
            elements_total=lists.elements_total,
            wall_seconds=elapsed,
            peak_candidates=peak,
        )
        self._observe(result, lists)
        return result

    def _check_result_contracts(
        self,
        query: PreparedQuery,
        tau: float,
        results: List[SearchResult],
    ) -> None:
        """Invariants every exact answer set satisfies, whatever the
        algorithm or ablation flags: Theorem 1's length window (answers
        obey it even when pruning never used it), scores at or above the
        effective threshold, and no duplicate ids.

        Indexes without a backing collection (test doubles with
        deliberately decoupled statistics) skip the length-window check —
        Theorem 1 presumes lengths and idfs come from the same corpus.
        """
        collection = getattr(self.index, "collection", None)
        if collection is not None:
            lengths = collection.lengths()
            check_length_window(
                ((r.set_id, lengths[r.set_id]) for r in results),
                query.length,
                tau,
                floor=self._length_floor,
                source=f"{self.name} result set",
            )
        seen = set()
        for r in results:
            if r.score < tau:
                raise ContractViolation(
                    "magnitude-boundedness",
                    f"{self.name} reported set {r.set_id} with score "
                    f"{r.score!r} below the effective threshold {tau!r}",
                )
            if r.set_id in seen:
                raise ContractViolation(
                    "order-preservation",
                    f"{self.name} reported set {r.set_id} twice; a set "
                    "must be resolved exactly once",
                )
            seen.add(r.set_id)

    def _observe(
        self, result: AlgorithmResult, lists: QueryLists
    ) -> None:
        """Flush the query's ledger into the global metrics registry.

        Runs once per query — per-posting accounting stays inside
        :class:`~repro.storage.pages.IOStats`, so the disabled cost is a
        single ``registry.enabled`` test (``bench_obs_overhead.py`` keeps
        it under 2% on the SF hot path).
        """
        registry = obs_metrics.get_registry()
        if not registry.enabled:
            return
        algo = self.name
        stats = result.stats
        registry.counter(
            "queries_total", "Selection queries executed.", ("algo",)
        ).labels(algo=algo).inc()
        registry.histogram(
            "query_latency_seconds",
            "End-to-end selection latency in seconds.",
            ("algo",),
        ).labels(algo=algo).observe(result.wall_seconds)
        registry.counter(
            "elements_read_total",
            "Inverted-list elements consumed (the paper's access-cost unit).",
            ("algo",),
        ).labels(algo=algo).inc(stats.elements_read)
        pruned = sum(1 for cursor in lists.cursors if not cursor.exhausted())
        registry.counter(
            "lists_pruned_total",
            "Query lists abandoned before exhaustion (pruning wins).",
            ("algo",),
        ).labels(algo=algo).inc(pruned)
        pages = registry.counter(
            "pages_read_total",
            "Simulated page reads billed to disk.",
            ("algo", "kind"),
        )
        pages.labels(algo=algo, kind="sequential").inc(stats.sequential_pages)
        pages.labels(algo=algo, kind="random").inc(stats.random_pages)
        registry.counter(
            "skip_jumps_total",
            "Skip-list jumps taken during length seeks.",
            ("algo",),
        ).labels(algo=algo).inc(stats.skip_jumps)
        registry.counter(
            "hash_probes_total",
            "Extendible-hash containment probes (TA-style random I/O).",
            ("algo",),
        ).labels(algo=algo).inc(stats.hash_probes)
        buffer_hits = getattr(stats, "buffer_hits", 0)
        if buffer_hits:
            registry.counter(
                "buffer_hits_total",
                "Page reads absorbed by the LRU buffer pool.",
                ("algo",),
            ).labels(algo=algo).inc(buffer_hits)

    def _run(
        self, lists: QueryLists, tau: float
    ) -> Tuple[List[SearchResult], int]:
        """Algorithm body; returns (answers, peak candidate count)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _bounds(self, lists: QueryLists, tau: float) -> Tuple[float, float]:
        """The active length window: Theorem 1 if enabled, intersected with
        any caller-imposed length floor."""
        if self.use_length_bounds:
            lo, hi = lists.query.bounds(tau)
        else:
            lo, hi = 0.0, float("inf")
        return max(lo, self._length_floor), hi

    def __repr__(self) -> str:
        flags = []
        if not self.use_length_bounds:
            flags.append("NLB")
        if not self.use_skip_lists:
            flags.append("NSL")
        suffix = f" [{' '.join(flags)}]" if flags else ""
        return f"{type(self).__name__}{suffix}"


_REGISTRY: Dict[str, type] = {}


def register_algorithm(cls: type) -> type:
    """Class decorator adding an algorithm to the by-name registry."""
    _REGISTRY[cls.name] = cls
    return cls


def algorithm_names() -> List[str]:
    return sorted(_REGISTRY)


def make_algorithm(
    name: str, index: InvertedIndex, **kwargs
) -> SelectionAlgorithm:
    """Instantiate a registered algorithm by name (see :func:`algorithm_names`)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise UnknownAlgorithmError(name, list(_REGISTRY)) from None
    return cls(index, **kwargs)
