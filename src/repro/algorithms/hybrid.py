"""Hybrid — round-robin breadth with SF's depth cutoffs (Section VII).

Hybrid reads lists round-robin like iNRA but stops descending a list as soon
as no unread element of it can matter any more: an element of length ``L``
popped from list ``i`` is useful only if

* some existing candidate with length >= ``L`` might still appear in list
  ``i`` (``L <= max_len(C)``), or
* a brand-new candidate of length ``L`` could still reach ``tau`` given the
  lists that remain open (``L <= Λ``, the dynamic analogue of SF's λ over
  the currently open lists).

Both cutoffs shrink as the search progresses — candidates get pruned and
lists complete — so Hybrid never descends deeper than SF in any list while
also never reading more elements than iNRA (Lemma 4).

The price is bookkeeping: ``max_len(C)`` must be current at every list stop
decision.  Section VII's special organization makes that cheap and is
implemented in
:class:`~repro.algorithms.candidates.PartitionedCandidateSet`: one
length-sorted candidate list per inverted list (append-only by construction)
plus a hash table; ``max_len(C)`` is the max over the partition tails
(O(#lists)) and provably-dead candidates are dropped from the partition
backs, where the length-monotone best-case bound is weakest.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..storage.invlist import InvertedIndex
from .base import (
    QueryLists,
    SearchResult,
    SelectionAlgorithm,
    register_algorithm,
)
from .candidates import Candidate, PartitionedCandidateSet


@register_algorithm
class Hybrid(SelectionAlgorithm):
    """iNRA's breadth + SF's per-list depth cutoffs + partitioned
    candidates (Section VII; element-access optimality per Lemma 4)."""

    name = "hybrid"

    def __init__(
        self,
        index: InvertedIndex,
        lazy_scans: bool = False,
        **kwargs,
    ) -> None:
        # Full scans by default: Hybrid deliberately pays extra bookkeeping
        # for maximal pruning (the paper's characterization in Section VIII-D).
        super().__init__(index, **kwargs)
        self.lazy_scans = lazy_scans

    def _run(self, lists: QueryLists, tau: float) -> Tuple[List[SearchResult], int]:
        n = len(lists)
        if n == 0:
            return [], 0
        lo, hi = self._bounds(lists, tau)
        query_len = lists.query.length
        all_mask = (1 << n) - 1
        candidates = PartitionedCandidateSet(n)
        results: List[SearchResult] = []
        total_idf_sq = lists.total_idf_squared()

        cursors = lists.cursors
        if self.use_length_bounds:
            for cursor in cursors:
                cursor.seek_length_ge(lo)

        complete = [False] * n
        frontier_key: List[Optional[Tuple[float, int]]] = [None] * n
        frontier_contrib = [0.0] * n
        open_idf_sq = sum(lists.idf_squared)
        for i, cursor in enumerate(cursors):
            if cursor.exhausted():
                complete[i] = True
                open_idf_sq -= lists.idf_squared[i]
        f_threshold = float("inf")

        def lambda_cutoff() -> float:
            """Dynamic Λ: max length of a still-admissible new candidate,
            assuming it appears in every open list."""
            if tau * query_len <= 0.0:
                return float("inf")
            return open_idf_sq / (tau * query_len)

        while True:
            for i, cursor in enumerate(cursors):
                if complete[i]:
                    continue
                if cursor.exhausted():
                    self._complete_list(
                        i, complete, frontier_contrib, lists
                    )
                    open_idf_sq -= lists.idf_squared[i]
                    continue
                stop_len = max(candidates.max_length(), lambda_cutoff())
                peek_length = cursor.peek()[0]
                if peek_length > hi or peek_length > stop_len:
                    # SF's stop condition, applied per list in round-robin:
                    # nothing unread in this list can matter.  Stop without
                    # consuming the posting.
                    self._complete_list(i, complete, frontier_contrib, lists)
                    open_idf_sq -= lists.idf_squared[i]
                    continue
                length, set_id = cursor.next()
                frontier_key[i] = (length, set_id)
                frontier_contrib[i] = lists.contribution(i, length)
                contribution = lists.contribution(i, length)
                cand = candidates.get(set_id)
                if cand is None:
                    if f_threshold < tau:
                        continue
                    if self._best_case(
                        lists, i, length, set_id, complete, frontier_key
                    ) < tau:
                        continue
                    cand = Candidate(set_id, length)
                    candidates.add(cand, discovered_in=i)
                cand.see(i, contribution)
                if cursor.exhausted():
                    self._complete_list(i, complete, frontier_contrib, lists)
                    open_idf_sq -= lists.idf_squared[i]

            f_threshold = sum(
                frontier_contrib[i] for i in range(n) if not complete[i]
            )

            if all(complete):
                for cand in candidates.scan():
                    if cand.lower >= tau:
                        results.append(SearchResult(cand.set_id, cand.lower))
                break

            # Cheap per-round pruning from the partition backs using the
            # length-monotone best-case bound (valid whatever the candidate
            # has or hasn't been seen in).
            if tau * query_len > 0.0:
                dead_above = total_idf_sq / (tau * query_len)
                candidates.prune_back(lambda c: c.length > dead_above)

            if not self.lazy_scans or f_threshold < tau:
                self._prune_scan(
                    lists, tau, candidates, results, complete,
                    frontier_key, all_mask,
                )
                if len(candidates) == 0 and f_threshold < tau:
                    break

        return results, candidates.peak

    # ------------------------------------------------------------------
    @staticmethod
    def _complete_list(
        i: int,
        complete: List[bool],
        frontier_contrib: List[float],
        lists: QueryLists,
    ) -> None:
        complete[i] = True
        frontier_contrib[i] = 0.0

    def _best_case(
        self,
        lists: QueryLists,
        from_list: int,
        length: float,
        set_id: int,
        complete: List[bool],
        frontier_key: List[Optional[Tuple[float, int]]],
    ) -> float:
        """Magnitude-boundedness admission bound (same as iNRA's)."""
        key = (length, set_id)
        total = lists.idf_squared[from_list]
        for j in range(len(lists)):
            if j == from_list or complete[j]:
                continue
            fk = frontier_key[j]
            if fk is not None and fk >= key:
                continue
            total += lists.idf_squared[j]
        total = min(total, length * length)
        denom = length * lists.query.length
        return total / denom if denom > 0.0 else 0.0

    def _prune_scan(
        self,
        lists: QueryLists,
        tau: float,
        candidates: PartitionedCandidateSet,
        results: List[SearchResult],
        complete: List[bool],
        frontier_key: List[Optional[Tuple[float, int]]],
        all_mask: int,
    ) -> None:
        """iNRA-style resolve/report/prune pass over all live candidates."""
        n = len(lists)
        for cand in candidates.scan():
            lists.stats.charge_candidate_scan()
            key = (cand.length, cand.set_id)
            for i in range(n):
                bit = 1 << i
                if cand.seen_mask & bit or cand.dead_mask & bit:
                    continue
                fk = frontier_key[i]
                if complete[i] or (fk is not None and fk >= key):
                    cand.rule_out(i)
            if cand.resolved(all_mask):
                if cand.lower >= tau:
                    results.append(SearchResult(cand.set_id, cand.lower))
                candidates.remove(cand.set_id)
                continue
            upper = cand.lower
            for i in range(n):
                bit = 1 << i
                if not (cand.seen_mask | cand.dead_mask) & bit:
                    upper += lists.contribution(i, cand.length)
            if lists.query.length > 0.0:
                upper = max(
                    min(upper, cand.length / lists.query.length), cand.lower
                )
            if upper < tau:
                candidates.remove(cand.set_id)
