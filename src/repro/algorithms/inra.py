"""iNRA — the Improved NRA algorithm (Section V, Algorithm 2).

Breadth-first (round-robin) like NRA, plus every Section IV property:

* **Length Boundedness** — each list is entered at the first posting with
  ``len >= tau*len(q)`` (via skip list when enabled) and marked *complete*
  as soon as its frontier passes ``len(q)/tau``;
* **Magnitude Boundedness** — a newly popped set is admitted to the
  candidate set only if its best-case score ``Σ_j w_j(s)`` over still
  plausible lists reaches ``tau``;
* the **frontier threshold** ``F = Σ_i w_i(f_i)`` — once ``F < tau`` no
  unseen set can qualify, so admission stops entirely and only existing
  candidates are completed;
* **Order Preservation** — a candidate not yet seen in a list whose
  frontier has passed its ``(len, id)`` key is provably absent from that
  list, so the list is ruled out of its upper bound;
* **lazy candidate scans** — the candidate set is scanned only when
  ``F < tau`` (it cannot be emptied before that), and a pruning scan stops
  at the first still-viable candidate (``lazy_scans=True``, the default).

Correctness matches NRA's: upper bounds only ever shrink for valid reasons,
and the search ends when the candidate set empties or every list completes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..contracts import ContractViolation, invariants_enabled
from ..storage.invlist import InvertedIndex
from .base import (
    QueryLists,
    SearchResult,
    SelectionAlgorithm,
    register_algorithm,
)
from .candidates import Candidate, HashCandidateSet


@register_algorithm
class INRA(SelectionAlgorithm):
    """Improved NRA with the Section IV pruning properties
    (Section V, Algorithm 2)."""

    name = "inra"

    def __init__(
        self,
        index: InvertedIndex,
        lazy_scans: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(index, **kwargs)
        self.lazy_scans = lazy_scans

    # ------------------------------------------------------------------
    def _run(self, lists: QueryLists, tau: float) -> Tuple[List[SearchResult], int]:
        n = len(lists)
        if n == 0:
            return [], 0
        lo, hi = self._bounds(lists, tau)
        all_mask = (1 << n) - 1
        candidates = HashCandidateSet()
        results: List[SearchResult] = []

        cursors = lists.cursors
        if self.use_length_bounds:
            for cursor in cursors:
                cursor.seek_length_ge(lo)

        complete = [False] * n
        # (length, id) key of the last element popped per list; None before
        # the first pop.  Used for order-preservation absence deduction.
        frontier_key: List[Optional[Tuple[float, int]]] = [None] * n
        frontier_contrib: List[float] = [0.0] * n
        for i, cursor in enumerate(cursors):
            if cursor.exhausted():
                complete[i] = True
            else:
                frontier_contrib[i] = lists.contribution(i, cursor.peek()[0])
        f_threshold = float("inf")
        verify = invariants_enabled()

        while True:
            for i, cursor in enumerate(cursors):
                if complete[i]:
                    continue
                if cursor.exhausted():
                    complete[i] = True
                    frontier_contrib[i] = 0.0
                    continue
                if cursor.peek()[0] > hi:
                    # Theorem 1: nothing at or beyond this length can answer;
                    # stop without consuming the out-of-window posting.
                    complete[i] = True
                    frontier_contrib[i] = 0.0
                    continue
                length, set_id = cursor.next()
                if verify and frontier_key[i] is not None:
                    self._check_frontier_monotone(
                        lists, i, length, frontier_contrib[i]
                    )
                frontier_key[i] = (length, set_id)
                frontier_contrib[i] = lists.contribution(i, length)
                contribution = lists.contribution(i, length)
                cand = candidates.get(set_id)
                if cand is None:
                    if f_threshold < tau:
                        continue  # no unseen set can qualify any more
                    if self._best_case(
                        lists, i, length, set_id, complete, frontier_key
                    ) < tau:
                        continue  # magnitude boundedness: never viable
                    cand = candidates.add(Candidate(set_id, length))
                cand.see(i, contribution)
                if cursor.exhausted():
                    complete[i] = True
                    frontier_contrib[i] = 0.0

            f_threshold = sum(
                frontier_contrib[i] for i in range(n) if not complete[i]
            )
            all_done = all(complete)

            if all_done:
                # Every membership is resolved: lower bounds are exact.
                for cand in candidates.scan():
                    if cand.lower >= tau:
                        results.append(SearchResult(cand.set_id, cand.lower))
                candidates.clear()
                break

            if self.lazy_scans and f_threshold >= tau:
                # The candidate set cannot empty while F >= tau: skip the scan.
                continue

            self._prune_scan(
                lists, tau, candidates, results, complete, frontier_key, all_mask
            )
            if len(candidates) == 0 and f_threshold < tau:
                break

        return results, candidates.peak

    # ------------------------------------------------------------------
    @staticmethod
    def _check_frontier_monotone(
        lists: QueryLists, list_index: int, length: float, previous: float
    ) -> None:
        """Magnitude Boundedness at the frontier: the contribution of the
        newly popped posting may never exceed the list's previous frontier
        contribution (runs only under ``REPRO_CHECK_INVARIANTS=1``)."""
        contribution = lists.contribution(list_index, length)
        if contribution > previous + 1e-12:
            raise ContractViolation(
                "magnitude-boundedness",
                f"list {lists.tokens[list_index]!r} frontier contribution "
                f"rose from {previous!r} to {contribution!r}; per-token "
                "contributions must be non-increasing",
            )

    def _best_case(
        self,
        lists: QueryLists,
        from_list: int,
        length: float,
        set_id: int,
        complete: List[bool],
        frontier_key: List[Optional[Tuple[float, int]]],
    ) -> float:
        """Property 2 admission bound for a set first seen now in ``from_list``.

        Sums the set's own potential contribution over every list that could
        still contain it: the discovering list, plus lists that are not
        complete and whose frontier has not yet passed ``(length, set_id)``.
        Stale (previous-round) frontiers only make this conservative.
        """
        key = (length, set_id)
        total_idf_sq = lists.idf_squared[from_list]
        for j in range(len(lists)):
            if j == from_list or complete[j]:
                continue
            fk = frontier_key[j]
            if fk is not None and fk >= key:
                continue  # frontier passed without seeing it: absent
            total_idf_sq += lists.idf_squared[j]
        # Theorem 1 case 2 cap: matched tokens are a subset of s, so their
        # squared idfs sum to at most len(s)².
        total_idf_sq = min(total_idf_sq, length * length)
        denom = length * lists.query.length
        return total_idf_sq / denom if denom > 0.0 else 0.0

    def _prune_scan(
        self,
        lists: QueryLists,
        tau: float,
        candidates: HashCandidateSet,
        results: List[SearchResult],
        complete: List[bool],
        frontier_key: List[Optional[Tuple[float, int]]],
        all_mask: int,
    ) -> None:
        """One pass over the candidate set: resolve, report, prune.

        With ``lazy_scans`` the pass stops at the first candidate that is
        still viable and unresolved (the conservative early termination of
        Section V) — later candidates would survive anyway is not guaranteed,
        but keeping them costs only memory, never correctness.
        """
        n = len(lists)
        for cand in candidates.scan():
            lists.stats.charge_candidate_scan()
            key = (cand.length, cand.set_id)
            for i in range(n):
                bit = 1 << i
                if cand.seen_mask & bit or cand.dead_mask & bit:
                    continue
                fk = frontier_key[i]
                if complete[i] or (fk is not None and fk >= key):
                    cand.rule_out(i)
            if cand.resolved(all_mask):
                if cand.lower >= tau:
                    results.append(SearchResult(cand.set_id, cand.lower))
                candidates.remove(cand.set_id)
                continue
            upper = cand.lower
            for i in range(n):
                bit = 1 << i
                if not (cand.seen_mask | cand.dead_mask) & bit:
                    upper += lists.contribution(i, cand.length)
            if lists.query.length > 0.0:
                # Theorem 1 case 2: I(q, s) <= len(s)/len(q) — but never
                # below the known lower bound (float-order protection).
                upper = max(
                    min(upper, cand.length / lists.query.length), cand.lower
                )
            if upper < tau:
                candidates.remove(cand.set_id)
            elif self.lazy_scans:
                break
