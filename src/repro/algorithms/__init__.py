"""Selection algorithms over inverted lists.

Importing this package registers every algorithm with the by-name factory:

>>> from repro.algorithms import make_algorithm, algorithm_names
>>> algorithm_names()
['hybrid', 'inra', 'ita', 'nra', 'sf', 'sort-by-id', 'ta']
"""

from .base import (
    AlgorithmResult,
    QueryLists,
    SearchResult,
    SelectionAlgorithm,
    algorithm_names,
    make_algorithm,
    register_algorithm,
)
from .batch import BatchSelector
from .candidates import Candidate, HashCandidateSet, PartitionedCandidateSet
from .prefixfilter import PrefixFilterSearcher
from .streaming import first_match, stream_search
from .hybrid import Hybrid
from .inra import INRA
from .ita import ITA
from .nra import NRA
from .sf import ShortestFirst
from .sortbyid import SortByIdMerge
from .ta import TA

__all__ = [
    "AlgorithmResult",
    "QueryLists",
    "SearchResult",
    "SelectionAlgorithm",
    "algorithm_names",
    "make_algorithm",
    "register_algorithm",
    "BatchSelector",
    "Candidate",
    "HashCandidateSet",
    "PartitionedCandidateSet",
    "PrefixFilterSearcher",
    "first_match",
    "stream_search",
    "Hybrid",
    "INRA",
    "ITA",
    "NRA",
    "ShortestFirst",
    "SortByIdMerge",
    "TA",
]
