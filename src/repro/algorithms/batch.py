"""Batch selection: many queries, each token list scanned once.

The paper's algorithms are query-at-a-time; a workload of similar queries
(deduplication passes, ingest streams) re-reads the same hot token lists
over and over.  This module executes a *batch* of selections term-at-a-time
instead:

1. group the batch's queries by token, computing each query's Theorem 1
   window;
2. for every distinct token, scan its weight-ordered list **once** over the
   union of the interested queries' windows, feeding each in-window posting
   to every query whose window covers it (an accumulating
   group-by, exactly the relational plan — but shared);
3. filter each query's accumulated scores at its threshold.

The result per query is identical to any single-query algorithm (tested);
the saving is structural: a token shared by ``k`` queries is read once
instead of ``k`` times.  Pruning is weaker than SF's per-query λ machinery,
so batching pays off when queries *overlap* heavily — the benchmark
measures the crossover.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import EmptyQueryError
from ..core.properties import effective_threshold, validate_threshold
from ..core.query import PreparedQuery
from ..storage.invlist import InvertedIndex
from ..storage.pages import IOStats
from .base import AlgorithmResult, SearchResult


def batch_overlap_factor(queries: Sequence[PreparedQuery]) -> float:
    """Mean number of interested queries per distinct batch token.

    The shared scan reads a token's list once however many queries
    subscribe to it, so this factor is exactly the structural saving it
    offers over query-at-a-time execution (before pruning differences).
    ``1.0`` means fully disjoint queries (no saving); the service
    layer's ``"auto"`` batch strategy switches to the shared scan above
    :data:`repro.service.service.SHARED_SCAN_OVERLAP`.
    """
    subscriptions = 0
    distinct: set = set()
    for query in queries:
        subscriptions += len(query.tokens)
        distinct.update(query.tokens)
    if not distinct:
        return 0.0
    return subscriptions / len(distinct)


class BatchSelector:
    """Shared-scan execution of many selections at one threshold."""

    def __init__(self, index: InvertedIndex, use_skip_lists: bool = True):
        self.index = index
        self.use_skip_lists = use_skip_lists

    def search_many(
        self,
        queries: Sequence[PreparedQuery],
        tau: float,
        use_length_bounds: bool = True,
    ) -> Tuple[List[AlgorithmResult], IOStats]:
        """One :class:`AlgorithmResult` per query, plus the shared ledger.

        Each per-query result carries the *shared* I/O ledger (scans are
        not attributable to single queries); ``elements_total`` is per
        query, so pruning power remains meaningful per query.
        """
        validate_threshold(tau)
        cutoff = effective_threshold(tau)
        stats = IOStats()
        started = time.perf_counter()

        # token -> [(query index, list index within query, lo, hi)]
        interested: Dict[str, List[Tuple[int, float, float, float]]] = {}
        windows: List[Tuple[float, float]] = []
        for qi, query in enumerate(queries):
            if use_length_bounds:
                lo, hi = query.bounds(tau)
            else:
                lo, hi = 0.0, float("inf")
            windows.append((lo, hi))
            for token, idf_sq in zip(query.tokens, query.idf_squared):
                interested.setdefault(token, []).append(
                    (qi, idf_sq, lo, hi)
                )

        scores: List[Dict[int, float]] = [dict() for _ in queries]
        elements_total = [0] * len(queries)

        for token, subscribers in interested.items():
            cursor = self.index.cursor(
                token, stats, use_skip_list=self.use_skip_lists
            )
            if cursor is None:
                continue
            for qi, _idf, _lo, _hi in subscribers:
                elements_total[qi] += len(cursor)
            union_lo = min(lo for _qi, _idf, lo, _hi in subscribers)
            union_hi = max(hi for _qi, _idf, _lo, hi in subscribers)
            cursor.seek_length_ge(union_lo)
            while not cursor.exhausted():
                length, set_id = cursor.peek()
                if length > union_hi:
                    break
                cursor.next()
                for qi, idf_sq, lo, hi in subscribers:
                    if lo <= length <= hi:
                        contribution = idf_sq / (
                            length * queries[qi].length
                        )
                        acc = scores[qi]
                        acc[set_id] = acc.get(set_id, 0.0) + contribution

        elapsed = time.perf_counter() - started
        results = []
        for qi, query in enumerate(queries):
            answers = [
                SearchResult(set_id, score)
                for set_id, score in scores[qi].items()
                if score >= cutoff
            ]
            results.append(
                AlgorithmResult(
                    algorithm="batch",
                    results=answers,
                    stats=stats,
                    elements_total=elements_total[qi],
                    wall_seconds=elapsed / max(len(queries), 1),
                    # One ledger serves the whole batch, so per-query
                    # reads legitimately exceed per-query list totals.
                    shared_stats=True,
                )
            )
        return results, stats

    # ------------------------------------------------------------------
    def search_texts(
        self,
        tokenizer,
        stats_source,
        texts: Sequence[str],
        tau: float,
    ) -> Tuple[List[Optional[AlgorithmResult]], IOStats]:
        """Convenience: tokenize, prepare, batch-execute raw strings.

        Texts that tokenize to nothing yield ``None`` in their slot.
        """
        prepared: List[Optional[PreparedQuery]] = []
        for text in texts:
            tokens = tokenizer.tokens(text)
            try:
                prepared.append(
                    PreparedQuery(tokens, stats_source)
                    if tokens
                    else None
                )
            except EmptyQueryError:
                prepared.append(None)
        live = [q for q in prepared if q is not None]
        results, stats = self.search_many(live, tau)
        merged: List[Optional[AlgorithmResult]] = []
        it = iter(results)
        for q in prepared:
            merged.append(next(it) if q is not None else None)
        return merged, stats
