"""Sort-by-id multiway merge — the no-pruning inverted-list baseline.

With lists sorted by increasing set id, a heap-based multiway merge visits
every posting of every query list exactly once.  The id at the top of the
heap has a complete score the moment it is popped (it either already
appeared in every list or will never appear in the remaining ones), so
answers stream out in id order.  Computation cost is constant in the query
threshold — the flat line of Figure 6(a).
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from .base import (
    QueryLists,
    SearchResult,
    SelectionAlgorithm,
    register_algorithm,
)


@register_algorithm
class SortByIdMerge(SelectionAlgorithm):
    """Heap merge over id-ordered lists (Section III-B, first variant)."""

    name = "sort-by-id"
    list_order = "id"

    def _run(self, lists: QueryLists, tau: float) -> Tuple[List[SearchResult], int]:
        results: List[SearchResult] = []
        # Heap of (set_id, list_index); ties group contributions per id.
        heap: List[Tuple[int, int]] = []
        for i, cursor in enumerate(lists.cursors):
            if not cursor.exhausted():
                set_id, _length = cursor.peek()
                heapq.heappush(heap, (set_id, i))
        peak = len(heap)
        while heap:
            top_id = heap[0][0]
            score = 0.0
            while heap and heap[0][0] == top_id:
                _, i = heapq.heappop(heap)
                cursor = lists.cursors[i]
                set_id, length = cursor.next()
                score += lists.contribution(i, length)
                if not cursor.exhausted():
                    heapq.heappush(heap, (cursor.peek()[0], i))
            if score >= tau:
                results.append(SearchResult(top_id, score))
        return results, peak
