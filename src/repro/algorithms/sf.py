"""SF — the Shortest-First algorithm (Section VI, Algorithm 3).

Depth-first over the lists in *decreasing idf* order (rare tokens first:
their lists are short and their contributions large).  For each list ``i``
a cutoff length

    λ_i = Σ_{j ≥ i} idf(q^j)² / (τ · len(q))        (Equation 2)

bounds how long a *new* candidate first discovered in list ``i`` can be:
anything longer cannot reach ``tau`` even if it appears in every remaining
list — and it provably cannot appear in any earlier list, because earlier
lists were read through their (larger) cutoffs.  λ values are non-increasing
(λ_1 = len(q)/τ is exactly Theorem 1's upper length bound), so later, longer
lists are read only shallowly: up to ``max(max_len(C), λ_i)``, where the tail
of the length-sorted candidate list ``C`` keeps shrinking as candidates are
pruned.

Bookkeeping is a single merge pass per list: both the list postings and the
candidates are in increasing ``(len, id)`` order, so updating scores,
detecting absences (order preservation), and pruning is one linear co-walk —
no per-round hash-table scans at all.  This is why SF wins on wall-clock in
the paper even when Hybrid reads slightly fewer elements.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..contracts import check_magnitude_bound, invariants_enabled
from ..obs import trace as obs_trace
from .base import (
    QueryLists,
    SearchResult,
    SelectionAlgorithm,
    register_algorithm,
)
from .candidates import Candidate


@register_algorithm
class ShortestFirst(SelectionAlgorithm):
    """Depth-first list-at-a-time processing with λ cutoffs
    (Section VI, Algorithm 3; cutoffs from Equation 2).

    ``list_order`` strategies (an ablation beyond the paper — the λ
    correctness argument only needs the *suffix* structure, which holds for
    any processing order, so ordering is purely a performance choice):

    * ``"idf"`` (default, the paper's SF): decreasing idf — rare tokens
      first, λ drops as fast as possible;
    * ``"shortest-list"``: increasing postings-list length — fewest
      candidate introductions first;
    * ``"density"``: decreasing ``idf² / list_length`` — weight delivered
      per posting read, a cost-aware compromise.
    """

    name = "sf"
    ORDERS = ("idf", "shortest-list", "density")

    def __init__(self, index, list_order: str = "idf", **kwargs) -> None:
        super().__init__(index, **kwargs)
        if list_order not in self.ORDERS:
            from ..core.errors import ConfigurationError

            raise ConfigurationError(
                f"list_order must be one of {self.ORDERS}, got {list_order!r}"
            )
        self.list_order_strategy = list_order

    def _list_order(self, lists: QueryLists) -> List[int]:
        n = len(lists)
        if self.list_order_strategy == "idf":
            return list(range(n))  # QueryLists is already idf-descending
        if self.list_order_strategy == "shortest-list":
            return sorted(range(n), key=lambda i: len(lists.cursors[i]))
        return sorted(
            range(n),
            key=lambda i: -lists.idf_squared[i]
            / max(len(lists.cursors[i]), 1),
        )

    def _run(self, lists: QueryLists, tau: float) -> Tuple[List[SearchResult], int]:
        n = len(lists)
        if n == 0:
            return [], 0
        lo, hi = self._bounds(lists, tau)
        query_len = lists.query.length

        order = self._list_order(lists)
        # Suffix sums of squared idfs in *processing* order:
        # potential[k] = Σ_{j >= k} idf²(order[j]).
        potential = [0.0] * (n + 1)
        for k in range(n - 1, -1, -1):
            potential[k] = potential[k + 1] + lists.idf_squared[order[k]]
        # λ cutoffs over the open lists (Equation 2).  With length bounding
        # disabled these still apply — they stem from Magnitude Boundedness.
        denom = tau * query_len
        cutoffs = [potential[i] / denom if denom > 0 else 0.0 for i in range(n)]
        if invariants_enabled():
            # Magnitude Boundedness in λ form: suffix potentials only
            # shrink, so the per-list cutoffs must be non-increasing.
            check_magnitude_bound(cutoffs, source="SF λ cutoffs")

        # C: candidates in increasing (len, id) order + id lookup.
        sorted_cands: List[Candidate] = []
        by_id: Dict[int, Candidate] = {}
        peak = 0

        tracer = obs_trace.current()
        for k, i in enumerate(order):
            cursor = lists.cursors[i]
            list_span = (
                tracer.span("sf.scan_list", token=cursor.token)
                if tracer is not None
                else None
            )
            if self.use_length_bounds:
                cursor.seek_length_ge(lo)
            mu = min(cutoffs[k], hi)
            suffix_after = potential[k + 1]
            new_cands: List[Candidate] = []
            ptr = 0  # co-walk pointer into sorted_cands
            scan_start = cursor.position
            ids_before = len(by_id)

            while not cursor.exhausted():
                length, set_id = cursor.peek()
                max_len_c = self._live_tail_length(sorted_cands, by_id)
                if length > mu and length > max_len_c:
                    break  # Algorithm 3 stop: len(s) > max(max_len(C), µ_i)
                cursor.next()
                key = (length, set_id)
                # Candidates strictly before this posting were skipped by
                # list i: rule the list out and re-check viability.
                ptr = self._pass_skipped(
                    lists, tau, sorted_cands, by_id, ptr, key, suffix_after
                )
                cand = by_id.get(set_id)
                if cand is not None:
                    cand.see(i, lists.contribution(i, length))
                elif length <= cutoffs[k]:
                    cand = Candidate(set_id, length)
                    cand.see(i, lists.contribution(i, length))
                    new_cands.append(cand)
                    by_id[set_id] = cand
                # Else: read only to complete existing scores; discard.

            # Everything not reached by the co-walk is also absent from
            # list i (the list stopped past every candidate key).
            self._pass_skipped(
                lists,
                tau,
                sorted_cands,
                by_id,
                ptr,
                (float("inf"), -1),
                suffix_after,
            )
            sorted_cands = self._merge(sorted_cands, new_cands, by_id)
            if len(by_id) > peak:
                peak = len(by_id)
            if list_span is not None:
                pruned = ids_before + len(new_cands) - len(by_id)
                list_span.note(
                    read=cursor.position - scan_start,
                    discovered=len(new_cands),
                    cutoff=mu,
                )
                if pruned > 0:
                    tracer.event("sf.prune", token=cursor.token, count=pruned)
                tracer.event("sf.frontier", candidates=len(by_id))
                list_span.close()

        results = [
            SearchResult(c.set_id, c.lower)
            for c in sorted_cands
            if c.set_id in by_id and c.lower >= tau
        ]
        return results, peak

    # ------------------------------------------------------------------
    @staticmethod
    def _live_tail_length(
        sorted_cands: List[Candidate], by_id: Dict[int, Candidate]
    ) -> float:
        """``max_len(C)``: trim pruned tombstones off the tail, peek it."""
        while sorted_cands and sorted_cands[-1].set_id not in by_id:
            sorted_cands.pop()
        return sorted_cands[-1].length if sorted_cands else 0.0

    def _pass_skipped(
        self,
        lists: QueryLists,
        tau: float,
        sorted_cands: List[Candidate],
        by_id: Dict[int, Candidate],
        ptr: int,
        key: Tuple[float, int],
        suffix_after: float,
    ) -> int:
        """Advance the co-walk pointer to ``key``, finalizing list ``i`` for
        every candidate passed: unseen there means absent (order
        preservation), so the remaining potential drops to the suffix of the
        later lists; prune when even that cannot reach ``tau``."""
        query_len = lists.query.length
        while ptr < len(sorted_cands):
            cand = sorted_cands[ptr]
            if (cand.length, cand.set_id) >= key:
                break
            if cand.set_id in by_id:
                upper = cand.lower + (
                    suffix_after / (cand.length * query_len)
                    if cand.length > 0 and query_len > 0
                    else 0.0
                )
                if query_len > 0.0:
                    upper = max(
                        min(upper, cand.length / query_len), cand.lower
                    )
                if upper < tau:
                    del by_id[cand.set_id]  # tombstone; list trims lazily
            ptr += 1
        return ptr

    @staticmethod
    def _merge(
        sorted_cands: List[Candidate],
        new_cands: List[Candidate],
        by_id: Dict[int, Candidate],
    ) -> List[Candidate]:
        """Merge the (sorted) new discoveries into the candidate list,
        dropping tombstones — the merge-sort step of Algorithm 3."""
        merged: List[Candidate] = []
        a, b = 0, 0
        while a < len(sorted_cands) and b < len(new_cands):
            ca, cb = sorted_cands[a], new_cands[b]
            if (ca.length, ca.set_id) <= (cb.length, cb.set_id):
                if ca.set_id in by_id:
                    merged.append(ca)
                a += 1
            else:
                if cb.set_id in by_id:
                    merged.append(cb)
                b += 1
        for ca in sorted_cands[a:]:
            if ca.set_id in by_id:
                merged.append(ca)
        for cb in new_cands[b:]:
            if cb.set_id in by_id:
                merged.append(cb)
        return merged
