"""iTA — TA improved with the Section IV semantic properties.

The paper states the iTA modifications are "straightforward" analogues of
iNRA's (end of Section V).  Concretely:

* **Length Boundedness** — every list is entered at ``len >= tau*len(q)``
  (skip list seek) and marked complete once its frontier passes
  ``len(q)/tau``;
* **Magnitude Boundedness** — a newly popped id is fully probed only if its
  best-case score over plausible lists reaches ``tau``; hopeless ids are
  remembered but never charged ``n-1`` random I/Os;
* **Order Preservation** — when completing a score, lists whose frontier
  already passed the id's ``(len, id)`` key (or that completed/exhausted)
  are known absences and are not probed, cutting random I/Os further.

As in TA, there is no candidate set: every considered id is resolved on the
spot, and the search stops when the frontier threshold over the still-active
lists drops below ``tau``.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..contracts import invariants_enabled
from .base import (
    QueryLists,
    SearchResult,
    SelectionAlgorithm,
    register_algorithm,
)
from .inra import INRA


@register_algorithm
class ITA(SelectionAlgorithm):
    """Improved TA: length window, magnitude pre-check, probe avoidance
    (the Section V "straightforward" TA analogue of iNRA's Section IV
    property usage)."""

    name = "ita"

    def _run(self, lists: QueryLists, tau: float) -> Tuple[List[SearchResult], int]:
        n = len(lists)
        if n == 0:
            return [], 0
        lo, hi = self._bounds(lists, tau)
        results: List[SearchResult] = []
        seen: Set[int] = set()
        cursors = lists.cursors

        if self.use_length_bounds:
            for cursor in cursors:
                cursor.seek_length_ge(lo)

        complete = [False] * n
        frontier_key: List[Optional[Tuple[float, int]]] = [None] * n
        frontier_contrib = [0.0] * n
        verify = invariants_enabled()
        for i, cursor in enumerate(cursors):
            if cursor.exhausted():
                complete[i] = True

        while True:
            for i, cursor in enumerate(cursors):
                if complete[i]:
                    continue
                if cursor.exhausted():
                    complete[i] = True
                    frontier_contrib[i] = 0.0
                    continue
                if cursor.peek()[0] > hi:
                    # Past the Theorem 1 window: stop without consuming.
                    complete[i] = True
                    frontier_contrib[i] = 0.0
                    continue
                length, set_id = cursor.next()
                if verify and frontier_key[i] is not None:
                    INRA._check_frontier_monotone(
                        lists, i, length, frontier_contrib[i]
                    )
                frontier_key[i] = (length, set_id)
                frontier_contrib[i] = lists.contribution(i, length)
                if cursor.exhausted():
                    complete[i] = True
                    frontier_contrib[i] = 0.0
                if set_id in seen:
                    continue
                seen.add(set_id)
                key = (length, set_id)
                # Lists that could still contain this set: frontier not yet
                # past its key.  Everything else is a known absence.
                plausible = [
                    j
                    for j in range(n)
                    if j != i
                    and not complete[j]
                    and (frontier_key[j] is None or frontier_key[j] < key)
                ]
                best = self._magnitude_bound(lists, i, length, plausible)
                if best < tau:
                    continue  # provably hopeless: skip all probes
                score = lists.contribution(i, length)
                for j in plausible:
                    found = self.index.probe(
                        lists.tokens[j], set_id, lists.stats
                    )
                    if found is not None:
                        score += lists.contribution(j, length)
                if score >= tau:
                    results.append(SearchResult(set_id, score))

            if all(complete):
                break
            f_threshold = sum(
                frontier_contrib[j] for j in range(n) if not complete[j]
            )
            if f_threshold < tau:
                break
        return results, len(seen)

    @staticmethod
    def _magnitude_bound(
        lists: QueryLists, from_list: int, length: float, plausible: List[int]
    ) -> float:
        """Property 2 bound, additionally capped by ``len(s)/len(q)``
        (Theorem 1 case 2: the matched tokens are a subset of ``s``, so
        their squared idfs sum to at most ``len(s)²``)."""
        total_idf_sq = lists.idf_squared[from_list] + sum(
            lists.idf_squared[j] for j in plausible
        )
        total_idf_sq = min(total_idf_sq, length * length)
        denom = length * lists.query.length
        return total_idf_sq / denom if denom > 0.0 else 0.0
