"""Lightweight span tracer: structured per-query traces, JSONL, flames.

A trace is a list of **span records** — named, attributed intervals on
a monotonic clock (``time.perf_counter``; wall-clock ``time.time`` is
banned here by the ``time-source`` static check because traces must
order correctly across NTP slews).  Spans nest per thread: a span
opened while another is live on the same thread records it as parent,
so one service process can trace concurrent queries without the worker
threads' spans interleaving into nonsense.

The tracer is *globally installed* but off by default; instrumented
hot paths fetch :func:`current` once per query and skip all span
bookkeeping when it returns ``None`` — the disabled cost is one
function call per query, never per posting.

Typical use::

    from repro.obs import trace

    with trace.capture() as tracer:
        ...  # run the query
    text = tracer.to_jsonl()             # one JSON object per line
    print(trace.flame_summary(tracer.records))

``repro trace --input spans.jsonl`` renders the same flame summary
from a saved trace (see ``docs/observability.md`` for the record
schema).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "SpanRecord",
    "Tracer",
    "capture",
    "current",
    "event",
    "flame_summary",
    "install",
    "read_jsonl",
    "span",
    "uninstall",
]


class SpanRecord:
    """One completed (or point) span.

    ``start``/``end`` are monotonic seconds from the tracer's clock;
    only differences are meaningful.  Point events have ``end ==
    start``.  ``parent_id`` is 0 for roots.
    """

    __slots__ = ("span_id", "parent_id", "thread", "name", "start", "end",
                 "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        thread: int,
        name: str,
        start: float,
        end: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread = thread
        self.name = name
        self.start = start
        self.end = end
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            span_id=int(data["span_id"]),
            parent_id=int(data.get("parent_id", 0)),
            thread=int(data.get("thread", 0)),
            name=str(data["name"]),
            start=float(data["start"]),
            end=float(data["end"]),
            attrs=dict(data.get("attrs", {})),
        )

    def __repr__(self) -> str:
        return (
            f"SpanRecord({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"id={self.span_id}, parent={self.parent_id})"
        )


class _LiveSpan:
    """Context manager for one open span; finalizes into a record."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def note(self, **attrs: Any) -> None:
        """Attach attributes to the open span (e.g. counts known only
        at the end of a scan)."""
        self._record.attrs.update(attrs)

    def close(self) -> None:
        """Finish the span explicitly (for callers that cannot use a
        ``with`` block around the timed region)."""
        self._tracer._finish(self._record)

    def __enter__(self) -> "_LiveSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def note(self, **attrs: Any) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects span records; nesting is tracked per thread."""

    def __init__(self) -> None:
        self._clock = time.perf_counter
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._stacks = threading.local()
        self.records: List[SpanRecord] = []

    # ------------------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        """Open a span; use as a context manager."""
        stack = self._stack()
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=stack[-1] if stack else 0,
            thread=threading.get_ident(),
            name=name,
            start=self._clock(),
            end=0.0,
            attrs=dict(attrs),
        )
        stack.append(record.span_id)
        return _LiveSpan(self, record)

    def _finish(self, record: SpanRecord) -> None:
        record.end = self._clock()
        stack = self._stack()
        if stack and stack[-1] == record.span_id:
            stack.pop()
        with self._lock:
            self.records.append(record)

    def event(self, name: str, **attrs: Any) -> None:
        """A point event (zero-duration span) under the current span."""
        stack = self._stack()
        now = self._clock()
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=stack[-1] if stack else 0,
            thread=threading.get_ident(),
            name=name,
            start=now,
            end=now,
            attrs=dict(attrs),
        )
        with self._lock:
            self.records.append(record)

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per record, in completion order."""
        with self._lock:
            records = list(self.records)
        return "".join(
            json.dumps(r.to_dict(), sort_keys=True) + "\n" for r in records
        )

    def write_jsonl(self, path: str) -> int:
        """Write the trace to a JSONL file; returns the record count."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return text.count("\n")

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"Tracer(records={len(self.records)})"


def read_jsonl(text: str) -> List[SpanRecord]:
    """Parse a JSONL trace back into records (round-trips to_jsonl)."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(SpanRecord.from_dict(json.loads(line)))
    return records


# ----------------------------------------------------------------------
# global installation
# ----------------------------------------------------------------------
class _TracerState:
    __slots__ = ("tracer",)

    def __init__(self) -> None:
        self.tracer: Optional[Tracer] = None


_STATE = _TracerState()


def current() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is off (the common
    case — callers on hot paths check this once per query)."""
    return _STATE.tracer


def install(tracer: Tracer) -> Optional[Tracer]:
    """Install a tracer globally; returns the previous one."""
    previous, _STATE.tracer = _STATE.tracer, tracer
    return previous


def uninstall() -> Optional[Tracer]:
    """Remove the installed tracer; returns it."""
    previous, _STATE.tracer = _STATE.tracer, None
    return previous


class _Capture:
    def __init__(self) -> None:
        self.tracer = Tracer()
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = install(self.tracer)
        return self.tracer

    def __exit__(self, *exc_info) -> None:
        install(self._previous) if self._previous else uninstall()


def capture() -> _Capture:
    """Install a fresh tracer for a ``with`` block and hand it back."""
    return _Capture()


def span(name: str, **attrs: Any):
    """Module-level convenience: a span on the installed tracer, or a
    shared no-op when tracing is off."""
    tracer = _STATE.tracer
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    tracer = _STATE.tracer
    if tracer is not None:
        tracer.event(name, **attrs)


# ----------------------------------------------------------------------
# text flame summary
# ----------------------------------------------------------------------
def _paths(records: Sequence[SpanRecord]) -> Iterator[tuple]:
    by_id = {r.span_id: r for r in records}
    for record in records:
        parts = [record.name]
        seen = {record.span_id}
        parent = by_id.get(record.parent_id)
        while parent is not None and parent.span_id not in seen:
            parts.append(parent.name)
            seen.add(parent.span_id)
            parent = by_id.get(parent.parent_id)
        yield ";".join(reversed(parts)), record


def flame_summary(records: Sequence[SpanRecord]) -> str:
    """Aggregate a trace into a text flame table.

    Rows are root-to-leaf span *paths* (``query;sf.scan_list``),
    indented by depth, with call counts, total milliseconds, and self
    time (total minus the time of direct children).  Zero-duration
    events report counts only.
    """
    if not records:
        return "(empty trace)"
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    order: List[str] = []
    for path, record in _paths(records):
        if path not in totals:
            totals[path] = 0.0
            counts[path] = 0
            order.append(path)
        totals[path] += record.duration
        counts[path] += 1
    # Self time: subtract each path's total from its parent path's.
    selfs = dict(totals)
    for path in order:
        parent = path.rsplit(";", 1)[0] if ";" in path else None
        if parent in selfs:
            selfs[parent] -= totals[path]
    order.sort()
    name_width = max(len(p.split(";")[-1]) + 2 * p.count(";") for p in order)
    name_width = max(name_width, len("span"))
    header = (
        f"{'span'.ljust(name_width)}  {'count':>7}  "
        f"{'total_ms':>10}  {'self_ms':>10}"
    )
    lines = [header, "-" * len(header)]
    for path in order:
        depth = path.count(";")
        name = "  " * depth + path.split(";")[-1]
        total_ms = totals[path] * 1e3
        self_ms = max(selfs[path], 0.0) * 1e3
        lines.append(
            f"{name.ljust(name_width)}  {counts[path]:>7}  "
            f"{total_ms:>10.3f}  {self_ms:>10.3f}"
        )
    return "\n".join(lines)
