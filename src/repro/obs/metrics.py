"""Process-global registry runtime and Prometheus text exposition.

The instrumented layers (storage flushes, algorithm hot paths, the
service, the HTTP server) all publish through one process-global
registry slot.  The default occupant is a shared :class:`NullRegistry`
— telemetry is *opt-in*, and a process that never opts in pays only the
``registry.enabled`` test at each per-query call site (measured under
2% on the SF hot path by ``benchmarks/bench_obs_overhead.py``).

Enable telemetry with the environment variable ``REPRO_METRICS=1``
(read once at import), by calling :func:`enable`, or scoped with
:func:`use_registry`::

    from repro.obs import metrics

    with metrics.use_registry(metrics.MetricsRegistry()) as registry:
        ...  # run queries
        print(metrics.render_prometheus(registry))

The exposition format is Prometheus text format 0.0.4 — ``# HELP`` /
``# TYPE`` headers, one sample per line, histograms expanded into
cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count`` —
directly scrapeable from the ``GET /metrics`` endpoint of
``repro serve``.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, List, Union

from .registry import (
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
)

__all__ = [
    "ENV_VAR",
    "MetricsRegistry",
    "NullRegistry",
    "enable",
    "disable",
    "get_registry",
    "set_registry",
    "use_registry",
    "render_prometheus",
    "summary_line",
]

ENV_VAR = "REPRO_METRICS"

_TRUTHY = {"1", "true", "yes", "on"}

NULL_REGISTRY = NullRegistry()

AnyRegistry = Union[MetricsRegistry, NullRegistry]


class _RegistryState:
    """The global slot.  A class (not a bare module global) so modules
    that captured a reference still observe swaps."""

    __slots__ = ("registry", "lock")

    def __init__(self, registry: AnyRegistry) -> None:
        self.registry = registry
        self.lock = threading.Lock()


_STATE = _RegistryState(
    MetricsRegistry()
    if os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY
    else NULL_REGISTRY
)


def get_registry() -> AnyRegistry:
    """The process-global registry (a NullRegistry when disabled)."""
    return _STATE.registry


def set_registry(registry: AnyRegistry) -> AnyRegistry:
    """Install a registry globally; returns the previous occupant."""
    with _STATE.lock:
        previous, _STATE.registry = _STATE.registry, registry
    return previous


def enable() -> AnyRegistry:
    """Ensure the global registry is a real one (idempotent).

    Returns the active registry: the existing one if telemetry was
    already enabled, otherwise a freshly installed
    :class:`MetricsRegistry`.
    """
    with _STATE.lock:
        if not _STATE.registry.enabled:
            _STATE.registry = MetricsRegistry()
        return _STATE.registry


def disable() -> AnyRegistry:
    """Swap the shared NullRegistry back in; returns the previous one."""
    return set_registry(NULL_REGISTRY)


@contextmanager
def use_registry(registry: AnyRegistry) -> Iterator[AnyRegistry]:
    """Scope a registry installation (tests, benchmarks)::

        with use_registry(MetricsRegistry()) as registry:
            ...
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# ----------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ----------------------------------------------------------------------
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_block(names, values, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _render_family(family: MetricFamily) -> List[str]:
    lines = [
        f"# HELP {family.name} {_escape_help(family.help)}",
        f"# TYPE {family.name} {family.kind}",
    ]
    for values, child in family.children():
        if isinstance(child, Histogram):
            for le, cumulative in child.cumulative_buckets():
                block = _label_block(
                    family.labelnames, values,
                    extra=f'le="{_format_value(le)}"',
                )
                lines.append(f"{family.name}_bucket{block} {cumulative}")
            block = _label_block(family.labelnames, values)
            lines.append(
                f"{family.name}_sum{block} {_format_value(child.sum)}"
            )
            lines.append(f"{family.name}_count{block} {child.count}")
        else:
            block = _label_block(family.labelnames, values)
            value = child.value  # type: ignore[union-attr]
            lines.append(f"{family.name}{block} {_format_value(value)}")
    return lines


def render_prometheus(registry: AnyRegistry) -> str:
    """The registry as Prometheus text exposition (trailing newline
    included; empty string for a NullRegistry)."""
    lines: List[str] = []
    for family in sorted(registry.families(), key=lambda f: f.name):
        lines.extend(_render_family(family))
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# one-line summaries (CLI --metrics, eval harness)
# ----------------------------------------------------------------------
SUMMARY_FAMILIES = (
    ("queries", "queries_total"),
    ("elements_read", "elements_read_total"),
    ("lists_pruned", "lists_pruned_total"),
    ("cache_hits", "cache_hits_total"),
    ("coalesced", "coalesced_queries_total"),
    ("degraded", "deadline_degradations_total"),
)


def summary_line(registry: AnyRegistry) -> str:
    """A one-line digest of the headline counters, for CLI output.

    Families that were never registered are omitted; a disabled
    registry summarizes to ``metrics: disabled``.
    """
    if not registry.enabled:
        return "metrics: disabled"
    parts = []
    for label, name in SUMMARY_FAMILIES:
        family = registry.get(name)
        if family is not None:
            parts.append(f"{label}={int(family.total())}")
    return "metrics: " + (" ".join(parts) if parts else "(no samples)")
