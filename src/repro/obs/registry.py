"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

This module is the foundation of the ``obs`` layer and therefore imports
*nothing* from the rest of the package (the layering DAG places ``obs``
below even ``core``): every other layer may publish into a registry, so
the registry may depend on none of them.

The model follows the Prometheus client conventions, reduced to what a
single-process reproduction needs:

* a **metric family** is created (idempotently) on a registry with a
  name, a help string, and an optional tuple of label names;
* a family with labels hands out **children** via ``labels(...)``; a
  family without labels is its own only child;
* counters only go up, gauges go anywhere, histograms count
  observations into fixed, cumulative ``le`` buckets (Prometheus
  semantics: an observation lands in every bucket whose upper bound is
  ``>= value``, rendering adds the ``+Inf`` bucket, ``_sum`` and
  ``_count``).

All mutation is lock-protected — counts must be exact under the service
layer's thread pool, and a lost increment is exactly the kind of silent
skew this subsystem exists to rule out.  The locks sit on per-family
hot paths that run a handful of times per *query* (never per posting),
so contention is negligible; the truly hot per-element accounting stays
in :class:`repro.storage.pages.IOStats` and is flushed into the
registry once per query.

:class:`NullRegistry` is the disabled counterpart: same surface, no
state, no locks.  Instrumented code holds the pattern::

    registry = metrics.get_registry()
    if registry.enabled:
        registry.counter("queries_total", "Queries.", ("algo",)) \\
            .labels(algo=name).inc()

so a disabled process pays one attribute read per call site.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
]

DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)
"""Seconds.  Spans the sub-millisecond cache hit to the multi-second
degraded query; the ``+Inf`` bucket is implicit (added at render time)."""


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ValueError(
            f"metric name must be [a-zA-Z0-9_]+, got {name!r}"
        )
    if name[0].isdigit():
        raise ValueError(f"metric name must not start with a digit: {name!r}")
    return name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus ``le`` semantics).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the
    implicit ``+Inf`` bucket is ``count``.  Bucket boundaries are
    inclusive: ``observe(0.01)`` lands in the ``le="0.01"`` bucket.
    """

    __slots__ = ("_lock", "bounds", "_bucket_counts", "_sum", "_count")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = list(bounds)
        if ordered != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise ValueError("bucket bounds must be strictly increasing")
        self._lock = threading.Lock()
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in ordered)
        self._bucket_counts = [0] * len(self.bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            # Raw per-bucket storage: exactly one increment per observe;
            # cumulative_buckets() does the running sum at read time.
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    break

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ``+Inf`` last."""
        with self._lock:
            running = 0
            out: List[Tuple[float, int]] = []
            for bound, n in zip(self.bounds, self._bucket_counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), self._count))
            return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric plus its labeled children.

    A family with an empty ``labelnames`` tuple is its own single child
    (``labels()`` with no arguments returns it); otherwise children are
    materialized on first use of each label-value combination.
    """

    __slots__ = (
        "name", "help", "kind", "labelnames", "_buckets", "_lock",
        "_children",
    )

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.kind = kind
        self.labelnames = labelnames
        for label in labelnames:
            _validate_name(label)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets or DEFAULT_LATENCY_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, **labelvalues: str):
        """The child for one label-value combination (created on first
        use).  Every declared label must be supplied, no extras."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # Label-less families proxy the child interface directly, so call
    # sites read the same with and without labels.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """``(label values, child)`` pairs in insertion order."""
        with self._lock:
            return list(self._children.items())

    def total(self) -> float:
        """Sum over children: counter/gauge values, histogram counts."""
        out = 0.0
        for _values, child in self.children():
            if isinstance(child, Histogram):
                out += child.count
            else:
                out += child.value  # type: ignore[union-attr]
        return out


class MetricsRegistry:
    """A named collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent: asking for
    an existing name returns the existing family, provided kind, labels
    and (for histograms) buckets agree — a mismatch is a programming
    error and raises immediately rather than silently forking state.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, MetricFamily]" = {}

    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            family = MetricFamily(name, help, kind, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, help, "counter", labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, help, "histogram", labelnames, buckets)

    # ------------------------------------------------------------------
    def families(self) -> List[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def total(self, name: str) -> float:
        """Sum of one family across its children; 0.0 if unregistered."""
        family = self.get(name)
        return family.total() if family is not None else 0.0

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-ready dump of every family.

        Counters and gauges map label tuples (rendered as
        ``name="value"`` joins, or ``""`` for label-less metrics) to
        values; histograms dump sum/count/buckets per child.
        """
        out: Dict[str, Dict[str, object]] = {}
        for family in self.families():
            rendered: Dict[str, object] = {}
            for values, child in family.children():
                key = ",".join(
                    f'{n}="{v}"'
                    for n, v in zip(family.labelnames, values)
                )
                if isinstance(child, Histogram):
                    rendered[key] = {
                        "sum": child.sum,
                        "count": child.count,
                        "buckets": [
                            [le, n] for le, n in child.cumulative_buckets()
                        ],
                    }
                else:
                    rendered[key] = child.value  # type: ignore[union-attr]
            out[family.name] = rendered
        return out

    def __repr__(self) -> str:
        return f"MetricsRegistry(families={len(self._families)})"


class _NullChild:
    """Accepts every metric operation and does nothing.

    One shared instance serves every family and child of a
    :class:`NullRegistry`; it proxies itself from ``labels`` so chained
    call sites (``registry.counter(...).labels(...).inc()``) stay valid
    when telemetry is off.
    """

    __slots__ = ()

    def labels(self, **_labelvalues) -> "_NullChild":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def children(self) -> Iterable:
        return ()


_NULL_CHILD = _NullChild()


class NullRegistry:
    """The disabled registry: same surface as :class:`MetricsRegistry`,
    zero state.  ``enabled`` is False so instrumented call sites can
    skip even the no-op calls; anything that calls through anyway is
    still safe."""

    enabled = False

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> _NullChild:
        return _NULL_CHILD

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> _NullChild:
        return _NULL_CHILD

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> _NullChild:
        return _NULL_CHILD

    def families(self) -> List[MetricFamily]:
        return []

    def get(self, name: str) -> None:
        return None

    def total(self, name: str) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {}

    def __repr__(self) -> str:
        return "NullRegistry()"
