"""Observability layer: metrics registry, global runtime, span tracer.

This package sits at the *bottom* of the layering DAG — it imports
nothing from the rest of ``repro``, and every other layer may import it
(enforced by ``tools.check`` layering pass).  See
``docs/observability.md`` for the metric catalogue and trace format.
"""

from . import metrics, trace
from .metrics import (
    PROMETHEUS_CONTENT_TYPE,
    disable,
    enable,
    get_registry,
    render_prometheus,
    set_registry,
    summary_line,
    use_registry,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
)
from .trace import SpanRecord, Tracer, capture, flame_summary, read_jsonl

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "SpanRecord",
    "Tracer",
    "capture",
    "disable",
    "enable",
    "flame_summary",
    "get_registry",
    "metrics",
    "read_jsonl",
    "render_prometheus",
    "set_registry",
    "summary_line",
    "trace",
    "use_registry",
]
