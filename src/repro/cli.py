"""Command-line interface: build, persist, query and benchmark indexes.

Usage (also via ``python -m repro``):

    repro index  --input strings.txt --output ./idx --q 3
    repro query  --index ./idx --text "Main Stret" --threshold 0.7
    repro topk   --index ./idx --text "Main Stret" -k 5
    repro info   --index ./idx
    repro bench  --records 2000 --queries 15 --tau 0.8
    repro batch  --index ./idx --input queries.txt --threshold 0.7
    repro serve  --index ./idx --port 8080
    repro trace  --input spans.jsonl

``index`` reads one string per line and builds a q-gram searcher; ``query``
and ``topk`` print tab-separated ``score<TAB>string`` rows, best first.
``batch`` answers a whole query file through the service layer (caching,
thread-pool execution, optional deadlines); ``serve`` exposes the same
service over JSON/HTTP.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Optional

from . import __version__
from .algorithms.base import algorithm_names
from .core.errors import ReproError
from .core.search import SetSimilaritySearcher, StringMatcher
from .core.tokenize import QGramTokenizer
from .storage.persist import load_searcher, save_searcher


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Set similarity selection queries (ICDE 2008 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_index = sub.add_parser("index", help="build and persist an index")
    p_index.add_argument("--input", required=True, help="one string per line")
    p_index.add_argument("--output", required=True, help="index directory")
    p_index.add_argument("--q", type=int, default=3, help="q-gram size")
    p_index.add_argument(
        "--lean",
        action="store_true",
        help="skip the id-lists and hash index (SF/iNRA/Hybrid only)",
    )

    p_query = sub.add_parser("query", help="threshold selection")
    p_query.add_argument("--index", required=True)
    p_query.add_argument("--text", required=True)
    p_query.add_argument("--threshold", type=float, default=0.7)
    p_query.add_argument(
        "--algorithm", default="sf", choices=algorithm_names()
    )
    p_query.add_argument(
        "--stats", action="store_true", help="print I/O telemetry to stderr"
    )
    p_query.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace of the query as JSONL "
        "(render with `repro trace --input PATH`)",
    )

    p_topk = sub.add_parser("topk", help="top-k most similar strings")
    p_topk.add_argument("--index", required=True)
    p_topk.add_argument("--text", required=True)
    p_topk.add_argument("-k", type=int, default=5)

    p_info = sub.add_parser("info", help="describe a persisted index")
    p_info.add_argument("--index", required=True)

    p_bench = sub.add_parser(
        "bench", help="mini benchmark on a synthetic corpus"
    )
    p_bench.add_argument("--records", type=int, default=2000)
    p_bench.add_argument("--queries", type=int, default=15)
    p_bench.add_argument("--tau", type=float, default=0.8)
    p_bench.add_argument(
        "--metrics", action="store_true",
        help="collect registry metrics and print a one-line summary "
        "to stderr",
    )

    p_dedupe = sub.add_parser(
        "dedupe", help="group near-duplicate lines of a file"
    )
    p_dedupe.add_argument("--input", required=True, help="one string per line")
    p_dedupe.add_argument("--threshold", type=float, default=0.7)
    p_dedupe.add_argument("--q", type=int, default=3)
    p_dedupe.add_argument(
        "--min-size", type=int, default=2,
        help="smallest duplicate group to report",
    )

    p_check = sub.add_parser(
        "check",
        help="run the static-analysis suite (tools.check) over the source",
    )
    p_check.add_argument(
        "check_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to `python -m tools.check`",
    )

    p_batch = sub.add_parser(
        "batch",
        help="answer a file of queries as one batch (service layer)",
    )
    p_batch.add_argument("--index", required=True)
    p_batch.add_argument(
        "--input", required=True, help="one query string per line"
    )
    p_batch.add_argument("--threshold", type=float, default=0.7)
    p_batch.add_argument(
        "--algorithm", default="sf",
        choices=[*algorithm_names(), "auto"],
    )
    p_batch.add_argument(
        "--strategy", default="threads",
        choices=["threads", "shared", "auto"],
        help="per-query thread pool, shared term-at-a-time scan, or "
        "overlap-driven choice",
    )
    p_batch.add_argument(
        "--workers", type=int, default=None, help="thread-pool width"
    )
    p_batch.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-query deadline; timeouts degrade to tightened SF",
    )
    p_batch.add_argument(
        "--json", action="store_true",
        help="one JSON object per query instead of tab-separated rows",
    )
    p_batch.add_argument(
        "--stats", action="store_true",
        help="print service cache/degradation counters to stderr",
    )
    p_batch.add_argument(
        "--metrics", action="store_true",
        help="collect registry metrics and print a one-line summary "
        "to stderr",
    )

    p_trace = sub.add_parser(
        "trace", help="render a recorded span trace as a flame summary"
    )
    p_trace.add_argument(
        "--input", required=True,
        help="JSONL trace written by `repro query --trace`",
    )

    p_serve = sub.add_parser(
        "serve", help="serve an index over JSON/HTTP (stdlib only)"
    )
    p_serve.add_argument("--index", required=True)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument(
        "--algorithm", default="sf",
        choices=[*algorithm_names(), "auto"],
    )
    p_serve.add_argument(
        "--workers", type=int, default=None, help="thread-pool width"
    )
    p_serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-query deadline; timeouts degrade to tightened SF",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=1024,
        help="result-cache entries (0 disables)",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="log every request"
    )

    return parser


def _write_cli_meta(index_dir: str, q: int) -> None:
    import json
    from pathlib import Path

    (Path(index_dir) / "cli.json").write_text(json.dumps({"q": q}))


def _tokenizer_for(index_dir: str):
    """The tokenizer the index was built with (from the CLI meta file)."""
    import json
    from pathlib import Path

    meta = Path(index_dir) / "cli.json"
    q = 3
    if meta.exists():
        q = int(json.loads(meta.read_text()).get("q", 3))
    return QGramTokenizer(q=q)


def cmd_index(args, out: IO[str]) -> int:
    with open(args.input, encoding="utf-8") as fh:
        strings = [line.rstrip("\n") for line in fh if line.strip()]
    if not strings:
        print("error: input file holds no strings", file=sys.stderr)
        return 2
    matcher = StringMatcher(
        strings,
        tokenizer=QGramTokenizer(q=args.q),
        with_id_lists=not args.lean,
        with_hash_index=not args.lean,
    )
    manifest = save_searcher(matcher.searcher, args.output)
    _write_cli_meta(args.output, args.q)
    print(
        f"indexed {manifest['num_sets']} strings "
        f"({manifest['num_tokens']} tokens, "
        f"{manifest['num_postings']} postings) -> {args.output}",
        file=out,
    )
    return 0


def cmd_query(args, out: IO[str]) -> int:
    searcher = load_searcher(args.index)
    tokenizer = _tokenizer_for(args.index)
    tokens = tokenizer.tokens(args.text)
    if not tokens:
        print("error: query tokenizes to nothing", file=sys.stderr)
        return 2
    if args.trace:
        from .obs import trace as obs_trace

        with obs_trace.capture() as tracer:
            result = searcher.search(
                tokens, args.threshold, algorithm=args.algorithm
            )
        spans = tracer.write_jsonl(args.trace)
        print(f"wrote {spans} spans to {args.trace}", file=sys.stderr)
    else:
        result = searcher.search(
            tokens, args.threshold, algorithm=args.algorithm
        )
    for r in result.results:
        print(f"{r.score:.4f}\t{searcher.collection.payload(r.set_id)}", file=out)
    if args.stats:
        print(
            f"elements_read={result.stats.elements_read} "
            f"of {result.elements_total} "
            f"(pruning {result.pruning_power:.1%}), "
            f"random_pages={result.stats.random_pages}",
            file=sys.stderr,
        )
    return 0


def cmd_topk(args, out: IO[str]) -> int:
    searcher = load_searcher(args.index)
    tokens = _tokenizer_for(args.index).tokens(args.text)
    if not tokens:
        print("error: query tokenizes to nothing", file=sys.stderr)
        return 2
    result = searcher.top_k(tokens, args.k)
    for r in result.results:
        print(f"{r.score:.4f}\t{searcher.collection.payload(r.set_id)}", file=out)
    return 0


def cmd_info(args, out: IO[str]) -> int:
    searcher = load_searcher(args.index)
    from .core.collection import collection_summary

    summary = collection_summary(searcher.collection)
    sizes = searcher.index.size_report()
    print(f"sets:        {int(summary['num_sets'])}", file=out)
    print(f"vocabulary:  {int(summary['vocabulary'])} tokens", file=out)
    print(f"mean size:   {summary['mean_set_size']:.1f} tokens/set", file=out)
    for name, size in sizes.items():
        print(f"{name:>28}: {size} bytes", file=out)
    return 0


def cmd_bench(args, out: IO[str]) -> int:
    from contextlib import nullcontext

    from .data.synthetic import generate_word_database
    from .data.workloads import make_workload
    from .eval.harness import ExperimentContext, format_table
    from .obs import metrics as obs_metrics

    collection, _words = generate_word_database(
        num_records=args.records,
        vocabulary_size=max(args.records // 2, 200),
        seed=2008,
    )
    context = ExperimentContext(collection)
    workload = make_workload(
        collection, (11, 15), args.queries, modifications=0, seed=77
    )
    scope = (
        obs_metrics.use_registry(obs_metrics.MetricsRegistry())
        if args.metrics
        else nullcontext(obs_metrics.get_registry())
    )
    with scope as registry:
        rows = [
            context.run_workload(engine, workload, args.tau).row()
            for engine in (
                "sort-by-id", "sql", "ta", "nra", "inra", "ita", "sf",
                "hybrid",
            )
        ]
        if args.metrics:
            print(obs_metrics.summary_line(registry), file=sys.stderr)
    print(
        format_table(
            rows,
            ["engine", "avg_results", "avg_wall_ms", "pruning_pct",
             "avg_elems_read", "avg_io_cost"],
        ),
        file=out,
    )
    return 0


def cmd_dedupe(args, out: IO[str]) -> int:
    from .core.join import similarity_clusters
    from .data.loaders import load_lines

    collection = load_lines(args.input, QGramTokenizer(q=args.q))
    if len(collection) == 0:
        print("error: input file holds no strings", file=sys.stderr)
        return 2
    searcher = SetSimilaritySearcher(
        collection, with_id_lists=False, with_hash_index=False
    )
    clusters = similarity_clusters(
        searcher, args.threshold, min_size=args.min_size
    )
    for number, cluster in enumerate(clusters, start=1):
        print(f"group {number} ({len(cluster)} records):", file=out)
        for set_id in cluster:
            print(f"  {collection.payload(set_id)}", file=out)
    print(
        f"{len(clusters)} duplicate groups among {len(collection)} records",
        file=out,
    )
    return 0


def _build_service(args, searcher, tokenizer):
    from .service import ServiceConfig, SimilarityService

    config = ServiceConfig(
        algorithm=args.algorithm,
        max_workers=args.workers,
        deadline_seconds=(
            args.deadline_ms / 1000.0
            if args.deadline_ms is not None
            else None
        ),
        result_cache_size=getattr(args, "cache_size", 1024),
    )
    return SimilarityService(searcher, config, tokenizer=tokenizer)


def cmd_batch(args, out: IO[str]) -> int:
    import json

    searcher = load_searcher(args.index)
    tokenizer = _tokenizer_for(args.index)
    with open(args.input, encoding="utf-8") as fh:
        texts = [line.rstrip("\n") for line in fh if line.strip()]
    if not texts:
        print("error: input file holds no queries", file=sys.stderr)
        return 2
    from contextlib import nullcontext

    from .obs import metrics as obs_metrics

    scope = (
        obs_metrics.use_registry(obs_metrics.MetricsRegistry())
        if args.metrics
        else nullcontext(obs_metrics.get_registry())
    )
    with scope as registry, _build_service(
        args, searcher, tokenizer
    ) as service:
        results = service.search_batch(
            [tokenizer.tokens(text) for text in texts],
            args.threshold,
            strategy=args.strategy,
        )
        for i, (text, res) in enumerate(zip(texts, results)):
            if args.json:
                row = {"query": text}
                row.update(res.to_dict(payload_fn=service.payload))
                print(json.dumps(row), file=out)
                continue
            if not res.ok:
                print(f"{i}\tERROR\t{res.error}", file=out)
                continue
            marker = " [degraded]" if res.degraded else ""
            for r in res.results:
                payload = service.payload(r.set_id)
                print(f"{i}\t{r.score:.4f}\t{payload}{marker}", file=out)
        if args.stats:
            print(json.dumps(service.stats()), file=sys.stderr)
        if args.metrics:
            print(obs_metrics.summary_line(registry), file=sys.stderr)
    return 0


def cmd_serve(args, out: IO[str]) -> int:
    import signal

    from .obs import metrics as obs_metrics
    from .service import ServiceHTTPServer

    # A serving process always collects metrics — that is what the
    # /metrics endpoint scrapes.
    obs_metrics.enable()
    searcher = load_searcher(args.index)
    tokenizer = _tokenizer_for(args.index)
    service = _build_service(args, searcher, tokenizer)
    server = ServiceHTTPServer(
        service, host=args.host, port=args.port, verbose=args.verbose
    )

    def _request_shutdown(signum, frame):
        # Funnel SIGTERM into the same KeyboardInterrupt path SIGINT
        # takes, so both exit through the graceful drain below.
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _request_shutdown)
    except ValueError:
        pass  # not the main thread (e.g. under a test harness)

    print(
        f"serving {args.index} on {server.url} "
        "(POST /search, POST /batch, GET /stats, GET /metrics, "
        "GET /healthz; SIGINT/SIGTERM drains and stops)",
        file=out,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down: draining in-flight queries...", file=out)
    finally:
        # Stop admitting first (new queries get 503 + Retry-After while
        # the listener winds down), let in-flight queries finish, then
        # release the sockets and the worker pool.
        service.drain(timeout=10.0)
        server.shutdown()
        service.close()
    print("bye", file=out)
    return 0


def cmd_check(args, out: IO[str]) -> int:
    try:
        from tools.check import main as check_main
    except ImportError:
        # Installed without the repo checkout: try the source tree the
        # package was imported from (src/repro -> repo root).
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent.parent
        if (repo_root / "tools" / "check" / "cli.py").exists():
            sys.path.insert(0, str(repo_root))
            from tools.check import main as check_main
        else:
            print(
                "error: the static-analysis suite (tools/check) ships with "
                "the repository, not the installed package; run `python -m "
                "tools.check` from a repo checkout",
                file=sys.stderr,
            )
            return 2
    return check_main(args.check_args, out=out)


def cmd_trace(args, out: IO[str]) -> int:
    from pathlib import Path

    from .obs import trace as obs_trace

    path = Path(args.input)
    if not path.exists():
        print(f"error: no trace file at {args.input}", file=sys.stderr)
        return 2
    records = obs_trace.read_jsonl(path.read_text(encoding="utf-8"))
    print(obs_trace.flame_summary(records), file=out)
    return 0


_COMMANDS = {
    "index": cmd_index,
    "query": cmd_query,
    "topk": cmd_topk,
    "info": cmd_info,
    "bench": cmd_bench,
    "dedupe": cmd_dedupe,
    "check": cmd_check,
    "batch": cmd_batch,
    "serve": cmd_serve,
    "trace": cmd_trace,
}


def main(argv: Optional[List[str]] = None, out: IO[str] = sys.stdout) -> int:
    """Entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        # Forward everything verbatim (argparse's REMAINDER drops leading
        # options, so `repro check --select layering` needs this bypass).
        args = argparse.Namespace(check_args=list(argv[1:]))
        return cmd_check(args, out)
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
