"""Evaluation metrics: ranking quality (Table I) and execution summaries.

``average_precision`` implements the standard IR definition used by the
SIGMOD'07 benchmark the paper borrows its Table I protocol from: rank the
database by score, average the precision at the rank of each relevant item
(relevant items never retrieved contribute 0 through the division by the
total number of relevant items).

:class:`MeasureRanker` ranks a collection under any
:class:`~repro.core.similarity.SimilarityMeasure` without scoring the whole
database per query: an inverted token map finds the sets with non-zero
overlap (sets sharing no token score 0 under every measure here and are
ranked last / ignored).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.collection import SetCollection
from ..core.similarity import SimilarityMeasure
from ..core.weights import tf_counts


def average_precision(
    ranked_ids: Sequence[int], relevant: Set[int]
) -> float:
    """Mean of precision@rank over the relevant items' ranks.

    ``ranked_ids`` is best-first; items absent from it count as never
    retrieved.  Returns 1.0 by convention when there are no relevant items.
    """
    if not relevant:
        return 1.0
    hits = 0
    precision_sum = 0.0
    for rank, set_id in enumerate(ranked_ids, start=1):
        if set_id in relevant:
            hits += 1
            precision_sum += hits / rank
    return precision_sum / len(relevant)


def precision_at_k(
    ranked_ids: Sequence[int], relevant: Set[int], k: int
) -> float:
    """Fraction of the first k results that are relevant."""
    if k < 1:
        return 0.0
    top = ranked_ids[:k]
    if not top:
        return 0.0
    return sum(1 for i in top if i in relevant) / k


def recall_at_k(
    ranked_ids: Sequence[int], relevant: Set[int], k: int
) -> float:
    """Fraction of relevant items among the first k results."""
    if not relevant:
        return 1.0
    return sum(1 for i in ranked_ids[:k] if i in relevant) / len(relevant)


def reciprocal_rank(ranked_ids: Sequence[int], relevant: Set[int]) -> float:
    """1/rank of the first relevant item (0 when never retrieved)."""
    for rank, set_id in enumerate(ranked_ids, start=1):
        if set_id in relevant:
            return 1.0 / rank
    return 0.0


class MeasureRanker:
    """Rank a collection's sets under a similarity measure, overlap-pruned."""

    def __init__(self, collection: SetCollection) -> None:
        self.collection = collection
        self._token_to_ids: Dict[str, List[int]] = {}
        for rec in collection:
            for token in rec.tokens:
                self._token_to_ids.setdefault(token, []).append(rec.set_id)

    def candidates(self, query_tokens: Iterable[str]) -> Set[int]:
        """Ids of sets sharing at least one token with the query."""
        out: Set[int] = set()
        for token in frozenset(query_tokens):
            out.update(self._token_to_ids.get(token, ()))
        return out

    def rank(
        self,
        query_tokens: Sequence[str],
        measure: SimilarityMeasure,
        exclude: Optional[Set[int]] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[int, float]]:
        """``(set_id, score)`` pairs best-first; zero-overlap sets omitted."""
        q_counts = tf_counts(list(query_tokens))
        scored: List[Tuple[int, float]] = []
        for set_id in self.candidates(q_counts):
            if exclude and set_id in exclude:
                continue
            score = measure.score(q_counts, self.collection[set_id].counts)
            if score > 0.0:
                scored.append((set_id, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:limit] if limit is not None else scored


def pair_metrics(
    predicted: Iterable[Tuple[int, int]],
    truth: Iterable[Tuple[int, int]],
) -> Dict[str, float]:
    """Precision/recall/F1 of predicted match pairs vs. ground truth.

    Pairs are order-normalized, so ``(a, b)`` and ``(b, a)`` coincide.
    Empty truth with empty predictions scores a perfect 1.0 across the
    board (nothing to find, nothing claimed).
    """
    norm = lambda pairs: {tuple(sorted(p)) for p in pairs}  # noqa: E731
    p, t = norm(predicted), norm(truth)
    tp = len(p & t)
    precision = tp / len(p) if p else (1.0 if not t else 0.0)
    recall = tp / len(t) if t else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "true_positives": float(tp),
        "predicted": float(len(p)),
        "actual": float(len(t)),
    }


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for empty input (workloads can come up empty)."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile, ``fraction`` in [0, 1]."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]
