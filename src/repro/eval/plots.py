"""Terminal-friendly plotting: render benchmark series as ASCII charts.

The paper communicates its evaluation as line charts and bar charts; the
benchmarks here regenerate the underlying numbers as tables, and this
module renders those tables as plots a terminal can show — useful in
``examples/`` and for eyeballing trends without a plotting stack.

Only the two chart shapes the paper uses are provided:

* :func:`line_chart` — one row per x value, one labelled series per
  engine (Figures 6, 7, 8, 9);
* :func:`bar_chart` — horizontal bars (Figure 5's index sizes).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = ["bar_chart", "line_chart", "sparkline"]

_BLOCKS = " ▏▎▍▌▋▊▉█"
_SPARKS = "▁▂▃▄▅▆▇█"


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    sort: bool = True,
) -> str:
    """Horizontal bar chart, longest label aligned, bars scaled to width."""
    if not values:
        return "(no data)"
    items = list(values.items())
    if sort:
        items.sort(key=lambda pair: -pair[1])
    peak = max(v for _, v in items) or 1.0
    label_width = max(len(k) for k, _ in items)
    lines = []
    for label, value in items:
        filled = value / peak * width
        whole = int(filled)
        frac = filled - whole
        bar = "█" * whole
        if frac > 0 and whole < width:
            bar += _BLOCKS[int(frac * (len(_BLOCKS) - 1))]
        lines.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)} "
            f"{value:,.1f}{unit}"
        )
    return "\n".join(lines)


def sparkline(series: Sequence[float]) -> str:
    """One-line trend: ▁▂▃▄▅▆▇█ scaled to the series range."""
    if not series:
        return ""
    lo, hi = min(series), max(series)
    if hi == lo:
        return _SPARKS[0] * len(series)
    scale = (len(_SPARKS) - 1) / (hi - lo)
    return "".join(_SPARKS[int((v - lo) * scale)] for v in series)


def line_chart(
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: Optional[int] = None,
    y_label: str = "",
) -> str:
    """Multi-series line chart on a character grid.

    Each series gets a distinct marker; markers overlapping on the grid
    show the later series.  X positions are evenly spaced (the paper's
    sweeps are categorical: thresholds, buckets, edit counts).
    """
    markers = "ox*+#@%&"
    names = list(series)
    if not names or not x_values:
        return "(no data)"
    n = len(x_values)
    width = width or max(4 * n + 1, 24)
    all_values = [v for vs in series.values() for v in vs]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    def col(i: int) -> int:
        return int(i * (width - 1) / max(n - 1, 1))

    def row(v: float) -> int:
        return int((hi - v) * (height - 1) / (hi - lo))

    for s_idx, name in enumerate(names):
        marker = markers[s_idx % len(markers)]
        values = series[name]
        for i, v in enumerate(values[:n]):
            grid[row(v)][col(i)] = marker

    lines = []
    for r, cells in enumerate(grid):
        if r == 0:
            prefix = f"{hi:>10.2f} |"
        elif r == height - 1:
            prefix = f"{lo:>10.2f} |"
        else:
            prefix = " " * 10 + " |"
        lines.append(prefix + "".join(cells))
    lines.append(" " * 11 + "+" + "-" * width)
    labels = " " * 12 + "  ".join(str(x) for x in x_values)
    lines.append(labels)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(names)
    )
    lines.append(" " * 12 + legend)
    if y_label:
        lines.insert(0, f"{y_label}")
    return "\n".join(lines)
