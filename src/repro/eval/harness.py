"""Experiment harness: run workloads, aggregate telemetry, print paper rows.

The benchmarks in ``benchmarks/`` are thin wrappers around this module.
:class:`ExperimentContext` builds one corpus + all indexes; ``run_workload``
executes a query workload under one engine configuration and aggregates the
measurements the paper reports:

* average wall-clock seconds per query (Figure 6) — *secondary* here, since
  CPython list-merge timings are not comparable to the paper's C++/disk
  setup;
* pruning power: mean percentage of list elements never read (Figure 7) —
  the primary, implementation-independent metric;
* simulated I/O: sequential/random pages, hash probes, skip jumps;
* average number of results per query (the counts across the tops of the
  paper's graphs).

Engines are addressed by spec strings: any registered algorithm name
(``sf``, ``inra``, ...), optionally suffixed with ``-nlb`` (length bounding
off) and/or ``-nsl`` (skip lists off), plus ``sql`` / ``sql-nlb`` / each
``sort-by-id``.  Examples: ``"sf"``, ``"sf-nsl"``, ``"inra-nlb"``,
``"sql-nlb"``.
"""

from __future__ import annotations

import re
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..algorithms.base import AlgorithmResult, make_algorithm
from ..core.collection import SetCollection
from ..core.errors import ConfigurationError, EmptyQueryError
from ..core.query import PreparedQuery
from ..core.search import SetSimilaritySearcher
from ..core.tokenize import QGramTokenizer, Tokenizer
from ..data.workloads import QueryWorkload
from ..obs import metrics as obs_metrics
from ..relational.sqlbaseline import SqlBaseline
from ..service import ServiceConfig, SimilarityService
from .metrics import mean

PAPER_THRESHOLDS = (0.6, 0.7, 0.8, 0.9)
PAPER_MODIFICATIONS = (0, 1, 2, 3)


def _registry_snapshot() -> Optional[Dict[str, Any]]:
    """The global registry's state, or None while telemetry is off."""
    registry = obs_metrics.get_registry()
    return registry.snapshot() if registry.enabled else None


def parse_engine_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split an engine spec into (base name, option overrides).

    Recognized suffixes (stackable): ``-nlb`` (length bounding off),
    ``-nsl`` (skip lists off), ``-bufN`` (LRU buffer pool of N pages,
    e.g. ``ta-buf256``).
    """
    options: Dict[str, Any] = {}
    name = spec
    while True:
        if name.endswith("-nlb"):
            name = name[: -len("-nlb")]
            options["use_length_bounds"] = False
        elif name.endswith("-nsl"):
            name = name[: -len("-nsl")]
            options["use_skip_lists"] = False
        else:
            match = re.search(r"-buf(\d+)$", name)
            if match:
                options["buffer_pool_pages"] = int(match.group(1))
                name = name[: match.start()]
            else:
                break
    return name, options


class WorkloadSummary:
    """Aggregated measurements of one workload under one engine.

    ``metrics_snapshot`` carries the state of the global metrics registry
    at collection time (``None`` while telemetry is disabled) so reports
    can embed registry counters next to the per-query ledgers.
    """

    def __init__(
        self,
        engine: str,
        tau: float,
        workload: QueryWorkload,
        per_query: List[AlgorithmResult],
        wall_seconds_total: float,
        metrics_snapshot: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.engine = engine
        self.tau = tau
        self.workload = workload
        self.per_query = per_query
        self.wall_seconds_total = wall_seconds_total
        self.metrics_snapshot = metrics_snapshot

    # -- the paper's reported quantities --------------------------------
    @property
    def avg_wall_seconds(self) -> float:
        return mean([r.wall_seconds for r in self.per_query])

    @property
    def avg_pruning_power(self) -> float:
        return mean([r.pruning_power for r in self.per_query])

    @property
    def avg_results(self) -> float:
        return mean([float(len(r)) for r in self.per_query])

    @property
    def avg_elements_read(self) -> float:
        return mean([float(r.stats.elements_read) for r in self.per_query])

    @property
    def avg_sequential_pages(self) -> float:
        return mean(
            [float(r.stats.sequential_pages) for r in self.per_query]
        )

    @property
    def avg_random_pages(self) -> float:
        return mean([float(r.stats.random_pages) for r in self.per_query])

    @property
    def avg_io_cost(self) -> float:
        """Weighted I/O model (random = 10x sequential)."""
        return mean([r.stats.cost() for r in self.per_query])

    def latency_percentile(self, fraction: float) -> float:
        """Per-query wall-clock percentile in seconds (p50/p95/p99...)."""
        from .metrics import percentile

        return percentile(
            [r.wall_seconds for r in self.per_query], fraction
        )

    def row(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "tau": self.tau,
            "bucket": f"{self.workload.bucket[0]}-{self.workload.bucket[1]}",
            "mods": self.workload.modifications,
            "queries": len(self.workload),
            "avg_results": round(self.avg_results, 2),
            "avg_wall_ms": round(self.avg_wall_seconds * 1000, 3),
            "p95_wall_ms": round(
                self.latency_percentile(0.95) * 1000, 3
            ),
            "pruning_pct": round(self.avg_pruning_power * 100, 1),
            "avg_elems_read": round(self.avg_elements_read, 1),
            "avg_seq_pages": round(self.avg_sequential_pages, 1),
            "avg_rand_pages": round(self.avg_random_pages, 1),
            "avg_io_cost": round(self.avg_io_cost, 1),
        }

    def __repr__(self) -> str:
        return (
            f"WorkloadSummary({self.engine}, tau={self.tau}, "
            f"wall={self.avg_wall_seconds*1000:.2f}ms, "
            f"pruning={self.avg_pruning_power*100:.1f}%)"
        )


class ExperimentContext:
    """One corpus, indexed every way the paper's competitors need."""

    def __init__(
        self,
        collection: SetCollection,
        tokenizer: Optional[Tokenizer] = None,
        build_sql: bool = True,
    ) -> None:
        self.collection = collection
        self.tokenizer = tokenizer or QGramTokenizer(q=3)
        self.searcher = SetSimilaritySearcher(collection)
        self.sql: Optional[SqlBaseline] = (
            SqlBaseline(collection) if build_sql else None
        )
        self._sql_nlb: Optional[SqlBaseline] = None
        self._sqlite = None

    def sql_engine(self, use_length_bounds: bool = True) -> SqlBaseline:
        if self.sql is None:
            raise ConfigurationError("context built without SQL baseline")
        if use_length_bounds:
            return self.sql
        if self._sql_nlb is None:
            # Same tables and index, different plan bounds: share storage.
            import copy

            clone = copy.copy(self.sql)
            clone.use_length_bounds = False
            self._sql_nlb = clone
        return self._sql_nlb

    def prepare(self, query_text: str) -> PreparedQuery:
        tokens = self.tokenizer.tokens(query_text)
        return PreparedQuery(tokens, self.collection.stats)

    # ------------------------------------------------------------------
    def run_query(
        self, engine_spec: str, query_text: str, tau: float
    ) -> Optional[AlgorithmResult]:
        """One query under one engine; None if it tokenizes to nothing."""
        name, options = parse_engine_spec(engine_spec)
        try:
            query = self.prepare(query_text)
        except EmptyQueryError:
            return None
        if name == "sql":
            engine = self.sql_engine(
                options.get("use_length_bounds", True)
            )
            return engine.search(query, tau)
        if name == "sqlite":
            return self.sqlite_engine().search(query, tau)
        algorithm = make_algorithm(name, self.searcher.index, **options)
        return algorithm.search(query, tau)

    def sqlite_engine(self):
        """A lazily built real-RDBMS engine (stdlib SQLite)."""
        if self._sqlite is None:
            from ..relational.sqlite_backend import SqliteBaseline

            self._sqlite = SqliteBaseline(self.collection)
        return self._sqlite

    def run_workload(
        self, engine_spec: str, workload: QueryWorkload, tau: float
    ) -> WorkloadSummary:
        """All workload queries under one engine, aggregated."""
        per_query: List[AlgorithmResult] = []
        started = time.perf_counter()
        for query_text in workload:
            result = self.run_query(engine_spec, query_text, tau)
            if result is not None:
                per_query.append(result)
        elapsed = time.perf_counter() - started
        return WorkloadSummary(
            engine_spec, tau, workload, per_query, elapsed,
            metrics_snapshot=_registry_snapshot(),
        )

    def make_service(
        self, config: Optional[ServiceConfig] = None
    ) -> SimilarityService:
        """A service-layer facade over this context's searcher."""
        return SimilarityService(
            self.searcher, config, tokenizer=self.tokenizer
        )

    def run_workload_batched(
        self,
        workload: Iterable[str],
        tau: float,
        algorithm: str = "sf",
        strategy: str = "threads",
        service: Optional[SimilarityService] = None,
        **config_options: Any,
    ) -> WorkloadSummary:
        """The workload as *one service batch* instead of a query loop.

        Accepts any iterable of query texts (a
        :class:`~repro.data.workloads.QueryWorkload` or a raw traffic
        list, e.g. from :func:`repro.data.workloads.make_traffic`).
        Pass ``service`` to reuse one facade (and its warm caches)
        across calls; otherwise a fresh one is built from
        ``config_options`` and closed before returning.

        The summary's per-query telemetry comes from the underlying
        :class:`AlgorithmResult` objects; cache hits replay the original
        result, so their ledgers count the *original* work, while
        ``wall_seconds_total`` reflects the actual batch wall-clock.
        """
        texts = list(workload)
        own = service is None
        if own:
            service = SimilarityService(
                self.searcher,
                ServiceConfig(algorithm=algorithm, **config_options),
                tokenizer=self.tokenizer,
            )
        try:
            queries = [self.tokenizer.tokens(text) for text in texts]
            started = time.perf_counter()
            results = service.search_batch(
                queries, tau, algorithm=algorithm, strategy=strategy
            )
            elapsed = time.perf_counter() - started
        finally:
            if own:
                service.close()
        per_query = [
            r.result for r in results if r.ok and r.result is not None
        ]
        summary_workload = (
            workload
            if isinstance(workload, QueryWorkload)
            # Raw traffic: no sampling bucket, no provenance.
            else QueryWorkload(texts, [-1] * len(texts), (0, 0), 0)
        )
        return WorkloadSummary(
            f"service-{strategy}", tau, summary_workload, per_query, elapsed,
            metrics_snapshot=_registry_snapshot(),
        )

    def sweep(
        self,
        engine_specs: Sequence[str],
        workloads: Sequence[QueryWorkload],
        taus: Sequence[float],
    ) -> List[WorkloadSummary]:
        """Cross product engines x workloads x thresholds."""
        out: List[WorkloadSummary] = []
        for workload in workloads:
            for tau in taus:
                for spec in engine_specs:
                    out.append(self.run_workload(spec, workload, tau))
        return out


def format_table(
    rows: Iterable[Dict[str, Any]], columns: Optional[Sequence[str]] = None
) -> str:
    """Fixed-width text table for benchmark output."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    rule = "  ".join("-" * widths[c] for c in columns)
    lines = [header, rule]
    for r in rows:
        lines.append(
            "  ".join(str(r.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def rows_to_csv(rows: Iterable[Dict[str, Any]], path) -> int:
    """Write workload rows (``WorkloadSummary.row()`` dicts) as CSV.

    Columns are the union of all row keys, in first-appearance order;
    returns the number of data rows written.
    """
    import csv

    rows = list(rows)
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def run_batch(
    context: ExperimentContext,
    engine_spec: str,
    query_texts: Sequence[str],
    tau: float,
    processes: Optional[int] = None,
) -> List[Optional[AlgorithmResult]]:
    """Execute a query batch, optionally across worker processes.

    The paper lists parallel execution as future work; queries are
    independent, so batch-level parallelism is the natural library-side
    realization.  With ``processes=None`` (or 1) the batch runs inline;
    otherwise a fork-based pool shares the index copy-on-write.
    """
    if not processes or processes <= 1:
        return [
            context.run_query(engine_spec, text, tau)
            for text in query_texts
        ]
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    global _BATCH_STATE
    _BATCH_STATE = (context, engine_spec, tau)
    try:
        with ctx.Pool(processes) as pool:
            return pool.map(_batch_worker, list(query_texts))
    finally:
        _BATCH_STATE = None


_BATCH_STATE: Optional[Tuple[ExperimentContext, str, float]] = None


def _batch_worker(query_text: str) -> Optional[AlgorithmResult]:
    context, engine_spec, tau = _BATCH_STATE
    return context.run_query(engine_spec, query_text, tau)
