"""Experiment harness and evaluation metrics."""

from .harness import (
    PAPER_MODIFICATIONS,
    PAPER_THRESHOLDS,
    ExperimentContext,
    WorkloadSummary,
    format_table,
    parse_engine_spec,
    run_batch,
)
from .plots import bar_chart, line_chart, sparkline
from .report import build_report, coverage, write_report
from .metrics import (
    MeasureRanker,
    average_precision,
    mean,
    percentile,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)

__all__ = [
    "PAPER_MODIFICATIONS",
    "PAPER_THRESHOLDS",
    "ExperimentContext",
    "WorkloadSummary",
    "format_table",
    "parse_engine_spec",
    "run_batch",
    "bar_chart",
    "line_chart",
    "sparkline",
    "build_report",
    "coverage",
    "write_report",
    "MeasureRanker",
    "average_precision",
    "mean",
    "percentile",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
]
