"""Process-wide fault-plan slot: arm, disarm, scope, and hot-path hooks.

Mirrors the :mod:`repro.obs.registry` runtime: one global slot holding
either the shared :data:`NULL_PLAN` (disabled — the default) or an
armed :class:`~repro.faults.plan.FaultPlan`.  Instrumented code calls
:func:`maybe_fire` / :func:`maybe_mangle`, which cost one attribute
test when disarmed.

Arming:

* ``REPRO_FAULTS=<spec>`` in the environment arms the process at
  import time (see :func:`repro.faults.plan.parse_fault_spec` for the
  grammar).
* :func:`arm` / :func:`disarm` switch the slot explicitly.
* :func:`use_fault_plan` scopes a plan to a ``with`` block — the form
  tests use.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Union

from .plan import FaultPlan, NullFaultPlan, parse_fault_spec

__all__ = [
    "ENV_VAR",
    "NULL_PLAN",
    "get_plan",
    "arm",
    "disarm",
    "use_fault_plan",
    "maybe_fire",
    "maybe_mangle",
]

ENV_VAR = "REPRO_FAULTS"

NULL_PLAN = NullFaultPlan()


class _PlanState:
    """Mutable slot so `from .runtime import maybe_fire` stays valid
    across arm/disarm (same shape as ``repro.obs.metrics._RegistryState``)."""

    __slots__ = ("plan", "lock")

    def __init__(self) -> None:
        self.plan: Union[FaultPlan, NullFaultPlan] = NULL_PLAN
        self.lock = threading.Lock()


STATE = _PlanState()


def get_plan() -> Union[FaultPlan, NullFaultPlan]:
    """The currently armed plan (the Null twin when injection is off)."""
    return STATE.plan


def arm(
    spec_or_plan: Union[str, FaultPlan],
    sleeper: Optional[Callable[[float], None]] = None,
) -> FaultPlan:
    """Arm fault injection process-wide; returns the installed plan."""
    if isinstance(spec_or_plan, str):
        plan = parse_fault_spec(spec_or_plan, sleeper=sleeper)
    else:
        plan = spec_or_plan
    with STATE.lock:
        STATE.plan = plan
    return plan


def disarm() -> None:
    """Return the slot to the Null twin."""
    with STATE.lock:
        STATE.plan = NULL_PLAN


@contextmanager
def use_fault_plan(
    spec_or_plan: Union[str, FaultPlan],
    sleeper: Optional[Callable[[float], None]] = None,
) -> Iterator[FaultPlan]:
    """Arm a plan for the duration of a ``with`` block, then restore.

    >>> from repro.faults import use_fault_plan
    >>> with use_fault_plan("seed=7;demo.site:transient:count=1") as plan:
    ...     pass  # code under test runs here
    """
    if isinstance(spec_or_plan, str):
        plan = parse_fault_spec(spec_or_plan, sleeper=sleeper)
    else:
        plan = spec_or_plan
    with STATE.lock:
        previous = STATE.plan
        STATE.plan = plan
    try:
        yield plan
    finally:
        with STATE.lock:
            STATE.plan = previous


def maybe_fire(site: str) -> None:
    """Hot-path hook: apply control-flow faults for ``site`` if armed.

    Call sites resolve this through their module global at call time
    (``faults_runtime.maybe_fire(site)``) so benchmarks can monkeypatch
    it away to measure the instrumentation floor.
    """
    plan = STATE.plan
    if plan.armed:
        plan.fire(site)


def maybe_mangle(site: str, data: bytes) -> bytes:
    """Hot-path hook: pass ``data`` through data-corruption rules."""
    plan = STATE.plan
    if plan.armed:
        return plan.mangle(site, data)
    return data


_spec = os.environ.get(ENV_VAR, "").strip()
if _spec:
    arm(_spec)
del _spec
