"""Exception types raised by injected faults.

These deliberately do **not** derive from
:class:`repro.core.errors.ReproError`: the ``faults`` package sits at
rank 0 of the layering DAG (next to ``obs``) and imports nothing from
the rest of the package, and — more importantly — an injected fault
models an *infrastructure* failure (a disk read error, a torn write),
not a library error.  Deriving from :class:`OSError` means code under
test exercises the same ``except`` clauses that real I/O failures
would take.
"""

from __future__ import annotations


class FaultError(OSError):
    """Base class for every error raised by an injected fault.

    ``site`` names the fault point that fired (e.g.
    ``"storage.read_page"``), so a test asserting on a specific failure
    can tell injected faults apart from real ones.
    """

    def __init__(self, site: str, detail: str = "") -> None:
        self.site = site
        suffix = f": {detail}" if detail else ""
        super().__init__(f"injected fault at {site!r}{suffix}")


class TransientIOError(FaultError):
    """A recoverable I/O failure: retrying the operation may succeed.

    The service layer's retry machinery
    (:mod:`repro.service.resilience`) treats this class — and only this
    class — as retryable by default.
    """


class TornWriteError(FaultError):
    """A write that stopped partway, as if the process was killed.

    Raised by write-side fault points to simulate a crash (kill -9,
    power loss) at that exact point.  Crash-safe code must leave the
    on-disk state loadable as either the old or the new generation when
    this fires — never corrupt.
    """


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec string that does not parse."""
