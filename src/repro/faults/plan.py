"""Fault plans: parsed specs, seeded dice, and the Null twin.

A *fault plan* is a set of rules, each binding a fault **site** pattern
to a fault **kind** with trigger parameters.  The spec grammar (used by
the ``REPRO_FAULTS`` environment variable and
:func:`repro.faults.use_fault_plan`) is::

    spec     := clause (";" clause)*
    clause   := "seed=" int          -- global PRNG seed (default 0)
              | rule
    rule     := site ":" kind (":" key "=" value)*
    site     := dotted name, "*" wildcards allowed (fnmatch)
    kind     := "transient"          -- raise TransientIOError
              | "torn"               -- raise TornWriteError
              | "flip"               -- flip bytes in data passing through
              | "latency"            -- sleep before the operation
    key      := "p"                  -- trigger probability   (default 1.0)
              | "count"              -- max triggers, then dormant (default
                                        unlimited)
              | "after"              -- skip the first N matching hits
                                        (default 0)
              | "ms"                 -- latency in milliseconds (latency
                                        only, default 1.0)
              | "bytes"              -- bytes to corrupt (flip only,
                                        default 1)

Examples::

    seed=42;storage.read_page:transient:p=0.05
    persist.write_postings:torn:after=1;persist.fsync:latency:ms=2
    persist.read_*:flip:p=0.01:bytes=3:count=1

Determinism: every trigger decision draws from one
:class:`random.Random` seeded by the plan's ``seed`` under a lock, so a
single-threaded run of the same operations against the same spec
reproduces the *identical* fault sequence (asserted by
``tests/test_faults.py``).  Under free-running threads the per-thread
interleaving is scheduler-dependent, but the total set of draws still
depends only on the work submitted.

:class:`NullFaultPlan` is the disabled twin (same pattern as
:class:`repro.obs.NullRegistry`): ``armed`` is False and every
operation is a no-op, so instrumented hot paths pay one attribute test
when injection is off — measured ≤ 2 % on the SF hot path by
``benchmarks/bench_faults_overhead.py``.
"""

from __future__ import annotations

import threading
import time
from fnmatch import fnmatchcase
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .errors import FaultSpecError, TornWriteError, TransientIOError

__all__ = [
    "KINDS",
    "FaultRule",
    "FaultPlan",
    "NullFaultPlan",
    "parse_fault_spec",
]

KINDS = ("transient", "torn", "flip", "latency")

#: Kinds applied by :meth:`FaultPlan.fire` (control-flow faults) vs.
#: :meth:`FaultPlan.mangle` (data faults).
_FIRE_KINDS = ("transient", "torn", "latency")


class FaultRule:
    """One parsed rule: where, what, and how often."""

    __slots__ = (
        "site", "kind", "probability", "count", "after",
        "latency_ms", "flip_bytes", "hits", "triggered",
    )

    def __init__(
        self,
        site: str,
        kind: str,
        probability: float = 1.0,
        count: Optional[int] = None,
        after: int = 0,
        latency_ms: float = 1.0,
        flip_bytes: int = 1,
    ) -> None:
        if kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r}; known kinds: {KINDS}"
            )
        if not (0.0 <= probability <= 1.0):
            raise FaultSpecError(
                f"probability must be in [0, 1], got {probability!r}"
            )
        if count is not None and count < 0:
            raise FaultSpecError(f"count must be >= 0, got {count!r}")
        if after < 0:
            raise FaultSpecError(f"after must be >= 0, got {after!r}")
        if latency_ms < 0:
            raise FaultSpecError(f"ms must be >= 0, got {latency_ms!r}")
        if flip_bytes < 1:
            raise FaultSpecError(f"bytes must be >= 1, got {flip_bytes!r}")
        self.site = site
        self.kind = kind
        self.probability = probability
        self.count = count
        self.after = after
        self.latency_ms = latency_ms
        self.flip_bytes = flip_bytes
        self.hits = 0  # matching passes through this rule's site
        self.triggered = 0  # times the rule actually injected

    def matches(self, site: str) -> bool:
        return fnmatchcase(site, self.site)

    def exhausted(self) -> bool:
        return self.count is not None and self.triggered >= self.count

    def __repr__(self) -> str:
        return (
            f"FaultRule({self.site}:{self.kind}, p={self.probability}, "
            f"triggered={self.triggered})"
        )


def _parse_clause(clause: str) -> FaultRule:
    parts = clause.split(":")
    if len(parts) < 2:
        raise FaultSpecError(
            f"rule {clause!r} must be 'site:kind[:key=value...]'"
        )
    site, kind = parts[0].strip(), parts[1].strip()
    if not site:
        raise FaultSpecError(f"rule {clause!r} has an empty site")
    kwargs: Dict[str, float] = {}
    for raw in parts[2:]:
        if "=" not in raw:
            raise FaultSpecError(
                f"rule option {raw!r} must be 'key=value'"
            )
        key, value = (s.strip() for s in raw.split("=", 1))
        try:
            if key == "p":
                kwargs["probability"] = float(value)
            elif key == "count":
                kwargs["count"] = int(value)
            elif key == "after":
                kwargs["after"] = int(value)
            elif key == "ms":
                kwargs["latency_ms"] = float(value)
            elif key == "bytes":
                kwargs["flip_bytes"] = int(value)
            else:
                raise FaultSpecError(
                    f"unknown rule option {key!r} "
                    "(known: p, count, after, ms, bytes)"
                )
        except ValueError as exc:
            if isinstance(exc, FaultSpecError):
                raise
            raise FaultSpecError(
                f"bad value for {key!r} in {clause!r}: {value!r}"
            ) from None
    return FaultRule(site, kind, **kwargs)  # type: ignore[arg-type]


def parse_fault_spec(
    spec: str, sleeper: Optional[Callable[[float], None]] = None
) -> "FaultPlan":
    """Parse a spec string (grammar in the module docstring)."""
    seed = 0
    rules: List[FaultRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if ":" not in clause:
            key, _, value = clause.partition("=")
            if key.strip() != "seed" or not _:
                raise FaultSpecError(
                    f"clause {clause!r} is neither 'seed=N' nor a rule"
                )
            try:
                seed = int(value.strip())
            except ValueError:
                raise FaultSpecError(
                    f"seed must be an integer, got {value!r}"
                ) from None
            continue
        rules.append(_parse_clause(clause))
    if not rules:
        raise FaultSpecError(f"spec {spec!r} declares no fault rules")
    return FaultPlan(rules, seed=seed, sleeper=sleeper)


class FaultPlan:
    """An armed set of fault rules sharing one seeded PRNG.

    ``fire(site)`` applies control-flow rules (transient / torn /
    latency); ``mangle(site, data)`` applies data rules (flip).  Both
    are thread-safe; the injection journal (:attr:`journal`) records
    ``(site, kind)`` in trigger order so tests can assert exact replay.

    ``sleeper`` receives latency injections in *seconds*; tests pass a
    recording stub so no real sleeping happens.
    """

    armed = True

    def __init__(
        self,
        rules: Sequence[FaultRule],
        seed: int = 0,
        sleeper: Optional[Callable[[float], None]] = None,
    ) -> None:
        # `random` is imported lazily so a disabled process never pays
        # for it; plans are only built when injection is requested.
        import random

        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self.sleeper = sleeper if sleeper is not None else time.sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.journal: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    def _decide(self, rule: FaultRule) -> bool:
        """One trigger decision (caller holds the lock).

        Every matching pass consumes exactly one PRNG draw whether or
        not it triggers, so the decision sequence depends only on the
        operation sequence — the replay guarantee.
        """
        draw = self._rng.random()
        rule.hits += 1
        if rule.exhausted() or rule.hits <= rule.after:
            return False
        if draw >= rule.probability:
            return False
        rule.triggered += 1
        return True

    def _record(self, site: str, kind: str) -> None:
        self.journal.append((site, kind))
        # Late import: `faults` sits at rank 0 next to `obs`, so the
        # registry dependency must not bind at module import time.
        from ..obs import metrics as obs_metrics

        registry = obs_metrics.get_registry()
        if registry.enabled:
            registry.counter(
                "faults_injected_total",
                "Faults injected by the repro.faults layer.",
                ("site", "kind"),
            ).labels(site=site, kind=kind).inc()

    # ------------------------------------------------------------------
    def fire(self, site: str) -> None:
        """Apply control-flow rules for one pass through ``site``.

        May sleep (latency), raise :class:`TransientIOError`
        (transient) or raise :class:`TornWriteError` (torn); does
        nothing when no rule triggers.
        """
        sleep_ms = 0.0
        error: Optional[Exception] = None
        with self._lock:
            for rule in self.rules:
                if rule.kind not in _FIRE_KINDS or not rule.matches(site):
                    continue
                if not self._decide(rule):
                    continue
                self._record(site, rule.kind)
                if rule.kind == "latency":
                    sleep_ms += rule.latency_ms
                elif error is None:
                    cls = (
                        TransientIOError
                        if rule.kind == "transient"
                        else TornWriteError
                    )
                    error = cls(site)
        if sleep_ms > 0.0:
            self.sleeper(sleep_ms / 1000.0)
        if error is not None:
            raise error

    def mangle(self, site: str, data: bytes) -> bytes:
        """Apply data-corruption rules to bytes passing through ``site``.

        Returns the (possibly corrupted) bytes; rules that do not
        trigger leave the data untouched.
        """
        if not data:
            return data
        with self._lock:
            mutated: Optional[bytearray] = None
            for rule in self.rules:
                if rule.kind != "flip" or not rule.matches(site):
                    continue
                if not self._decide(rule):
                    continue
                self._record(site, "flip")
                if mutated is None:
                    mutated = bytearray(data)
                for _ in range(rule.flip_bytes):
                    pos = self._rng.randrange(len(mutated))
                    mutated[pos] ^= 1 << self._rng.randrange(8)
        return bytes(mutated) if mutated is not None else data

    # ------------------------------------------------------------------
    def injected_total(self) -> int:
        with self._lock:
            return len(self.journal)

    def counts(self) -> Dict[Tuple[str, str], int]:
        """Injection counts keyed by ``(site, kind)``."""
        out: Dict[Tuple[str, str], int] = {}
        with self._lock:
            for entry in self.journal:
                out[entry] = out.get(entry, 0) + 1
        return out

    def __repr__(self) -> str:
        return (
            f"FaultPlan(rules={len(self.rules)}, seed={self.seed}, "
            f"injected={len(self.journal)})"
        )


class NullFaultPlan:
    """The disabled twin: same surface, no state, never fires.

    One shared instance (``repro.faults.runtime.NULL_PLAN``) occupies
    the global slot while injection is off; hot paths test ``armed``
    and skip everything else.
    """

    armed = False
    rules: Tuple[FaultRule, ...] = ()
    journal: List[Tuple[str, str]] = []

    def fire(self, site: str) -> None:
        pass

    def mangle(self, site: str, data: bytes) -> bytes:
        return data

    def injected_total(self) -> int:
        return 0

    def counts(self) -> Dict[Tuple[str, str], int]:
        return {}

    def __repr__(self) -> str:
        return "NullFaultPlan()"
