"""Deterministic, seeded fault injection (rank-0 layer, next to ``obs``).

Fault *points* are named call sites in storage and service hot paths
(``"storage.read_page"``, ``"persist.write_postings"``,
``"service.execute"``, ...).  A *plan* — parsed from the
``REPRO_FAULTS`` environment variable or scoped with
:func:`use_fault_plan` — decides, from a seeded PRNG, which points
raise :class:`TransientIOError` / :class:`TornWriteError`, corrupt
bytes, or inject latency.  Disabled, every point is one attribute test
(the :class:`~repro.faults.plan.NullFaultPlan` twin).

See ``docs/robustness.md`` for the spec grammar and the runbook.
"""

from .errors import (
    FaultError,
    FaultSpecError,
    TornWriteError,
    TransientIOError,
)
from .plan import KINDS, FaultPlan, FaultRule, NullFaultPlan, parse_fault_spec
from .runtime import (
    ENV_VAR,
    NULL_PLAN,
    arm,
    disarm,
    get_plan,
    maybe_fire,
    maybe_mangle,
    use_fault_plan,
)

__all__ = [
    "FaultError",
    "FaultSpecError",
    "TornWriteError",
    "TransientIOError",
    "KINDS",
    "FaultPlan",
    "FaultRule",
    "NullFaultPlan",
    "parse_fault_spec",
    "ENV_VAR",
    "NULL_PLAN",
    "arm",
    "disarm",
    "get_plan",
    "maybe_fire",
    "maybe_mangle",
    "use_fault_plan",
]
