"""Crash-safe on-disk persistence for collections and inverted indexes.

The paper's indexes are disk resident and built once; this module gives
the library the matching lifecycle: build, :func:`save_searcher`, ship,
and :func:`load_searcher` without re-tokenizing or re-sorting — and it
does so *crash-safely*: a process killed at any point during a save
leaves the directory loadable as either the old or the new index state,
never corrupt (simulated and asserted by ``tests/test_recovery.py``
through the :mod:`repro.faults` layer).

Generation layout (format version 2, the default)::

    index-dir/
      CURRENT              # text: name of the live generation
      gen-000001/
        manifest.json      # version, flags, counts, per-file sha256
        collection.jsonl   # one JSON object per set, in id order
        postings.bin       # framed weight-ordered postings per token

A save writes a fresh generation into a hidden temp directory, fsyncs
every file, writes the manifest *last* (so a manifest can never name
data that was not flushed), promotes the temp directory with a rename,
and finally flips ``CURRENT`` via atomic ``os.replace``.  Readers see
the old generation until that final rename.

Loading verifies manifest → checksums → postings-vs-collection; any
damage is attributed to a specific component in a structured
:class:`RecoveryReport`.  When the current generation is damaged the
loader quarantines it (rename to ``<gen>.corrupt``) and falls back to
the newest intact generation; only when *no* generation survives does
it raise :class:`~repro.core.errors.CorruptIndexError` carrying the
report.

The flat single-directory layout of format version 1
(``manifest.json`` + data files at top level) is still read, and
``save_searcher(..., layout="flat")`` still writes it — now with the
data-first + fsync ordering and manifest checksums.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import struct
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..core.collection import SetCollection
from ..core.errors import CorruptIndexError, StorageError
from ..core.search import SetSimilaritySearcher
from ..faults import runtime as faults_runtime

FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

_POSTING = struct.Struct("<dQ")
_COUNT = struct.Struct("<I")

_CURRENT = "CURRENT"
_GEN_PREFIX = "gen-"
_TMP_PREFIX = ".tmp-"
_QUARANTINE_SUFFIX = ".corrupt"

COLLECTION_FILE = "collection.jsonl"
POSTINGS_FILE = "postings.bin"
MANIFEST_FILE = "manifest.json"


class DamageRecord:
    """One attributed failure: which generation, which component, why."""

    __slots__ = ("generation", "component", "detail")

    def __init__(self, generation: str, component: str, detail: str) -> None:
        self.generation = generation
        self.component = component
        self.detail = detail

    def __repr__(self) -> str:
        return (
            f"DamageRecord(generation={self.generation!r}, "
            f"component={self.component!r}, detail={self.detail!r})"
        )


class RecoveryReport:
    """Structured account of what a load found and what it did about it.

    Attached to every loaded searcher as ``searcher.recovery_report``
    (``clean`` is True for an undamaged load) and carried by
    :class:`~repro.core.errors.CorruptIndexError` when recovery failed.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.damage: List[DamageRecord] = []
        self.generations_tried: List[str] = []
        self.loaded_generation: Optional[str] = None
        self.quarantined: List[str] = []
        self.legacy = False

    @property
    def clean(self) -> bool:
        return not self.damage

    @property
    def recovered(self) -> bool:
        """True when damage was found but an intact generation loaded."""
        return bool(self.damage) and self.loaded_generation is not None

    def components(self) -> List[str]:
        return [d.component for d in self.damage]

    def record(self, generation: str, component: str, detail: str) -> None:
        self.damage.append(DamageRecord(generation, component, detail))

    def summary(self) -> str:
        if self.clean:
            return f"clean load of {self.loaded_generation or self.path}"
        parts = [
            f"{d.generation}/{d.component}: {d.detail}" for d in self.damage
        ]
        outcome = (
            f"recovered via {self.loaded_generation}"
            if self.loaded_generation
            else "unrecoverable"
        )
        return f"{outcome}; damage: " + "; ".join(parts)

    def __repr__(self) -> str:
        return f"RecoveryReport({self.summary()})"


class _ComponentFailure(StorageError):
    """Internal: a load stage failed; carries the component name."""

    def __init__(self, component: str, detail: str) -> None:
        super().__init__(f"{component}: {detail}")
        self.component = component
        self.detail = detail


# ----------------------------------------------------------------------
# low-level I/O with fault points
# ----------------------------------------------------------------------
def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _fsync_fd(fd: int) -> None:
    faults_runtime.maybe_fire("persist.fsync")
    os.fsync(fd)


def _fsync_dir(path: Path) -> None:
    fd = os.open(str(path), os.O_RDONLY)
    try:
        _fsync_fd(fd)
    finally:
        os.close(fd)


def _write_file(path: Path, data: bytes, site: str) -> None:
    """Write + flush + fsync one file, exposing ``site`` as a fault point."""
    faults_runtime.maybe_fire(site)
    data = faults_runtime.maybe_mangle(site, data)
    with open(path, "wb") as fh:
        fh.write(data)
        fh.flush()
        _fsync_fd(fh.fileno())


def _read_file(path: Path, site: str) -> bytes:
    faults_runtime.maybe_fire(site)
    return faults_runtime.maybe_mangle(site, path.read_bytes())


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def _collection_bytes(collection: SetCollection) -> bytes:
    lines = []
    for rec in collection:
        try:
            lines.append(
                json.dumps(
                    {
                        "tokens": sorted(rec.tokens),
                        "counts": rec.counts,
                        "payload": rec.payload,
                    },
                    ensure_ascii=False,
                )
            )
        except TypeError as exc:
            raise StorageError(
                f"payload of set {rec.set_id} is not JSON-serializable: "
                f"{exc}"
            ) from None
    return ("\n".join(lines) + "\n" if lines else "").encode("utf-8")


def _postings_bytes(index) -> Tuple[bytes, int]:
    chunks = []
    num_postings = 0
    for token in sorted(index.tokens()):
        encoded = token.encode("utf-8")
        chunks.append(_COUNT.pack(len(encoded)))
        chunks.append(encoded)
        cursor = index.cursor(token)
        entries = []
        while not cursor.exhausted():
            entries.append(cursor.next())
        chunks.append(_COUNT.pack(len(entries)))
        for length, set_id in entries:
            chunks.append(_POSTING.pack(length, set_id))
        num_postings += len(entries)
    return b"".join(chunks), num_postings


def _build_manifest(
    searcher: SetSimilaritySearcher,
    num_postings: int,
    checksums: Dict[str, str],
) -> Dict[str, Any]:
    index = searcher.index
    return {
        "format_version": FORMAT_VERSION,
        "num_sets": len(searcher.collection),
        "num_tokens": len(list(index.tokens())),
        "num_postings": num_postings,
        "with_id_lists": index.with_id_lists,
        "with_skip_lists": index.with_skip_lists,
        "with_hash_index": index.with_hash_index,
        "checksums": checksums,
    }


def _write_payload_files(directory: Path, searcher) -> Dict[str, Any]:
    """Write data files first (fsynced), then the manifest naming them.

    The ordering is the point: a manifest must never name bytes that
    were not flushed, so a crash between the two leaves a directory
    whose manifest (old or absent) matches what is actually on disk.
    """
    collection_data = _collection_bytes(searcher.collection)
    postings_data, num_postings = _postings_bytes(searcher.index)
    _write_file(
        directory / COLLECTION_FILE, collection_data, "persist.write_collection"
    )
    _write_file(
        directory / POSTINGS_FILE, postings_data, "persist.write_postings"
    )
    manifest = _build_manifest(
        searcher,
        num_postings,
        {
            COLLECTION_FILE: _sha256(collection_data),
            POSTINGS_FILE: _sha256(postings_data),
        },
    )
    _write_file(
        directory / MANIFEST_FILE,
        json.dumps(manifest, indent=2).encode("utf-8"),
        "persist.write_manifest",
    )
    return manifest


# ----------------------------------------------------------------------
# generation bookkeeping
# ----------------------------------------------------------------------
def _generation_dirs(directory: Path) -> List[str]:
    """Names of complete generation directories, oldest first."""
    names = []
    for entry in directory.iterdir():
        if (
            entry.is_dir()
            and entry.name.startswith(_GEN_PREFIX)
            and not entry.name.endswith(_QUARANTINE_SUFFIX)
            and entry.name[len(_GEN_PREFIX) :].isdigit()
        ):
            names.append(entry.name)
    return sorted(names, key=lambda n: int(n[len(_GEN_PREFIX) :]))


def _next_generation_name(directory: Path) -> str:
    highest = 0
    for entry in directory.iterdir():
        name = entry.name
        if name.startswith(_TMP_PREFIX):
            name = name[len(_TMP_PREFIX) :]
        if name.endswith(_QUARANTINE_SUFFIX):
            name = name[: -len(_QUARANTINE_SUFFIX)]
        if name.startswith(_GEN_PREFIX) and name[len(_GEN_PREFIX) :].isdigit():
            highest = max(highest, int(name[len(_GEN_PREFIX) :]))
    return f"{_GEN_PREFIX}{highest + 1:06d}"


def _set_current(directory: Path, gen_name: str) -> None:
    """Atomically repoint ``CURRENT`` (temp file + ``os.replace``)."""
    tmp = directory / (_CURRENT + ".tmp")
    _write_file(tmp, (gen_name + "\n").encode("utf-8"), "persist.promote")
    os.replace(tmp, directory / _CURRENT)
    _fsync_dir(directory)


def _clean_stale_tmp(directory: Path) -> None:
    for entry in directory.iterdir():
        if entry.is_dir() and entry.name.startswith(_TMP_PREFIX):
            shutil.rmtree(entry, ignore_errors=True)


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def save_searcher(
    searcher: SetSimilaritySearcher, path, layout: str = "generation"
) -> Dict[str, Any]:
    """Persist a searcher's collection and index to a directory.

    ``layout="generation"`` (default) writes a new crash-safe
    generation and flips ``CURRENT`` to it only after everything is
    durable.  ``layout="flat"`` writes the version-1-style flat
    directory in place (data files first, fsynced, manifest last) for
    tooling that expects the old single-level layout.

    Returns the manifest that was written.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)

    if layout == "flat":
        return _write_payload_files(directory, searcher)
    if layout != "generation":
        raise StorageError(
            f"unknown layout {layout!r} (use 'generation' or 'flat')"
        )

    _clean_stale_tmp(directory)
    gen_name = _next_generation_name(directory)
    tmp_dir = directory / (_TMP_PREFIX + gen_name)
    tmp_dir.mkdir()
    manifest = _write_payload_files(tmp_dir, searcher)
    _fsync_dir(tmp_dir)
    # Promotion: rename the fully-flushed temp directory, make the
    # rename durable, then flip CURRENT.  A crash before the final
    # replace leaves CURRENT on the old generation; after it, on the
    # new one.  Either way the directory loads.
    faults_runtime.maybe_fire("persist.promote")
    os.rename(tmp_dir, directory / gen_name)
    _fsync_dir(directory)
    _set_current(directory, gen_name)
    return manifest


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def load_searcher(path) -> SetSimilaritySearcher:
    """Load a searcher persisted by :func:`save_searcher`.

    Detects the layout (``CURRENT`` ⇒ generational, top-level
    ``manifest.json`` ⇒ legacy flat), verifies integrity, and recovers
    from a damaged current generation by quarantining it and falling
    back to the newest intact one.  The returned searcher carries a
    ``recovery_report`` attribute (:class:`RecoveryReport`); when no
    intact state exists, raises
    :class:`~repro.core.errors.CorruptIndexError` whose ``report``
    names every damaged component.
    """
    directory = Path(path)
    if (directory / _CURRENT).exists():
        return _load_generational(directory)
    if (directory / MANIFEST_FILE).exists():
        return _load_flat(directory)
    raise StorageError(f"no persisted index under {directory}")


def _load_generational(directory: Path) -> SetSimilaritySearcher:
    report = RecoveryReport(str(directory))
    known = _generation_dirs(directory)

    current: Optional[str] = None
    try:
        raw = _read_file(directory / _CURRENT, "persist.read_manifest")
        name = raw.decode("utf-8", errors="replace").strip()
        if name in known:
            current = name
        else:
            report.record(
                _CURRENT, "pointer", f"names missing generation {name!r}"
            )
    except OSError as exc:
        report.record(_CURRENT, "pointer", str(exc))

    candidates = []
    if current is not None:
        candidates.append(current)
    candidates.extend(
        sorted(
            (g for g in known if g != current),
            key=lambda n: int(n[len(_GEN_PREFIX) :]),
            reverse=True,
        )
    )

    failed: List[str] = []
    for gen in candidates:
        report.generations_tried.append(gen)
        try:
            searcher = _load_generation(directory / gen)
        except _ComponentFailure as exc:
            report.record(gen, exc.component, exc.detail)
            failed.append(gen)
            continue
        except OSError as exc:
            report.record(gen, "io", str(exc))
            failed.append(gen)
            continue
        report.loaded_generation = gen
        if failed or current != gen:
            _quarantine(directory, failed, report)
            try:
                _set_current(directory, gen)
            except OSError as exc:
                report.record(gen, "pointer-repair", str(exc))
        searcher.recovery_report = report
        return searcher

    raise CorruptIndexError(
        f"no intact generation under {directory}: {report.summary()}",
        report=report,
    )


def _quarantine(
    directory: Path, generations: List[str], report: RecoveryReport
) -> None:
    """Best-effort rename of damaged generations out of the candidate set."""
    for gen in generations:
        target = directory / (gen + _QUARANTINE_SUFFIX)
        n = 1
        while target.exists():
            target = directory / f"{gen}{_QUARANTINE_SUFFIX}.{n}"
            n += 1
        try:
            os.rename(directory / gen, target)
            report.quarantined.append(target.name)
        except OSError:
            pass


def _load_flat(directory: Path) -> SetSimilaritySearcher:
    report = RecoveryReport(str(directory))
    report.legacy = True
    try:
        searcher = _load_generation(directory)
    except _ComponentFailure as exc:
        report.record("flat", exc.component, exc.detail)
        raise CorruptIndexError(
            f"flat index under {directory} is damaged: {report.summary()}",
            report=report,
        ) from None
    except OSError as exc:
        report.record("flat", "io", str(exc))
        raise CorruptIndexError(
            f"flat index under {directory} is unreadable: {report.summary()}",
            report=report,
        ) from None
    report.loaded_generation = "flat"
    searcher.recovery_report = report
    return searcher


def _load_generation(gen_dir: Path) -> SetSimilaritySearcher:
    """Load one directory (a generation, or a flat legacy layout).

    Raises :class:`_ComponentFailure` naming the first component whose
    verification failed; never returns a searcher that would score
    differently from the saved one.
    """
    manifest_path = gen_dir / MANIFEST_FILE
    if not manifest_path.exists():
        raise _ComponentFailure("manifest", "manifest.json is missing")
    try:
        manifest = json.loads(
            _read_file(manifest_path, "persist.read_manifest").decode("utf-8")
        )
    except (ValueError, UnicodeDecodeError) as exc:
        raise _ComponentFailure(
            "manifest", f"manifest.json does not parse: {exc}"
        ) from None
    if not isinstance(manifest, dict):
        raise _ComponentFailure("manifest", "manifest.json is not an object")
    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise _ComponentFailure(
            "manifest", f"unsupported format version {version!r}"
        )

    required = (
        "num_sets",
        "num_tokens",
        "num_postings",
        "with_id_lists",
        "with_skip_lists",
        "with_hash_index",
    )
    missing = [key for key in required if key not in manifest]
    if missing:
        raise _ComponentFailure(
            "manifest", f"manifest.json lacks keys {missing}"
        )

    collection_path = gen_dir / COLLECTION_FILE
    postings_path = gen_dir / POSTINGS_FILE
    if not collection_path.exists():
        raise _ComponentFailure("collection", "collection.jsonl is missing")
    if not postings_path.exists():
        raise _ComponentFailure("postings", "postings.bin is missing")
    collection_data = _read_file(collection_path, "persist.read_collection")
    postings_data = _read_file(postings_path, "persist.read_postings")

    checksums = manifest.get("checksums")
    if checksums:
        for name, data in (
            (COLLECTION_FILE, collection_data),
            (POSTINGS_FILE, postings_data),
        ):
            expected = checksums.get(name)
            if expected is None:
                raise _ComponentFailure(
                    "manifest", f"no checksum recorded for {name}"
                )
            actual = _sha256(data)
            if actual != expected:
                component = (
                    "collection" if name == COLLECTION_FILE else "postings"
                )
                raise _ComponentFailure(
                    component,
                    f"checksum mismatch for {name}: manifest says "
                    f"{expected[:12]}…, file hashes to {actual[:12]}…",
                )

    collection = _parse_collection(collection_data, manifest)
    searcher = SetSimilaritySearcher(
        collection,
        with_id_lists=manifest["with_id_lists"],
        with_skip_lists=manifest["with_skip_lists"],
        with_hash_index=manifest["with_hash_index"],
    )
    _verify_postings(searcher, postings_data, manifest)
    return searcher


def _parse_collection(data: bytes, manifest: Dict[str, Any]) -> SetCollection:
    collection = SetCollection()
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise _ComponentFailure(
            "collection", f"collection.jsonl is not UTF-8: {exc}"
        ) from None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            tokens = []
            for token, count in record["counts"].items():
                tokens.extend([token] * count)
            collection.add(tokens, payload=record["payload"])
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            raise _ComponentFailure(
                "collection", f"line {lineno} does not parse: {exc}"
            ) from None
    collection.freeze()
    if len(collection) != manifest["num_sets"]:
        raise _ComponentFailure(
            "collection",
            f"holds {len(collection)} sets, manifest says "
            f"{manifest['num_sets']}",
        )
    return collection


def _verify_postings(
    searcher: SetSimilaritySearcher, data: bytes, manifest: Dict[str, Any]
) -> None:
    try:
        _verify_postings_inner(searcher, data, manifest)
    except (struct.error, UnicodeDecodeError, IndexError) as exc:
        # Corrupted framing: counts or token bytes no longer parse.
        raise _ComponentFailure(
            "postings", f"postings.bin is corrupt: {exc}"
        ) from None


def _verify_postings_inner(
    searcher: SetSimilaritySearcher, data: bytes, manifest: Dict[str, Any]
) -> None:
    offset = 0
    tokens_seen = 0
    postings_seen = 0
    index = searcher.index
    while offset < len(data):
        (token_len,) = _COUNT.unpack_from(data, offset)
        offset += _COUNT.size
        token = data[offset : offset + token_len].decode("utf-8")
        if len(token.encode("utf-8")) != token_len:
            raise _ComponentFailure(
                "postings", f"truncated token frame at offset {offset}"
            )
        offset += token_len
        (count,) = _COUNT.unpack_from(data, offset)
        offset += _COUNT.size
        cursor = index.cursor(token)
        if cursor is None:
            raise _ComponentFailure(
                "postings", f"stored token {token!r} missing from rebuilt index"
            )
        for _ in range(count):
            length, set_id = _POSTING.unpack_from(data, offset)
            offset += _POSTING.size
            if cursor.exhausted():
                raise _ComponentFailure(
                    "postings",
                    f"list for {token!r} shorter than stored postings",
                )
            got_length, got_id = cursor.next()
            if got_id != set_id or abs(got_length - length) > 1e-9:
                raise _ComponentFailure(
                    "postings",
                    f"posting mismatch for {token!r}: stored "
                    f"({length}, {set_id}), rebuilt ({got_length}, {got_id})",
                )
        if not cursor.exhausted():
            raise _ComponentFailure(
                "postings", f"list for {token!r} longer than stored postings"
            )
        tokens_seen += 1
        postings_seen += count
    if tokens_seen != manifest["num_tokens"]:
        raise _ComponentFailure(
            "postings",
            f"holds {tokens_seen} tokens, manifest says "
            f"{manifest['num_tokens']}",
        )
    if postings_seen != manifest["num_postings"]:
        raise _ComponentFailure(
            "postings",
            f"holds {postings_seen} postings, manifest says "
            f"{manifest['num_postings']}",
        )
