"""On-disk persistence for collections and inverted indexes.

The paper's indexes are disk resident and built once; this module gives the
library the matching lifecycle: build, :func:`save_searcher`, ship, and
:func:`load_searcher` without re-tokenizing or re-sorting.

Format (a directory):

* ``manifest.json`` — format version, component flags, counts, checksums;
* ``collection.jsonl`` — one JSON object per set, in id order:
  ``{"tokens": [...], "counts": {...}, "payload": ...}`` (payloads must be
  JSON-serializable; anything else raises at save time);
* ``postings.bin`` — for each token (sorted), the weight-ordered postings
  as little-endian ``(float64 length, uint64 id)`` pairs, preceded by a
  length-prefixed UTF-8 token and a ``uint32`` posting count.

Loading reconstructs the :class:`~repro.core.search.SetSimilaritySearcher`
and verifies the stored postings against the loaded collection's lengths —
a corrupted or mismatched file fails loudly with :class:`StorageError`
instead of silently returning wrong scores.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Any, Dict

from ..core.collection import SetCollection
from ..core.errors import StorageError
from ..core.search import SetSimilaritySearcher

FORMAT_VERSION = 1
_POSTING = struct.Struct("<dQ")
_COUNT = struct.Struct("<I")


def save_searcher(searcher: SetSimilaritySearcher, path) -> Dict[str, Any]:
    """Persist a searcher's collection and index to a directory.

    Returns the manifest that was written.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)

    collection = searcher.collection
    with open(directory / "collection.jsonl", "w", encoding="utf-8") as fh:
        for rec in collection:
            try:
                line = json.dumps(
                    {
                        "tokens": sorted(rec.tokens),
                        "counts": rec.counts,
                        "payload": rec.payload,
                    },
                    ensure_ascii=False,
                )
            except TypeError as exc:
                raise StorageError(
                    f"payload of set {rec.set_id} is not JSON-serializable: "
                    f"{exc}"
                ) from None
            fh.write(line + "\n")

    index = searcher.index
    num_postings = 0
    with open(directory / "postings.bin", "wb") as fh:
        for token in sorted(index.tokens()):
            encoded = token.encode("utf-8")
            fh.write(_COUNT.pack(len(encoded)))
            fh.write(encoded)
            cursor = index.cursor(token)
            entries = []
            while not cursor.exhausted():
                entries.append(cursor.next())
            fh.write(_COUNT.pack(len(entries)))
            for length, set_id in entries:
                fh.write(_POSTING.pack(length, set_id))
            num_postings += len(entries)

    manifest = {
        "format_version": FORMAT_VERSION,
        "num_sets": len(collection),
        "num_tokens": len(list(index.tokens())),
        "num_postings": num_postings,
        "with_id_lists": index.with_id_lists,
        "with_skip_lists": index.with_skip_lists,
        "with_hash_index": index.with_hash_index,
    }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return manifest


def load_searcher(path) -> SetSimilaritySearcher:
    """Load a searcher persisted by :func:`save_searcher`.

    The collection is restored exactly (ids, counts, payloads); the index
    is rebuilt from the collection and then *verified* posting-by-posting
    against ``postings.bin`` — any drift (corruption, version skew, edited
    files) raises :class:`StorageError`.
    """
    directory = Path(path)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise StorageError(f"no manifest.json under {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported format version {manifest.get('format_version')!r}"
        )

    collection = SetCollection()
    with open(directory / "collection.jsonl", encoding="utf-8") as fh:
        for line in fh:
            record = json.loads(line)
            tokens = []
            for token, count in record["counts"].items():
                tokens.extend([token] * count)
            collection.add(tokens, payload=record["payload"])
    collection.freeze()
    if len(collection) != manifest["num_sets"]:
        raise StorageError(
            f"collection.jsonl holds {len(collection)} sets, manifest says "
            f"{manifest['num_sets']}"
        )

    searcher = SetSimilaritySearcher(
        collection,
        with_id_lists=manifest["with_id_lists"],
        with_skip_lists=manifest["with_skip_lists"],
        with_hash_index=manifest["with_hash_index"],
    )
    _verify_postings(searcher, directory / "postings.bin", manifest)
    return searcher


def _verify_postings(
    searcher: SetSimilaritySearcher, path: Path, manifest: Dict[str, Any]
) -> None:
    try:
        _verify_postings_inner(searcher, path, manifest)
    except (struct.error, UnicodeDecodeError, IndexError) as exc:
        # Corrupted framing: counts or token bytes no longer parse.
        raise StorageError(f"postings.bin is corrupt: {exc}") from None


def _verify_postings_inner(
    searcher: SetSimilaritySearcher, path: Path, manifest: Dict[str, Any]
) -> None:
    data = path.read_bytes()
    offset = 0
    tokens_seen = 0
    postings_seen = 0
    index = searcher.index
    while offset < len(data):
        (token_len,) = _COUNT.unpack_from(data, offset)
        offset += _COUNT.size
        token = data[offset : offset + token_len].decode("utf-8")
        offset += token_len
        (count,) = _COUNT.unpack_from(data, offset)
        offset += _COUNT.size
        cursor = index.cursor(token)
        if cursor is None:
            raise StorageError(
                f"stored token {token!r} missing from rebuilt index"
            )
        for _ in range(count):
            length, set_id = _POSTING.unpack_from(data, offset)
            offset += _POSTING.size
            if cursor.exhausted():
                raise StorageError(
                    f"list for {token!r} shorter than stored postings"
                )
            got_length, got_id = cursor.next()
            if got_id != set_id or abs(got_length - length) > 1e-9:
                raise StorageError(
                    f"posting mismatch for {token!r}: stored "
                    f"({length}, {set_id}), rebuilt ({got_length}, {got_id})"
                )
        if not cursor.exhausted():
            raise StorageError(
                f"list for {token!r} longer than stored postings"
            )
        tokens_seen += 1
        postings_seen += count
    if tokens_seen != manifest["num_tokens"]:
        raise StorageError(
            f"postings.bin holds {tokens_seen} tokens, manifest says "
            f"{manifest['num_tokens']}"
        )
    if postings_seen != manifest["num_postings"]:
        raise StorageError(
            f"postings.bin holds {postings_seen} postings, manifest says "
            f"{manifest['num_postings']}"
        )
