"""Append-only operations log — durable inserts for the updatable searcher.

:class:`~repro.core.updatable.UpdatableSearcher` keeps every version in
memory; a crash loses all inserts since construction.  This module adds
the standard write-ahead fix:

* :class:`OperationsLog` — a JSONL file where every record carries a
  CRC-32 of its payload and is fsynced on append.  Replay verifies each
  record and *truncates at the first torn or corrupt one* (a crash
  mid-append must not poison the log — everything before the tear
  replays, everything after is dropped and reported).
* :class:`DurableUpdatableSearcher` — an :class:`UpdatableSearcher`
  that logs every set to an operations log **before** applying it in
  memory, and replays the log on construction.  ``compact()`` rewrites
  the log atomically (temp file + ``os.replace``) from live state,
  dropping torn tails and bounding file growth.

Fault points: ``storage.oplog_append`` and ``storage.oplog_replay``
(see :mod:`repro.faults`).
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.errors import StorageError
from ..core.updatable import UpdatableSearcher
from ..faults import runtime as faults_runtime

__all__ = ["OperationsLog", "DurableUpdatableSearcher"]


def _frame(op: Dict[str, Any]) -> bytes:
    try:
        payload = json.dumps(op, ensure_ascii=False, sort_keys=True)
    except TypeError as exc:
        raise StorageError(
            f"operation is not JSON-serializable: {exc}"
        ) from None
    body = payload.encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(body) & 0xFFFFFFFF, body)


def _parse_line(line: bytes) -> Optional[Dict[str, Any]]:
    """Decode one framed record; None when the frame fails verification."""
    if b" " not in line:
        return None
    crc_hex, _, body = line.partition(b" ")
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        return None
    if (zlib.crc32(body) & 0xFFFFFFFF) != expected:
        return None
    try:
        op = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return op if isinstance(op, dict) else None


class OperationsLog:
    """CRC-framed, fsynced, append-only JSONL log with tolerant replay."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, op: Dict[str, Any]) -> None:
        """Durably append one operation (fsync before returning)."""
        faults_runtime.maybe_fire("storage.oplog_append")
        data = faults_runtime.maybe_mangle("storage.oplog_append", _frame(op))
        with open(self.path, "ab") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    def replay(self) -> Tuple[List[Dict[str, Any]], int]:
        """All verified operations, plus how many records were dropped.

        Replay stops at the first record that fails its CRC or does not
        parse — by construction everything after a torn append is
        suspect — so the return is ``(intact_prefix, dropped_count)``.
        """
        if not self.path.exists():
            return [], 0
        faults_runtime.maybe_fire("storage.oplog_replay")
        data = faults_runtime.maybe_mangle(
            "storage.oplog_replay", self.path.read_bytes()
        )
        ops: List[Dict[str, Any]] = []
        lines = data.split(b"\n")
        # A well-formed log ends with a newline, so the final split
        # element is empty; anything else is a torn tail.
        dropped = 0
        for i, line in enumerate(lines):
            if not line:
                continue
            op = _parse_line(line)
            if op is None:
                dropped = sum(1 for rest in lines[i:] if rest)
                break
            ops.append(op)
        return ops, dropped

    def compact(self, ops: Sequence[Dict[str, Any]]) -> None:
        """Atomically rewrite the log to exactly ``ops``."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as fh:
            for op in ops:
                fh.write(_frame(op))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def size_bytes(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0


class DurableUpdatableSearcher(UpdatableSearcher):
    """An updatable searcher whose inserts survive a crash.

    Every set — the initial ones included — is framed into the
    operations log under ``directory`` before it is applied, so
    reconstructing with the same directory replays the full state::

        s = DurableUpdatableSearcher(tmp)      # fresh
        s.add(["a", "b"])                      # logged, then applied
        s2 = DurableUpdatableSearcher(tmp)     # replays: len(s2) == 1

    ``replayed`` / ``dropped`` report what construction found; a torn
    tail (crash mid-append) is dropped and compacted away.
    """

    def __init__(
        self,
        directory,
        initial_sets: Optional[Sequence[Sequence[str]]] = None,
        payloads: Optional[Sequence[Any]] = None,
        auto_rebuild_fraction: float = 0.25,
        log_name: str = "oplog.jsonl",
    ) -> None:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.log = OperationsLog(directory / log_name)

        replayed_ops, self.dropped = self.log.replay()
        self.replayed = len(replayed_ops)
        if replayed_ops and initial_sets:
            raise StorageError(
                "directory already holds an operations log; "
                "initial_sets would double-apply (pass one or the other)"
            )

        tokens: List[Sequence[str]] = []
        their_payloads: List[Any] = []
        if replayed_ops:
            for op in replayed_ops:
                if op.get("kind") != "add":
                    raise StorageError(
                        f"operations log holds unknown op kind "
                        f"{op.get('kind')!r}"
                    )
                tokens.append(op["tokens"])
                their_payloads.append(op.get("payload"))
        elif initial_sets:
            tokens = list(initial_sets)
            their_payloads = (
                list(payloads)
                if payloads is not None
                else [None] * len(tokens)
            )

        super().__init__(
            initial_sets=tokens,
            payloads=their_payloads,
            auto_rebuild_fraction=auto_rebuild_fraction,
        )

        if not replayed_ops and tokens:
            # Fresh log: frame the initial sets so a reload needs
            # nothing but the directory.
            for toks, payload in zip(tokens, their_payloads):
                self.log.append(self._op(toks, payload))
        elif self.dropped:
            self.compact()

    @staticmethod
    def _op(tokens: Sequence[str], payload: Any) -> Dict[str, Any]:
        return {"kind": "add", "tokens": list(tokens), "payload": payload}

    def add(self, tokens: Sequence[str], payload: Any = None) -> int:
        """Durably insert one set: logged (fsynced) before it is applied,
        so a crash between the two replays the insert instead of losing
        it, and a failed append leaves memory unchanged."""
        self.log.append(self._op(tokens, payload))
        return super().add(tokens, payload)

    def compact(self) -> int:
        """Rewrite the log from live state; returns the record count."""
        ops = [
            self._op(toks, payload)
            for toks, payload in zip(self._all_tokens, self._all_payloads)
        ]
        self.log.compact(ops)
        return len(ops)
