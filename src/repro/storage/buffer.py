"""LRU buffer pool simulation — re-charging repeat page reads as hits.

Section VIII-A: "we leave caching up to the operating system and the disk
drive, disabling all other software buffers.  More aggressive buffering will
certainly favor TA and iTA."  The base :class:`~repro.storage.pages.IOStats`
ledger models that cold setting: every page touch is billed.  This module
provides the aggressive-buffering counterpart so the remark can be measured
(``benchmarks/bench_ablation_buffering.py``):

:class:`BufferedIOStats` is a drop-in ``IOStats`` holding an LRU pool of
page identities.  Each page charge carries a ``key`` (``(structure identity,
page identity)``, threaded through by every storage component); a key found
in the pool is a *hit* — counted, but not billed as I/O.  Keyless charges
(e.g. synthetic charges in tests) always miss.

TA-style algorithms re-probe the same extendible-hash buckets constantly,
so even a small pool absorbs most of their random I/O — exactly the paper's
prediction.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.errors import ConfigurationError
from ..faults import runtime as faults_runtime
from .pages import IOStats

__all__ = ["LRUBufferPool", "BufferedIOStats"]


class LRUBufferPool:
    """Fixed-capacity LRU set of page identities."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("buffer pool capacity must be >= 1")
        self.capacity = capacity
        self._pages: OrderedDict = OrderedDict()

    def access(self, key) -> bool:
        """Touch a page; returns True on a hit, False on a miss (the page
        is then admitted, evicting the least recently used if full)."""
        if key in self._pages:
            self._pages.move_to_end(key)
            return True
        self._pages[key] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
        return False

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key) -> bool:
        return key in self._pages

    def clear(self) -> None:
        self._pages.clear()

    def __repr__(self) -> str:
        return f"LRUBufferPool(used={len(self)}/{self.capacity})"


class BufferedIOStats(IOStats):
    """An I/O ledger with an LRU buffer pool in front of the page charges.

    ``buffer_hits`` counts absorbed page reads.  Element, probe, skip-jump
    and candidate-scan charges are unaffected (they model CPU work, not
    I/O).
    """

    __slots__ = ("pool", "buffer_hits")

    COUNTER_FIELDS = IOStats.COUNTER_FIELDS + ("buffer_hits",)

    def __init__(self, capacity: int) -> None:
        super().__init__()
        self.pool = LRUBufferPool(capacity)
        self.buffer_hits = 0

    def reset(self) -> None:
        super().reset()
        # During __init__ the pool does not exist yet.
        if hasattr(self, "pool"):
            self.pool.clear()
            self.buffer_hits = 0
        else:
            self.buffer_hits = 0

    def charge_sequential_page(self, pages: int = 1, key=None) -> None:
        if key is not None and self.pool.access(key):
            self.buffer_hits += pages
            return
        # Pool hits never touch disk; only the miss path can fault.
        faults_runtime.maybe_fire("storage.buffer_miss")
        super().charge_sequential_page(pages)

    def charge_random_page(self, pages: int = 1, key=None) -> None:
        if key is not None and self.pool.access(key):
            self.buffer_hits += pages
            return
        faults_runtime.maybe_fire("storage.buffer_miss")
        super().charge_random_page(pages)

    def __repr__(self) -> str:
        return (
            f"BufferedIOStats(seq={self.sequential_pages}, "
            f"rand={self.random_pages}, hits={self.buffer_hits}, "
            f"pool={len(self.pool)}/{self.pool.capacity})"
        )
