"""B+-tree with range scans — the clustered composite index of the SQL baseline.

The paper's relational approach stores the q-gram table in a clustered
composite B-tree on ``(gram, length, id, weight)`` and evaluates a selection
with one index seek + range scan per query token, pushing the Theorem 1
length predicate into the scan range.  This module implements a bulk-loaded
B+-tree over arbitrary comparable keys with:

* ``seek(key)`` — descend from the root (one random page I/O per level
  below the cached root);
* ``range_scan(lo, hi)`` — seek to ``lo`` then walk the leaf chain
  sequentially, charging one sequential page read per leaf visited;
* byte-accurate-enough size modelling for Figure 5.

Keys must be inserted in sorted order via :meth:`bulk_load` (the natural way
to build a clustered index); point inserts are supported for completeness
but keep the tree balanced by splitting.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import StorageError
from .pages import IOStats

KEY_BYTES = 24  # modelled composite key size (gram + length + id)
VALUE_BYTES = 8
POINTER_BYTES = 8


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.next: Optional["_Leaf"] = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] covers keys < keys[i]; children[-1] covers the rest.
        self.keys: List[Any] = []
        self.children: List[Any] = []


class BPlusTree:
    """Bulk-loadable B+-tree with leaf-chained range scans."""

    def __init__(self, order: int = 64) -> None:
        if order < 4:
            raise StorageError("order must be >= 4")
        self.order = order
        self._root: Any = _Leaf()
        self._height = 1
        self._num_entries = 0
        self._num_leaves = 1
        self._num_inner = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        items: Sequence[Tuple[Any, Any]],
        order: int = 64,
        fill: float = 0.8,
    ) -> "BPlusTree":
        """Build from key-sorted ``(key, value)`` pairs at the given fill
        factor (clustered indexes are typically built ~80 % full)."""
        tree = cls(order=order)
        if not items:
            return tree
        for i in range(1, len(items)):
            if items[i - 1][0] > items[i][0]:
                raise StorageError(
                    f"bulk_load requires sorted keys; violation at {i}"
                )
        per_leaf = max(2, int(order * fill))
        leaves: List[_Leaf] = []
        for start in range(0, len(items), per_leaf):
            leaf = _Leaf()
            chunk = items[start : start + per_leaf]
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        tree._num_entries = len(items)
        tree._num_leaves = len(leaves)
        # Build inner levels bottom-up.
        level: List[Any] = leaves
        separators = [leaf.keys[0] for leaf in leaves]
        height = 1
        while len(level) > 1:
            per_node = max(2, int(order * fill))
            next_level: List[_Inner] = []
            next_separators: List[Any] = []
            for start in range(0, len(level), per_node):
                node = _Inner()
                node.children = level[start : start + per_node]
                node.keys = separators[start + 1 : start + len(node.children)]
                next_level.append(node)
                next_separators.append(separators[start])
                tree._num_inner += 1
            level = next_level
            separators = next_separators
            height += 1
        tree._root = level[0]
        tree._height = height
        return tree

    def insert(self, key: Any, value: Any) -> None:
        """Point insert with node splitting (provided for completeness;
        index builds should use :meth:`bulk_load`)."""
        result = self._insert(self._root, key, value)
        if result is not None:
            sep, right = result
            new_root = _Inner()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
            self._num_inner += 1
        self._num_entries += 1

    def _insert(self, node: Any, key: Any, value: Any):
        if isinstance(node, _Leaf):
            pos = bisect.bisect_left(node.keys, key)
            node.keys.insert(pos, key)
            node.values.insert(pos, value)
            if len(node.keys) <= self.order:
                return None
            mid = len(node.keys) // 2
            right = _Leaf()
            right.keys = node.keys[mid:]
            right.values = node.values[mid:]
            right.next = node.next
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            node.next = right
            self._num_leaves += 1
            return right.keys[0], right
        pos = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[pos], key, value)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(pos, sep)
        node.children.insert(pos + 1, right)
        if len(node.children) <= self.order:
            return None
        mid = len(node.children) // 2
        new_inner = _Inner()
        new_inner.keys = node.keys[mid:]
        new_inner.children = node.children[mid:]
        push = node.keys[mid - 1]
        node.keys = node.keys[: mid - 1]
        node.children = node.children[:mid]
        self._num_inner += 1
        return push, new_inner

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _descend(self, key: Any, stats: Optional[IOStats]) -> Tuple[_Leaf, int]:
        """Find the leaf and slot of the first entry >= key.

        Charges one random page per level below the root (the root is
        assumed cached, as is standard for hot clustered indexes).
        """
        node = self._root
        while isinstance(node, _Inner):
            pos = bisect.bisect_right(node.keys, key)
            child = node.children[pos]
            if stats is not None:
                stats.charge_random_page(key=(id(self), id(child)))
            node = child
        slot = bisect.bisect_left(node.keys, key)
        return node, slot

    def seek(self, key: Any, stats: Optional[IOStats] = None) -> Optional[Any]:
        """Exact lookup; returns the value or None."""
        leaf, slot = self._descend(key, stats)
        if slot < len(leaf.keys) and leaf.keys[slot] == key:
            return leaf.values[slot]
        return None

    def range_scan(
        self,
        lo: Any,
        hi: Any,
        stats: Optional[IOStats] = None,
        inclusive: bool = True,
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` for keys in ``[lo, hi]`` (or ``[lo, hi)``).

        One random I/O per level for the initial descent, then one
        sequential page per leaf visited, one element charge per entry
        yielded — the exact cost model of a clustered index range scan.
        """
        leaf, slot = self._descend(lo, stats)
        first_leaf = True
        while leaf is not None:
            if stats is not None:
                stats.charge_sequential_page(key=(id(self), id(leaf)))
            keys = leaf.keys
            start = slot if first_leaf else 0
            for i in range(start, len(keys)):
                k = keys[i]
                if (k > hi) if inclusive else (k >= hi):
                    return
                if stats is not None:
                    stats.charge_element()
                yield k, leaf.values[i]
            leaf = leaf.next
            first_leaf = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_entries

    @property
    def height(self) -> int:
        return self._height

    @property
    def num_leaves(self) -> int:
        return self._num_leaves

    def size_bytes(self) -> int:
        """Modelled size: leaf entries + inner separators and pointers,
        rounded up to whole nodes at the build fill factor."""
        leaf_bytes = self._num_leaves * self.order * (KEY_BYTES + VALUE_BYTES)
        inner_bytes = self._num_inner * self.order * (KEY_BYTES + POINTER_BYTES)
        return leaf_bytes + inner_bytes

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All entries in key order, without I/O accounting."""
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def __repr__(self) -> str:
        return (
            f"BPlusTree(n={self._num_entries}, height={self._height}, "
            f"leaves={self._num_leaves})"
        )
