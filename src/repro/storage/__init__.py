"""Simulated disk-resident index structures with I/O accounting."""

from .btree import BPlusTree
from .exthash import ExtendibleHash
from .invlist import (
    IdOrderCursor,
    InvertedIndex,
    TokenPostings,
    WeightOrderCursor,
)
from .pages import IOStats, PagedFile, SequentialCursor, bytes_human
from .skiplist import SkipList

__all__ = [
    "BPlusTree",
    "ExtendibleHash",
    "IdOrderCursor",
    "InvertedIndex",
    "TokenPostings",
    "WeightOrderCursor",
    "IOStats",
    "PagedFile",
    "SequentialCursor",
    "bytes_human",
    "SkipList",
]
