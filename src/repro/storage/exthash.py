"""Extendible hashing: the secondary index on set ids used by TA-style search.

TA completes a candidate's score with *random accesses*: for every element
popped from one list it must determine, for each other list, whether the set
appears there and with what contribution.  The paper uses extendible hashing
for this because it answers a containment probe with **at most one random
page I/O in the worst case** (the directory is assumed memory resident; the
bucket read is the single I/O).  Figure 5 shows the price: the hash indexes
dominate index size.

This is a faithful implementation of the classic scheme: a directory of
``2^global_depth`` bucket pointers; buckets carry a local depth and split on
overflow, doubling the directory only when a bucket's local depth reaches the
global depth.  Keys are integer set ids, values arbitrary (here: normalized
lengths / contributions).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..core.errors import StorageError
from .pages import IOStats

ENTRY_BYTES = 16  # 8-byte id + 8-byte value
POINTER_BYTES = 8


def _hash(key: int) -> int:
    """Deterministic integer mix (Fibonacci hashing) for directory lookup."""
    return (key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF


class _Bucket:
    __slots__ = ("local_depth", "entries")

    def __init__(self, local_depth: int) -> None:
        self.local_depth = local_depth
        self.entries: dict = {}


class ExtendibleHash:
    """Extendible hash table of int keys with one-random-I/O probes.

    Parameters
    ----------
    bucket_capacity:
        Entries per bucket; the paper found ~1 KB pages best after tuning,
        which at 16-byte entries is a capacity of 64.
    """

    def __init__(self, bucket_capacity: int = 64) -> None:
        if bucket_capacity < 1:
            raise StorageError("bucket_capacity must be >= 1")
        self.bucket_capacity = bucket_capacity
        # Start with a single bucket (depth 0): per-token hash indexes over
        # short postings lists stay one page until they actually overflow.
        self.global_depth = 0
        self._directory: List[_Bucket] = [_Bucket(0)]
        self._num_entries = 0

    # ------------------------------------------------------------------
    def _dir_index(self, key: int) -> int:
        return _hash(key) & ((1 << self.global_depth) - 1)

    def _bucket_for(self, key: int) -> _Bucket:
        return self._directory[self._dir_index(key)]

    def insert(self, key: int, value: Any) -> None:
        """Insert or overwrite; splits buckets (and doubles the directory)
        as needed."""
        while True:
            bucket = self._bucket_for(key)
            if key in bucket.entries:
                bucket.entries[key] = value
                return
            if len(bucket.entries) < self.bucket_capacity:
                bucket.entries[key] = value
                self._num_entries += 1
                return
            self._split(bucket)

    def _split(self, bucket: _Bucket) -> None:
        if bucket.local_depth == self.global_depth:
            # Double the directory: each existing pointer is duplicated.
            self._directory = self._directory + list(self._directory)
            self.global_depth += 1
        new_depth = bucket.local_depth + 1
        low = _Bucket(new_depth)
        high = _Bucket(new_depth)
        mask_bit = 1 << bucket.local_depth
        for key, value in bucket.entries.items():
            target = high if _hash(key) & mask_bit else low
            target.entries[key] = value
        for i, b in enumerate(self._directory):
            if b is bucket:
                self._directory[i] = high if i & mask_bit else low

    # ------------------------------------------------------------------
    def probe(
        self, key: int, stats: Optional[IOStats] = None
    ) -> Tuple[bool, Any]:
        """Membership + value lookup: exactly one random page I/O.

        Returns ``(found, value_or_None)``.
        """
        bucket = self._bucket_for(key)
        if stats is not None:
            stats.charge_random_page(key=(id(self), id(bucket)))
            stats.charge_hash_probe()
        if key in bucket.entries:
            return True, bucket.entries[key]
        return False, None

    def get(self, key: int, stats: Optional[IOStats] = None) -> Any:
        found, value = self.probe(key, stats)
        if not found:
            raise KeyError(key)
        return value

    def __contains__(self, key: int) -> bool:
        return self._bucket_for(key).entries.__contains__(key)

    def __len__(self) -> int:
        return self._num_entries

    # ------------------------------------------------------------------
    def buckets(self) -> Iterator[_Bucket]:
        seen = set()
        for b in self._directory:
            if id(b) not in seen:
                seen.add(id(b))
                yield b

    @property
    def num_buckets(self) -> int:
        return sum(1 for _ in self.buckets())

    def size_bytes(self) -> int:
        """Modelled size: directory pointers + full bucket pages.

        Buckets are charged at full capacity (a disk bucket occupies a whole
        page whether or not it is full), which is what makes extendible
        hashing the dominant space cost in Figure 5.
        """
        directory = len(self._directory) * POINTER_BYTES
        buckets = self.num_buckets * self.bucket_capacity * ENTRY_BYTES
        return directory + buckets

    def load_factor(self) -> float:
        cap = self.num_buckets * self.bucket_capacity
        return self._num_entries / cap if cap else 0.0

    def __repr__(self) -> str:
        return (
            f"ExtendibleHash(n={self._num_entries}, "
            f"global_depth={self.global_depth}, buckets={self.num_buckets})"
        )
