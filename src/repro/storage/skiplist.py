"""Skip list over a sorted sequence of keys, used for length seeking.

The paper attaches a skip list to every weight-sorted inverted list so that
algorithms employing Length Boundedness can jump straight to the first entry
with normalized length ``>= tau * len(q)`` instead of sequentially scanning
and discarding a (potentially huge) prefix — Figure 9 measures exactly this
effect.

The structure here is a *static* skip list built once over the list's
``(length, set_id)`` keys.  Tower heights are deterministic (the number of
trailing one-bits of the element's ordinal), which gives the classic
``O(log n)`` search cost without requiring a random source, keeps rebuilds
reproducible, and matches the balanced shape a bulk-loaded disk skip list
would have.  Searches charge one ``skip_jump`` per node visited, and the
final landing charges one random page read on the target cursor (performed
by the caller via ``SequentialCursor.jump``).

The paper caps skip lists at 10 MB per inverted list; :class:`SkipList`
accepts a ``max_bytes`` budget and thins its towers (keeping only every k-th
tower) when the full structure would exceed it.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from ..contracts import CHECKS, ContractViolation
from ..core.errors import StorageError
from .pages import IOStats

KEY_BYTES = 16  # modelled on-disk size of one (length, id) key
POINTER_BYTES = 8


def _tower_height(ordinal: int) -> int:
    """Deterministic tower height: trailing one-bits of ``ordinal`` + 1.

    Element 0 gets height 1, element 1 height 2, element 3 height 3, ... —
    the same geometric height distribution a coin-flip skip list converges
    to, but reproducible.
    """
    height = 1
    while ordinal & 1:
        height += 1
        ordinal >>= 1
    return height


class SkipList:
    """Static skip index over sorted ``(length, set_id)`` keys.

    ``seek_ge(key)`` returns the position (index into the underlying list)
    of the first entry whose key is ``>= key``, or ``len`` if none.
    """

    def __init__(
        self,
        keys: Sequence[Tuple[float, int]],
        max_bytes: Optional[int] = None,
        stride: int = 1,
    ) -> None:
        if stride < 1:
            raise StorageError("stride must be >= 1")
        for i in range(1, len(keys)):
            if keys[i - 1] > keys[i]:
                raise StorageError(
                    f"keys must be sorted; violation at position {i}"
                )
        self._n = len(keys)
        self._stride = stride
        # Thin to satisfy the byte budget: keep every stride-th key.
        if max_bytes is not None:
            while self._estimate_bytes(len(keys), stride) > max_bytes and (
                len(keys) // stride
            ) > 1:
                stride *= 2
            self._stride = stride
        self._positions: List[int] = list(range(0, len(keys), self._stride))
        self._keys: List[Tuple[float, int]] = [keys[p] for p in self._positions]
        # levels[h] holds indices (into self._keys) of towers of height > h.
        self._levels: List[List[int]] = []
        if self._keys:
            max_h = max(_tower_height(i) for i in range(len(self._keys)))
            self._levels = [[] for _ in range(max_h)]
            for i in range(len(self._keys)):
                for h in range(_tower_height(i)):
                    self._levels[h].append(i)

    # ------------------------------------------------------------------
    @staticmethod
    def _estimate_bytes(n_keys: int, stride: int) -> int:
        kept = max(1, n_keys // stride)
        # Each kept key stores the key itself plus ~2 pointers on average
        # (geometric tower heights sum to < 2 per node).
        return kept * (KEY_BYTES + 2 * POINTER_BYTES)

    def size_bytes(self) -> int:
        """Modelled on-disk size of the skip structure."""
        towers = sum(len(level) for level in self._levels)
        return len(self._keys) * KEY_BYTES + towers * POINTER_BYTES

    def __len__(self) -> int:
        return self._n

    @property
    def stride(self) -> int:
        return self._stride

    # ------------------------------------------------------------------
    def seek_ge(
        self, key: Tuple[float, int], stats: Optional[IOStats] = None
    ) -> int:
        """Position of the first underlying entry with key ``>= key``.

        Descends the tower levels from the top, charging one skip jump per
        node visited.  Because the structure may be thinned (stride > 1),
        the returned position is a *lower bound*: the true first matching
        entry lies at or after it, and the caller finishes with a short
        sequential scan — exactly how a capped disk skip list behaves.
        """
        if not self._keys:
            return 0
        # Start before the first kept key; at each level walk right while the
        # next tower's key is still below the target, then drop a level.
        idx = -1
        for level in reversed(self._levels):
            j = bisect.bisect_right(level, idx)
            while j < len(level):
                tower = level[j]
                if stats is not None:
                    stats.charge_skip_jump()
                if self._keys[tower] < key:
                    idx = tower
                    j += 1
                else:
                    break
        # idx is the last kept key < target (or -1).  The first entry that
        # can be >= target sits right after it; with stride 1 this is exact,
        # with thinning it is a conservative lower bound.
        if idx < 0:
            return 0
        # CHECKS.enabled read inline: seek_ge is hot and must stay free
        # of function-call overhead when contracts are disarmed.
        if CHECKS.enabled and not self._keys[idx] < key:
            raise ContractViolation(
                "length-boundedness",
                f"skip descent for {key!r} stopped on tower key "
                f"{self._keys[idx]!r}, which is not strictly below the "
                "target; seek_ge would overshoot the window boundary",
            )
        return min(self._positions[idx] + 1, self._n)

    def min_key(self) -> Optional[Tuple[float, int]]:
        return self._keys[0] if self._keys else None

    def __repr__(self) -> str:
        return (
            f"SkipList(n={self._n}, stride={self._stride}, "
            f"levels={len(self._levels)})"
        )
