"""Inverted-list index over token sets — the specialized index of Section III-B.

For every token the index keeps:

* a **weight-ordered list** of postings ``(len(s), id(s))`` sorted by
  increasing ``(length, id)``.  Since ``len(q)`` and ``idf(token)`` are
  constant within a list, increasing length order *is* decreasing
  contribution (``w_i``) order — the order TA/NRA-style algorithms need;
* optionally an **id-ordered list** ``(id(s), len(s))`` for the sort-by-id
  multiway merge baseline;
* optionally a :class:`~repro.storage.skiplist.SkipList` over the weight
  order, so Length Boundedness can seek to ``len >= tau*len(q)`` directly;
* optionally an :class:`~repro.storage.exthash.ExtendibleHash` from set id
  to length, giving TA its one-random-I/O containment probes.

All access paths charge a shared :class:`~repro.storage.pages.IOStats`
ledger, which is how the benchmarks measure pruning power and I/O without
trusting CPython wall-clock (see the module docstring of
:mod:`repro.storage.pages`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..contracts import (
    CHECKS,
    ContractViolation,
    check_order_preservation,
    invariants_enabled,
)
from ..core.collection import SetCollection
from ..core.errors import IndexNotBuiltError
from ..faults import runtime as faults_runtime
from ..obs import trace as obs_trace
from .exthash import ExtendibleHash
from .pages import DEFAULT_PAGE_CAPACITY, IOStats, PagedFile
from .skiplist import SkipList

POSTING_BYTES = 16  # 8-byte set id + 8-byte length
DEFAULT_SKIPLIST_MAX_BYTES = 10 * 1024 * 1024  # the paper's 10 MB cap per list
DEFAULT_SKIPLIST_STRIDE = 16
"""Sample every 16th posting into the skip structure.

A disk skip list indexes page boundaries, not individual records; a dense
skip structure would duplicate the list it indexes (and Figure 5 shows skip
lists as a *small* overhead).  A seek lands within one stride of the target
and finishes with a short sequential walk.
"""
DEFAULT_HASH_BUCKET_CAPACITY = 16


class TokenPostings:
    """All physical structures for one token's postings."""

    __slots__ = ("token", "weight_file", "id_file", "skip", "hash")

    def __init__(
        self,
        token: str,
        weight_file: PagedFile,
        id_file: Optional[PagedFile],
        skip: Optional[SkipList],
        hash_index: Optional[ExtendibleHash],
    ) -> None:
        self.token = token
        self.weight_file = weight_file
        self.id_file = id_file
        self.skip = skip
        self.hash = hash_index

    def __len__(self) -> int:
        return len(self.weight_file)


class WeightOrderCursor:
    """Forward cursor over one weight-ordered list, with length seeking.

    Entries are ``(length, set_id)`` tuples in increasing order.  The cursor
    never moves backwards.  ``seek_length_ge(lo)`` advances to the first
    entry with ``length >= lo`` — via the skip list (a few jumps plus a short
    sequential tail, since capped skip lists are thinned) when available and
    enabled, or by scanning and charging every discarded element otherwise
    (the NSL mode of Figure 9).
    """

    __slots__ = ("_postings", "_cursor", "_stats", "_use_skip")

    def __init__(
        self,
        postings: TokenPostings,
        stats: Optional[IOStats],
        use_skip_list: bool = True,
    ) -> None:
        self._postings = postings
        self._stats = stats
        self._cursor = postings.weight_file.cursor(stats)
        self._use_skip = use_skip_list and postings.skip is not None

    # ------------------------------------------------------------------
    def exhausted(self) -> bool:
        return self._cursor.exhausted()

    def peek(self) -> Tuple[float, int]:
        return self._cursor.peek()

    def next(self) -> Tuple[float, int]:
        return self._cursor.next()

    @property
    def position(self) -> int:
        return self._cursor.position

    def __len__(self) -> int:
        return len(self._postings)

    @property
    def token(self) -> str:
        return self._postings.token

    def seek_length_ge(self, lo: float) -> None:
        """Advance to the first entry with length >= lo (no-op if already
        there)."""
        if self.exhausted():
            return
        if self.peek()[0] >= lo:
            return
        tracer = obs_trace.current()
        before = self._cursor.position
        if self._use_skip:
            target = self._postings.skip.seek_ge((lo, -1), self._stats)
            if target > self._cursor.position:
                self._cursor.jump(target)
            # Thinned skip lists land at or before the true boundary;
            # finish with a short sequential walk.
            while not self.exhausted() and self.peek()[0] < lo:
                self.next()
        else:
            while not self.exhausted() and self.peek()[0] < lo:
                self.next()
        if tracer is not None:
            tracer.event(
                "list.seek",
                token=self.token,
                lo=lo,
                skipped=self._cursor.position - before,
                via="skip" if self._use_skip else "scan",
            )


class CheckedWeightOrderCursor(WeightOrderCursor):
    """A weight-order cursor that asserts Order Preservation as it reads.

    Swapped in by :meth:`InvertedIndex.cursor` while invariant checking
    is enabled (``REPRO_CHECK_INVARIANTS=1``); the plain cursor carries
    no checking cost otherwise.  Because ``(len, id)`` keys strictly
    increase along a sorted list, verifying each consumed posting
    against the previous one also certifies Magnitude Boundedness: the
    per-token contribution ``idf² / (len·len(q))`` cannot increase while
    lengths do not decrease.
    """

    __slots__ = ("_last_key",)

    def __init__(
        self,
        postings: TokenPostings,
        stats: Optional[IOStats],
        use_skip_list: bool = True,
    ) -> None:
        super().__init__(postings, stats, use_skip_list)
        self._last_key: Optional[Tuple[float, int]] = None

    def next(self) -> Tuple[float, int]:
        length, set_id = super().next()
        key = (length, set_id)
        if self._last_key is not None and key <= self._last_key:
            raise ContractViolation(
                "order-preservation",
                f"list {self.token!r} yielded {key!r} after "
                f"{self._last_key!r}; weight-ordered lists must strictly "
                "increase by (len, id)",
            )
        self._last_key = key
        return length, set_id

    def seek_length_ge(self, lo: float) -> None:
        super().seek_length_ge(lo)
        if not self.exhausted() and self.peek()[0] < lo:
            raise ContractViolation(
                "length-boundedness",
                f"seek_length_ge({lo!r}) on list {self.token!r} landed on "
                f"{self.peek()!r}; the skip structure under-seeked",
            )


class IdOrderCursor:
    """Forward cursor over one id-ordered list (entries ``(set_id, length)``)."""

    __slots__ = ("_postings", "_cursor", "token")

    def __init__(self, postings: TokenPostings, stats: Optional[IOStats]):
        if postings.id_file is None:
            raise IndexNotBuiltError(
                f"id-ordered list for token {postings.token!r} was not built"
            )
        self._postings = postings
        self.token = postings.token
        self._cursor = postings.id_file.cursor(stats)

    def exhausted(self) -> bool:
        return self._cursor.exhausted()

    def peek(self) -> Tuple[int, float]:
        return self._cursor.peek()

    def next(self) -> Tuple[int, float]:
        return self._cursor.next()

    @property
    def position(self) -> int:
        return self._cursor.position

    def __len__(self) -> int:
        return len(self._postings)


class InvertedIndex:
    """The full per-token index over a frozen :class:`SetCollection`.

    Parameters
    ----------
    with_id_lists / with_skip_lists / with_hash_index:
        Which auxiliary structures to materialize.  The benchmark harness
        builds all three once and lets individual algorithms opt out at
        query time; storage-ablation benchmarks build stripped variants.
    """

    def __init__(
        self,
        collection: SetCollection,
        with_id_lists: bool = True,
        with_skip_lists: bool = True,
        with_hash_index: bool = True,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
        skiplist_max_bytes: int = DEFAULT_SKIPLIST_MAX_BYTES,
        skiplist_stride: int = DEFAULT_SKIPLIST_STRIDE,
        hash_bucket_capacity: int = DEFAULT_HASH_BUCKET_CAPACITY,
    ) -> None:
        if not collection.frozen:
            raise IndexNotBuiltError("collection must be frozen before indexing")
        self.collection = collection
        self.with_id_lists = with_id_lists
        self.with_skip_lists = with_skip_lists
        self.with_hash_index = with_hash_index
        self._postings: Dict[str, TokenPostings] = {}
        lengths = collection.lengths()

        # Bucket postings per token, then sort each once.
        per_token: Dict[str, List[Tuple[float, int]]] = {}
        for rec in collection:
            length = lengths[rec.set_id]
            for token in rec.tokens:
                per_token.setdefault(token, []).append((length, rec.set_id))

        verify = invariants_enabled()
        for token, entries in per_token.items():
            entries.sort()
            if verify:
                check_order_preservation(
                    entries, source=f"weight-ordered list {token!r}"
                )
            weight_file = PagedFile(POSTING_BYTES, page_capacity)
            weight_file.extend(entries)
            id_file = None
            if with_id_lists:
                id_file = PagedFile(POSTING_BYTES, page_capacity)
                id_file.extend(
                    sorted((sid, ln) for ln, sid in entries)
                )
            skip = None
            if with_skip_lists:
                skip = SkipList(
                    entries,
                    max_bytes=skiplist_max_bytes,
                    stride=skiplist_stride,
                )
            hash_index = None
            if with_hash_index:
                hash_index = ExtendibleHash(hash_bucket_capacity)
                for ln, sid in entries:
                    hash_index.insert(sid, ln)
            self._postings[token] = TokenPostings(
                token, weight_file, id_file, skip, hash_index
            )

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------
    def __contains__(self, token: str) -> bool:
        return token in self._postings

    def tokens(self):
        return self._postings.keys()

    def list_length(self, token: str) -> int:
        postings = self._postings.get(token)
        return len(postings) if postings else 0

    def cursor(
        self,
        token: str,
        stats: Optional[IOStats] = None,
        use_skip_list: bool = True,
        checked: Optional[bool] = None,
    ) -> Optional[WeightOrderCursor]:
        """Weight-order cursor for a token, or None for unseen tokens
        (their lists are empty, so algorithms simply skip them).

        ``checked`` overrides the global invariant-checking flag: pass
        ``False`` for tolerant scans that implement their own integrity
        reporting (:func:`repro.core.validation.validate_index`), or
        ``True`` to force a :class:`CheckedWeightOrderCursor` regardless
        of ``REPRO_CHECK_INVARIANTS``.
        """
        postings = self._postings.get(token)
        if postings is None:
            return None
        if checked if checked is not None else CHECKS.enabled:
            return CheckedWeightOrderCursor(postings, stats, use_skip_list)
        return WeightOrderCursor(postings, stats, use_skip_list)

    def id_cursor(
        self, token: str, stats: Optional[IOStats] = None
    ) -> Optional[IdOrderCursor]:
        postings = self._postings.get(token)
        if postings is None:
            return None
        return IdOrderCursor(postings, stats)

    def probe(
        self, token: str, set_id: int, stats: Optional[IOStats] = None
    ) -> Optional[float]:
        """Random-access containment probe: the set's length if it appears
        in the token's list, else None.  Costs one random I/O (TA's unit)."""
        postings = self._postings.get(token)
        if postings is None:
            return None
        if postings.hash is None:
            raise IndexNotBuiltError(
                "hash index was not built; TA-style algorithms need "
                "with_hash_index=True"
            )
        faults_runtime.maybe_fire("storage.hash_probe")
        found, length = postings.hash.probe(set_id, stats)
        return length if found else None

    # ------------------------------------------------------------------
    # size accounting (Figure 5)
    # ------------------------------------------------------------------
    def size_report(self) -> Dict[str, int]:
        """Bytes per component, for the index-size benchmark."""
        weight = sum(p.weight_file.size_bytes() for p in self._postings.values())
        id_lists = sum(
            p.id_file.size_bytes()
            for p in self._postings.values()
            if p.id_file is not None
        )
        skips = sum(
            p.skip.size_bytes()
            for p in self._postings.values()
            if p.skip is not None
        )
        hashes = sum(
            p.hash.size_bytes()
            for p in self._postings.values()
            if p.hash is not None
        )
        return {
            "inverted_lists_by_weight": weight,
            "inverted_lists_by_id": id_lists,
            "skip_lists": skips,
            "extendible_hashing": hashes,
            "total": weight + id_lists + skips + hashes,
        }

    def num_postings(self) -> int:
        return sum(len(p) for p in self._postings.values())

    def __repr__(self) -> str:
        return (
            f"InvertedIndex(tokens={len(self._postings)}, "
            f"postings={self.num_postings()})"
        )
