"""Simulated page-based storage with sequential/random I/O accounting.

The paper's indexes are disk resident and its algorithms are distinguished by
*how* they touch disk: NRA-style methods perform sequential list accesses,
TA-style methods add one random probe per element per list, and skip lists
replace long sequential prefixes with a handful of jumps.  Pure-Python
wall-clock alone would hide those differences (list merging in CPython is
dominated by interpreter overhead), so every storage component in this
package charges its accesses to an :class:`IOStats` ledger, and the benchmark
harness reports those counters alongside wall-clock time.

A :class:`PagedFile` stores fixed-size records in fixed-capacity pages.  A
sequential cursor charges one *sequential page read* each time it crosses a
page boundary; :meth:`PagedFile.fetch` charges one *random page read* per
call (modelling a seek).  Sizes in bytes are tracked so Figure 5 (index
sizes) can be regenerated from the structures themselves.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence

from ..core.errors import StorageError
from ..faults import runtime as faults_runtime

DEFAULT_PAGE_CAPACITY = 128
"""Records per page. With 16-byte postings this models ~2 KB pages."""


class IOStats:
    """Mutable ledger of simulated I/O and element-access counts.

    ``elements_read`` counts inverted-list entries consumed by an algorithm
    (the paper's unit for pruning power); the page counters model disk
    behaviour; ``hash_probes`` and ``skip_jumps`` expose the auxiliary-index
    traffic that separates TA-style from NRA-style methods.
    """

    __slots__ = (
        "sequential_pages",
        "random_pages",
        "elements_read",
        "hash_probes",
        "skip_jumps",
        "candidate_scans",
    )

    #: The counters that :meth:`snapshot`/:meth:`add` cover.  Subclasses
    #: that add counters must extend this tuple — iterating
    #: ``self.__slots__`` would see only the subclass's own slots and
    #: silently drop (or double) the base counters.
    COUNTER_FIELDS = __slots__

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.sequential_pages = 0
        self.random_pages = 0
        self.elements_read = 0
        self.hash_probes = 0
        self.skip_jumps = 0
        self.candidate_scans = 0

    # ------------------------------------------------------------------
    def charge_sequential_page(self, pages: int = 1, key=None) -> None:
        """Charge sequential page reads.  ``key`` identifies the physical
        page (``(file identity, page number)``); the base ledger ignores it,
        buffer-pool-aware subclasses use it to turn repeat reads into hits."""
        self.sequential_pages += pages

    def charge_random_page(self, pages: int = 1, key=None) -> None:
        self.random_pages += pages

    def charge_element(self, elements: int = 1) -> None:
        self.elements_read += elements

    def charge_hash_probe(self, probes: int = 1) -> None:
        self.hash_probes += probes

    def charge_skip_jump(self, jumps: int = 1) -> None:
        self.skip_jumps += jumps

    def charge_candidate_scan(self, scanned: int = 1) -> None:
        self.candidate_scans += scanned

    # ------------------------------------------------------------------
    @property
    def total_pages(self) -> int:
        return self.sequential_pages + self.random_pages

    def cost(
        self, sequential_weight: float = 1.0, random_weight: float = 10.0
    ) -> float:
        """Weighted I/O cost; random pages default to 10x a sequential page,
        a conventional disk model."""
        return (
            sequential_weight * self.sequential_pages
            + random_weight * self.random_pages
        )

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    def add(self, other: "IOStats") -> None:
        """Accumulate another ledger into this one (for workload totals).

        Counters the other ledger lacks (e.g. ``buffer_hits`` when merging
        a plain ledger into a buffered one) contribute zero.
        """
        for name in self.COUNTER_FIELDS:
            setattr(
                self, name, getattr(self, name) + getattr(other, name, 0)
            )

    def __repr__(self) -> str:
        return (
            f"IOStats(seq={self.sequential_pages}, rand={self.random_pages}, "
            f"elems={self.elements_read}, probes={self.hash_probes}, "
            f"skips={self.skip_jumps})"
        )


class PagedFile:
    """An append-only file of fixed-size records grouped into pages.

    Records are arbitrary Python objects; ``record_bytes`` is the modelled
    on-disk size of one record, used for size accounting only.
    """

    def __init__(
        self,
        record_bytes: int,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ) -> None:
        if record_bytes <= 0:
            raise StorageError("record_bytes must be positive")
        if page_capacity <= 0:
            raise StorageError("page_capacity must be positive")
        self.record_bytes = record_bytes
        self.page_capacity = page_capacity
        self._records: List[Any] = []

    # ------------------------------------------------------------------
    def append(self, record: Any) -> int:
        """Append a record; returns its record number."""
        self._records.append(record)
        return len(self._records) - 1

    def extend(self, records: Sequence[Any]) -> None:
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def num_pages(self) -> int:
        n = len(self._records)
        return (n + self.page_capacity - 1) // self.page_capacity

    def size_bytes(self) -> int:
        """Modelled on-disk size of the stored records.

        Byte-accurate (records x record size): many token lists are tiny,
        and charging each a whole page would overstate index sizes by an
        order of magnitude.  Page granularity matters for I/O counting, not
        for the Figure 5 size comparison; :meth:`allocated_bytes` gives the
        page-rounded figure when slack matters.
        """
        return len(self._records) * self.record_bytes

    def allocated_bytes(self) -> int:
        """Page-rounded on-disk allocation (includes page slack)."""
        return self.num_pages * self.page_capacity * self.record_bytes

    def page_of(self, position: int) -> int:
        return position // self.page_capacity

    # ------------------------------------------------------------------
    def fetch(self, position: int, stats: Optional[IOStats] = None) -> Any:
        """Random access to one record: charges one random page read."""
        if not (0 <= position < len(self._records)):
            raise StorageError(
                f"record {position} out of range [0, {len(self._records)})"
            )
        faults_runtime.maybe_fire("storage.read_page")
        if stats is not None:
            stats.charge_random_page(key=(id(self), self.page_of(position)))
        return self._records[position]

    def cursor(
        self, stats: Optional[IOStats] = None, start: int = 0
    ) -> "SequentialCursor":
        return SequentialCursor(self, stats, start)

    def records(self) -> Iterator[Any]:
        """Raw iteration without any I/O charging (for rebuilds/tests)."""
        return iter(self._records)


class SequentialCursor:
    """Forward-only cursor over a :class:`PagedFile` with page accounting.

    The first read charges a sequential page; subsequent reads charge one
    more page each time the cursor crosses a page boundary.  ``jump(pos)``
    repositions the cursor, charging one *random* page read (the seek that a
    skip-list jump or an index-guided skip would cost on disk) unless the
    target lies in the page already buffered.
    """

    __slots__ = ("_file", "_stats", "_pos", "_buffered_page")

    def __init__(
        self, file: PagedFile, stats: Optional[IOStats], start: int = 0
    ) -> None:
        if start < 0:
            raise StorageError("cursor start must be non-negative")
        self._file = file
        self._stats = stats
        self._pos = start
        self._buffered_page: Optional[int] = None

    @property
    def position(self) -> int:
        return self._pos

    def exhausted(self) -> bool:
        return self._pos >= len(self._file)

    def _charge_for(self, page: int, random: bool) -> None:
        if page == self._buffered_page:
            return
        # Fault point sits past the buffered-page early-out, so it fires
        # once per physical page read — where a real disk would fail.
        faults_runtime.maybe_fire("storage.read_page")
        if self._stats is not None:
            key = (id(self._file), page)
            if random:
                self._stats.charge_random_page(key=key)
            else:
                self._stats.charge_sequential_page(key=key)
        self._buffered_page = page

    def peek(self) -> Any:
        """Read the record under the cursor without advancing."""
        if self.exhausted():
            raise StorageError("cursor exhausted")
        self._charge_for(self._file.page_of(self._pos), random=False)
        return self._file._records[self._pos]

    def next(self) -> Any:
        """Read the record under the cursor and advance past it."""
        record = self.peek()
        if self._stats is not None:
            self._stats.charge_element()
        self._pos += 1
        return record

    def skip(self, count: int = 1) -> None:
        """Advance without reading (no element charge; pages skipped are not
        fetched — this models an index-guided skip, see ``jump``)."""
        self._pos += count

    def jump(self, position: int) -> None:
        """Reposition the cursor (random page read unless already buffered)."""
        if position < self._pos:
            raise StorageError("cursor cannot move backwards")
        self._pos = position
        if position < len(self._file):
            self._charge_for(self._file.page_of(position), random=True)


def bytes_human(n: float) -> str:
    """Format a byte count for benchmark tables (KB/MB/GB)."""
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")
