"""Posting-list compression: delta + varint coding with real codecs.

Figure 5's storage explosion (indexes 9-26x the data) is the paper's cost
of speed; the standard mitigation in inverted-index engines is gap
compression.  This module implements it concretely, not as a size formula:

* :func:`encode_varint` / :func:`decode_varint` — LEB128-style unsigned
  variable-length integers;
* :func:`zigzag_encode` / :func:`zigzag_decode` — signed-to-unsigned
  mapping for deltas that can regress (id gaps within equal lengths are
  positive, but quantized length deltas of the *id-ordered* layout are
  not);
* :class:`CompressedPostings` — a weight-ordered postings list stored as
  (quantized length delta, id delta) varint pairs, with exact round-trip
  up to the declared length quantum;
* :func:`compressed_size_report` — Figure 5's decomposition with the
  compressed sizes alongside the raw ones.

Lengths are floats; they are quantized to a fixed-point grid (default
2^-16) before delta coding.  The quantum bounds the absolute length error,
which matters only for window boundary decisions — a quantum of 2^-16 is
three orders below the score tolerance, and the round-trip tests pin it.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..core.errors import StorageError

DEFAULT_QUANTUM = 1.0 / (1 << 16)


def encode_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise StorageError("varint requires a non-negative integer")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode one varint; returns (value, next offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise StorageError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise StorageError("varint too long")


def zigzag_encode(value: int) -> int:
    """Map signed to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


class CompressedPostings:
    """A weight-ordered postings list, delta+varint coded.

    Entries must arrive sorted by ``(length, id)`` (the index's invariant).
    Lengths are quantized; ids within the same quantized length are
    ascending, so both delta streams are non-negative — but zigzag is used
    anyway because the id stream *resets* (goes backwards) whenever the
    length bucket advances.
    """

    def __init__(
        self,
        entries: Iterable[Tuple[float, int]],
        quantum: float = DEFAULT_QUANTUM,
    ) -> None:
        if quantum <= 0:
            raise StorageError("quantum must be positive")
        self.quantum = quantum
        buf = bytearray()
        previous_q = 0
        previous_id = 0
        count = 0
        last_key = None
        for length, set_id in entries:
            key = (length, set_id)
            if last_key is not None and key < last_key:
                raise StorageError(
                    "postings must be sorted by (length, id)"
                )
            last_key = key
            quantized = int(round(length / quantum))
            encode_varint(quantized - previous_q, buf)
            encode_varint(zigzag_encode(set_id - previous_id), buf)
            previous_q = quantized
            previous_id = set_id
            count += 1
        self._data = bytes(buf)
        self._count = count

    def __len__(self) -> int:
        return self._count

    def size_bytes(self) -> int:
        return len(self._data)

    def decode(self) -> List[Tuple[float, int]]:
        """Full round-trip decode (lengths on the quantized grid)."""
        out: List[Tuple[float, int]] = []
        offset = 0
        quantized = 0
        set_id = 0
        for _ in range(self._count):
            delta_q, offset = decode_varint(self._data, offset)
            delta_id, offset = decode_varint(self._data, offset)
            quantized += delta_q
            set_id += zigzag_decode(delta_id)
            out.append((quantized * self.quantum, set_id))
        return out


def compressed_size_report(index, quantum: float = DEFAULT_QUANTUM) -> dict:
    """Raw vs compressed bytes for an index's weight-ordered lists."""
    raw = 0
    compressed = 0
    for token in index.tokens():
        postings = index._postings[token]
        entries = list(postings.weight_file.records())
        raw += postings.weight_file.size_bytes()
        compressed += CompressedPostings(entries, quantum).size_bytes()
    return {
        "raw_bytes": raw,
        "compressed_bytes": compressed,
        "ratio": (raw / compressed) if compressed else float("inf"),
    }
