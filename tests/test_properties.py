"""Tests for the Section IV semantic properties, incl. hypothesis checks."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidThresholdError
from repro.core.properties import (
    entry_precedes,
    frontier_threshold,
    lambda_cutoffs,
    length_bounds,
    magnitude_upper_bound,
    tf_boosted_length_bounds,
    validate_threshold,
    within_length_bounds,
)
from repro.core.similarity import idf_similarity
from repro.core.weights import IdfStatistics


class TestValidateThreshold:
    @pytest.mark.parametrize("tau", [0.01, 0.5, 1.0])
    def test_valid(self, tau):
        assert validate_threshold(tau) == tau

    @pytest.mark.parametrize("tau", [0.0, -0.1, 1.0001, 2.0])
    def test_invalid(self, tau):
        with pytest.raises(InvalidThresholdError):
            validate_threshold(tau)


class TestLengthBounds:
    def test_window(self):
        lo, hi = length_bounds(10.0, 0.5)
        assert lo == pytest.approx(5.0)
        assert hi == pytest.approx(20.0)

    def test_tau_one_pins_length(self):
        lo, hi = length_bounds(7.0, 1.0)
        assert lo == pytest.approx(7.0) == pytest.approx(hi)

    def test_within(self):
        assert within_length_bounds(5.0, 10.0, 0.5)
        assert within_length_bounds(20.0, 10.0, 0.5)
        assert not within_length_bounds(4.99, 10.0, 0.5)
        assert not within_length_bounds(20.01, 10.0, 0.5)

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_window_contains_query_length(self, qlen, tau):
        lo, hi = length_bounds(qlen, tau)
        assert lo <= qlen <= hi + 1e-9


def _random_universe(rng, n_sets=40, vocab=25):
    tokens = [f"t{i}" for i in range(vocab)]
    sets = [
        frozenset(rng.sample(tokens, rng.randint(1, 8)))
        for _ in range(n_sets)
    ]
    return tokens, sets, IdfStatistics.from_sets(sets)


class TestTheorem1:
    """Theorem 1: I(q,s) >= tau implies the length window — exhaustively
    checked on random universes."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("tau", [0.3, 0.6, 0.9, 1.0])
    def test_answers_inside_window(self, seed, tau):
        rng = random.Random(seed)
        tokens, sets, stats = _random_universe(rng)
        q = frozenset(rng.sample(tokens, rng.randint(1, 6)))
        qlen = stats.length(q)
        lo, hi = length_bounds(qlen, tau)
        for s in sets:
            score = idf_similarity(q, s, stats)
            if score >= tau:
                slen = stats.length(s)
                assert lo - 1e-9 <= slen <= hi + 1e-9

    def test_bounds_are_tight(self):
        # Case 1 (q ⊂ s) attains the upper bound; case 2 (s ⊂ q) the lower.
        sets = [{"a", "b"}, {"a"}, {"a", "b", "c"}]
        stats = IdfStatistics.from_sets(sets)
        q = {"a", "b"}
        sup = {"a", "b", "c"}
        sub = {"a"}
        tau_up = idf_similarity(q, sup, stats)
        # At threshold == score, the superset's length equals len(q)/tau.
        assert stats.length(sup) == pytest.approx(
            stats.length(q) / tau_up
        )
        tau_down = idf_similarity(q, sub, stats)
        assert stats.length(sub) == pytest.approx(
            tau_down * stats.length(q)
        )


class TestLambdaCutoffs:
    def test_equation_two(self):
        idf_sq = [9.0, 4.0, 1.0]
        qlen = 2.0
        tau = 0.5
        lam = lambda_cutoffs(idf_sq, qlen, tau)
        assert lam[0] == pytest.approx((9 + 4 + 1) / (0.5 * 2))
        assert lam[1] == pytest.approx((4 + 1) / (0.5 * 2))
        assert lam[2] == pytest.approx(1 / (0.5 * 2))

    def test_non_increasing(self):
        lam = lambda_cutoffs([5.0, 5.0, 0.5, 0.1], 3.0, 0.7)
        assert all(a >= b for a, b in zip(lam, lam[1:]))

    def test_lambda_one_equals_theorem_upper_bound(self):
        # When the idf² list covers the whole query, λ_1 == len(q)/τ.
        idf_sq = [4.0, 1.0]
        qlen = math.sqrt(sum(idf_sq))
        lam = lambda_cutoffs(idf_sq, qlen, 0.8)
        _lo, hi = length_bounds(qlen, 0.8)
        assert lam[0] == pytest.approx(hi)

    def test_zero_query_length(self):
        assert lambda_cutoffs([1.0], 0.0, 0.5) == [0.0]

    def test_empty(self):
        assert lambda_cutoffs([], 1.0, 0.5) == []


class TestFrontierThreshold:
    def test_sum(self):
        assert frontier_threshold([0.5, 0.25, 0.1]) == pytest.approx(0.85)

    def test_none_is_exhausted(self):
        assert frontier_threshold([0.5, None, 0.1]) == pytest.approx(0.6)

    def test_all_exhausted(self):
        assert frontier_threshold([None, None]) == 0.0


class TestMagnitudeBound:
    def test_basic(self):
        ub = magnitude_upper_bound(2.0, 3.0, [6.0, 6.0], known_score=0.1)
        assert ub == pytest.approx(0.1 + 12.0 / 6.0)

    def test_zero_denominator(self):
        assert magnitude_upper_bound(0.0, 3.0, [1.0], 0.2) == 0.2

    @given(
        st.floats(min_value=0.1, max_value=50),
        st.floats(min_value=0.1, max_value=50),
        st.lists(st.floats(min_value=0, max_value=10), max_size=6),
        st.floats(min_value=0, max_value=1),
    )
    def test_at_least_known_score(self, slen, qlen, idf_sq, known):
        assert (
            magnitude_upper_bound(slen, qlen, idf_sq, known) >= known - 1e-12
        )


class TestOrderPreservation:
    def test_entry_precedes_by_length(self):
        assert entry_precedes(1.0, 99, 2.0, 1)

    def test_entry_precedes_tie_by_id(self):
        assert entry_precedes(1.0, 1, 1.0, 2)
        assert not entry_precedes(1.0, 2, 1.0, 1)

    def test_equal_entries_not_preceding(self):
        assert not entry_precedes(1.0, 1, 1.0, 1)

    def test_order_same_in_all_lists(self):
        # Property 1: with per-list contribution idf²/(len·len(q)), the
        # relative order of two sets is the same in every list.
        sets = [{"a", "b"}, {"a", "b", "c", "d"}]
        stats = IdfStatistics.from_sets(sets)
        len0, len1 = stats.length(sets[0]), stats.length(sets[1])
        qlen = 3.0
        for token in ["a", "b"]:
            w0 = stats.idf_squared(token) / (len0 * qlen)
            w1 = stats.idf_squared(token) / (len1 * qlen)
            assert (w0 > w1) == (len0 < len1)


class TestTfBoostedBounds:
    def test_widens_both_sides(self):
        lo, hi = length_bounds(10.0, 0.5)
        blo, bhi = tf_boosted_length_bounds(10.0, 0.5, max_tf=2.0)
        assert blo < lo and bhi > hi

    def test_max_tf_one_is_identity(self):
        assert tf_boosted_length_bounds(10.0, 0.5, 1.0) == pytest.approx(
            length_bounds(10.0, 0.5)
        )

    def test_invalid_max_tf(self):
        with pytest.raises(ValueError):
            tf_boosted_length_bounds(10.0, 0.5, 0.5)
