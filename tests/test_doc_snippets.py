"""Tests for the doc-snippets pass and the repository's documentation.

The unit tests exercise fence extraction and failure reporting on
inline Markdown; the repo-level test executes every runnable snippet
in ``README.md`` and ``docs/*.md`` so a doc-breaking API change fails
tier-1, not just the dedicated CI step.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT))

from tools.check import docsnippets  # noqa: E402


class TestExtraction:
    def test_python_fence_extracted_with_line_number(self):
        text = "intro\n\n```python\nx = 1\ny = x + 1\n```\n"
        snippets = docsnippets.extract_snippets(text)
        assert snippets == [(3, "x = 1\ny = x + 1\n")]

    def test_non_python_fences_ignored(self):
        text = "```bash\nexit 1\n```\n\n```\nplain fence\n```\n"
        assert docsnippets.extract_snippets(text) == []

    def test_no_run_marker_skips_block(self):
        text = "```python no-run\nraise RuntimeError('illustrative')\n```\n"
        assert docsnippets.extract_snippets(text) == []

    def test_indented_fence_inside_list(self):
        text = "- step:\n\n    ```python\n    x = 1\n    ```\n"
        snippets = docsnippets.extract_snippets(text)
        assert len(snippets) == 1
        assert snippets[0][1].strip() == "x = 1"

    def test_unterminated_fence_dropped(self):
        text = "```python\nx = 1\n"
        assert docsnippets.extract_snippets(text) == []


class TestExecution:
    def test_passing_snippet_returns_none(self):
        assert docsnippets.run_snippet("print('ok')\n", REPO_ROOT) is None

    def test_snippet_sees_repro_on_pythonpath(self):
        source = "import repro\nassert repro.__version__\n"
        assert docsnippets.run_snippet(source, REPO_ROOT) is None

    def test_failing_snippet_reports_exception_tail(self):
        error = docsnippets.run_snippet(
            "raise ValueError('doc rot')\n", REPO_ROOT
        )
        assert error is not None
        assert "doc rot" in error

    def test_failure_becomes_violation_at_fence_line(self, tmp_path):
        doc = tmp_path / "broken.md"
        doc.write_text("title\n\n```python\nundefined_name\n```\n")
        violations = docsnippets.run(REPO_ROOT, files=[doc])
        assert len(violations) == 1
        assert violations[0].line == 3
        assert violations[0].check == docsnippets.CHECK_NAME


class TestRepositoryDocs:
    def test_docs_list_is_nonempty(self):
        files = docsnippets.markdown_files(REPO_ROOT)
        names = {f.name for f in files}
        assert "README.md" in names
        assert "service.md" in names

    def test_every_doc_snippet_executes(self):
        violations = docsnippets.run(REPO_ROOT)
        assert violations == [], "\n".join(str(v) for v in violations)
