"""Unit tests for PreparedQuery."""


import pytest

from repro.core.errors import EmptyQueryError
from repro.core.query import PreparedQuery, prepare
from repro.core.weights import IdfStatistics


@pytest.fixture()
def stats():
    sets = [
        {"common", "rare"},
        {"common", "mid"},
        {"common", "mid"},
        {"common"},
    ]
    return IdfStatistics.from_sets(sets)


class TestPreparedQuery:
    def test_tokens_sorted_by_decreasing_idf(self, stats):
        q = PreparedQuery(["common", "rare", "mid"], stats)
        assert list(q.tokens) == ["rare", "mid", "common"]
        assert list(q.idf_squared) == sorted(q.idf_squared, reverse=True)

    def test_duplicates_collapsed(self, stats):
        q = PreparedQuery(["rare", "rare", "common"], stats)
        assert len(q) == 2

    def test_length_matches_stats(self, stats):
        tokens = ["rare", "common"]
        q = PreparedQuery(tokens, stats)
        assert q.length == pytest.approx(stats.length(tokens))

    def test_empty_query_rejected(self, stats):
        with pytest.raises(EmptyQueryError):
            PreparedQuery([], stats)

    def test_token_index_and_contains(self, stats):
        q = PreparedQuery(["rare", "common"], stats)
        assert q.token_index("rare") == 0
        assert "common" in q
        assert "mid" not in q

    def test_source_tokens_preserved(self, stats):
        q = PreparedQuery(["common", "rare", "common"], stats)
        assert q.source_tokens == ("common", "rare", "common")

    def test_tie_broken_deterministically(self, stats):
        # 'x' and 'y' both unseen -> same idf; order by token string.
        q = PreparedQuery(["y", "x"], stats)
        assert list(q.tokens) == ["x", "y"]

    def test_prepare_alias(self, stats):
        assert prepare(["rare"], stats).tokens == ("rare",)


class TestQueryMath:
    def test_bounds_delegate_to_theorem(self, stats):
        q = PreparedQuery(["rare", "common"], stats)
        lo, hi = q.bounds(0.5)
        assert lo == pytest.approx(0.5 * q.length)
        assert hi == pytest.approx(q.length / 0.5)

    def test_cutoffs_align_with_token_order(self, stats):
        q = PreparedQuery(["common", "rare", "mid"], stats)
        lam = q.cutoffs(0.8)
        assert len(lam) == 3
        assert lam[0] >= lam[1] >= lam[2]
        expected_last = q.idf_squared[2] / (0.8 * q.length)
        assert lam[2] == pytest.approx(expected_last)

    def test_contribution_formula(self, stats):
        q = PreparedQuery(["rare", "common"], stats)
        slen = 2.5
        assert q.contribution(0, slen) == pytest.approx(
            q.idf_squared[0] / (slen * q.length)
        )

    def test_contribution_zero_guard(self, stats):
        q = PreparedQuery(["rare"], stats)
        assert q.contribution(0, 0.0) == 0.0

    def test_max_unseen_score(self, stats):
        q = PreparedQuery(["rare", "mid", "common"], stats)
        slen = 2.0
        expected = (q.idf_squared[0] + q.idf_squared[2]) / (slen * q.length)
        assert q.max_unseen_score(slen, [0, 2]) == pytest.approx(expected)

    def test_perfect_score_length(self, stats):
        q = PreparedQuery(["rare"], stats)
        assert q.perfect_score_length() == pytest.approx(q.length)

    def test_self_similarity_via_contributions(self, stats):
        # Summing a set's own contributions over all its tokens gives 1.0
        # when the set equals the query.
        tokens = ["rare", "common"]
        q = PreparedQuery(tokens, stats)
        total = sum(
            q.contribution(i, q.length) for i in range(len(tokens))
        )
        assert total == pytest.approx(1.0)
