"""The public API surface: everything exported exists and works."""

import importlib

import pytest

import repro


class TestPackageExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.storage",
            "repro.algorithms",
            "repro.relational",
            "repro.data",
            "repro.eval",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_headline_workflow_from_root_imports_only(self):
        from repro import SetCollection, SetSimilaritySearcher

        coll = SetCollection.from_token_sets([["a", "b"], ["b", "c"]])
        searcher = SetSimilaritySearcher(coll)
        assert searcher.search(["a", "b"], 0.9).ids() == [0]

    def test_algorithms_registry_matches_exports(self):
        assert set(repro.algorithm_names()) == {
            "sort-by-id", "nra", "ta", "inra", "ita", "sf", "hybrid",
        }

    def test_py_typed_marker_shipped(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()
