"""Tests for the seeded fault-injection layer (``repro.faults``).

The contract under test, per ``docs/robustness.md``:

* specs parse per the documented grammar, bad specs fail loudly;
* a plan is deterministic — same seed, same operation sequence, same
  injected faults, byte-for-byte — which is what makes chaos failures
  replayable;
* rules gate on site pattern, probability, ``count`` and ``after``;
* the disarmed Null twin injects nothing and costs no state;
* every injection is journaled and counted in ``faults_injected_total``.
"""

import os

import pytest

from repro.faults import (
    FaultPlan,
    FaultSpecError,
    NullFaultPlan,
    TornWriteError,
    TransientIOError,
    arm,
    disarm,
    get_plan,
    parse_fault_spec,
    use_fault_plan,
)
from repro.faults import runtime as faults_runtime
from repro.obs import metrics as obs_metrics


class TestSpecParsing:
    def test_full_grammar(self):
        plan = parse_fault_spec(
            "seed=42; storage.read_page:transient:p=0.05;"
            "persist.*:torn:count=2:after=1;"
            "svc:latency:ms=2.5; data:flip:bytes=3"
        )
        assert plan.seed == 42
        kinds = [r.kind for r in plan.rules]
        assert kinds == ["transient", "torn", "latency", "flip"]
        assert plan.rules[0].probability == 0.05
        assert plan.rules[1].count == 2 and plan.rules[1].after == 1
        assert plan.rules[2].latency_ms == 2.5
        assert plan.rules[3].flip_bytes == 3

    @pytest.mark.parametrize(
        "bad",
        [
            "",  # no rules at all
            "seed=x;a:transient",  # non-integer seed
            "justaword",  # neither seed nor rule
            "site:explode",  # unknown kind
            "site:transient:p=1.5",  # probability out of range
            "site:transient:frequency=1",  # unknown option
            "site:flip:bytes=0",  # bytes must be >= 1
            ":transient",  # empty site
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_wildcard_sites_match(self):
        plan = parse_fault_spec("persist.*:transient:p=1")
        with pytest.raises(TransientIOError):
            plan.fire("persist.fsync")
        plan.fire("storage.read_page")  # no rule matches: no-op


class TestDeterminism:
    @staticmethod
    def _run(plan, passes=200):
        """Drive a fixed operation sequence; return observable outcomes."""
        outcomes = []
        for _ in range(passes):
            try:
                plan.fire("storage.read_page")
                outcomes.append("ok")
            except TransientIOError:
                outcomes.append("transient")
        return outcomes

    def test_same_seed_replays_identically(self):
        spec = "seed=7;storage.read_page:transient:p=0.1"
        a, b = parse_fault_spec(spec), parse_fault_spec(spec)
        assert self._run(a) == self._run(b)
        assert a.journal == b.journal
        assert a.injected_total() > 0  # the plan actually fired

    def test_different_seed_differs(self):
        a = parse_fault_spec("seed=7;storage.read_page:transient:p=0.1")
        b = parse_fault_spec("seed=8;storage.read_page:transient:p=0.1")
        assert self._run(a) != self._run(b)

    def test_mangle_is_deterministic_too(self):
        spec = "seed=3;persist.read_postings:flip:p=1:bytes=2"
        data = bytes(range(64))
        a = parse_fault_spec(spec).mangle("persist.read_postings", data)
        b = parse_fault_spec(spec).mangle("persist.read_postings", data)
        assert a == b and a != data and len(a) == len(data)


class TestRuleGating:
    def test_count_and_after(self):
        plan = parse_fault_spec(
            "storage.read_page:transient:count=1:after=2"
        )
        fired = []
        for i in range(6):
            try:
                plan.fire("storage.read_page")
            except TransientIOError:
                fired.append(i)
        # Skips the first two matching passes, fires once, then dormant.
        assert fired == [2]

    def test_torn_kind_raises_torn_error(self):
        plan = parse_fault_spec("persist.write_manifest:torn")
        with pytest.raises(TornWriteError):
            plan.fire("persist.write_manifest")

    def test_latency_uses_the_sleeper(self):
        slept = []
        plan = parse_fault_spec(
            "svc:latency:ms=4", sleeper=slept.append
        )
        plan.fire("svc")
        assert slept == [0.004]

    def test_mangle_leaves_other_sites_alone(self):
        plan = parse_fault_spec("persist.read_postings:flip:p=1")
        data = b"\x00" * 32
        assert plan.mangle("storage.oplog_replay", data) == data

    def test_fault_errors_are_oserrors(self):
        # Injected faults model infrastructure failures, so they flow
        # through the same handlers as real I/O errors.
        assert issubclass(TransientIOError, OSError)
        assert issubclass(TornWriteError, OSError)
        err = TransientIOError("storage.read_page")
        assert err.site == "storage.read_page"


class TestRuntime:
    @pytest.mark.skipif(
        bool(os.environ.get(faults_runtime.ENV_VAR, "").strip()),
        reason="REPRO_FAULTS armed this process at import (chaos smoke)",
    )
    def test_disarmed_by_default(self):
        assert isinstance(get_plan(), NullFaultPlan)
        assert not get_plan().armed
        faults_runtime.maybe_fire("storage.read_page")  # no-op
        assert faults_runtime.maybe_mangle("x", b"abc") == b"abc"

    def test_use_fault_plan_scopes_and_restores(self):
        before = get_plan()
        with use_fault_plan("seed=1;x:transient:p=0") as plan:
            assert get_plan() is plan
            assert plan.armed
        assert get_plan() is before

    def test_arm_disarm(self):
        before = get_plan()
        plan = arm("seed=1;x:transient:p=0")
        try:
            assert get_plan() is plan
            disarm()
            assert isinstance(get_plan(), NullFaultPlan)
        finally:
            # Put back whatever was armed (the chaos smoke runs the
            # whole suite under an env-armed plan).
            if before.armed:
                arm(before)

    def test_arm_accepts_a_plan_object(self):
        plan = FaultPlan(parse_fault_spec("x:transient:p=0").rules, seed=5)
        with use_fault_plan(plan) as installed:
            assert installed is plan

    def test_injections_counted_in_metrics(self):
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()) as reg:
            with use_fault_plan("seed=1;site.a:transient:count=2"):
                for _ in range(3):
                    try:
                        faults_runtime.maybe_fire("site.a")
                    except TransientIOError:
                        pass
            counter = reg.get("faults_injected_total")
            assert counter.labels(site="site.a", kind="transient").value == 2

    def test_journal_and_counts(self):
        with use_fault_plan("seed=1;a:transient;b:torn") as plan:
            for site in ("a", "b", "a"):
                try:
                    faults_runtime.maybe_fire(site)
                except OSError:
                    pass
        assert plan.journal == [
            ("a", "transient"), ("b", "torn"), ("a", "transient")
        ]
        assert plan.counts() == {
            ("a", "transient"): 2, ("b", "torn"): 1
        }
