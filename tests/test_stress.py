"""Stress pass: one larger corpus, every subsystem, one sweep.

Bigger than the unit fixtures (3 000 sets, q-gram tokens from generated
words) and deliberately mixed: selections across algorithms and thresholds
against brute force, top-k, a join slice, persistence round-trip,
validation, and the batch selector — all on the same index.  Kept to a
single module so the cost is paid once.
"""

import random

import pytest

from repro import SetSimilaritySearcher, algorithm_names
from repro.algorithms.batch import BatchSelector
from repro.core.tokenize import QGramTokenizer
from repro.core.validation import validate_index
from repro.data.synthetic import generate_word_database


@pytest.fixture(scope="module")
def big():
    collection, words = generate_word_database(
        num_records=8000, vocabulary_size=3500, seed=404
    )
    searcher = SetSimilaritySearcher(collection)
    return searcher, words, QGramTokenizer(q=3)


def test_index_valid_at_scale(big):
    searcher, _w, _t = big
    assert len(searcher.collection) >= 2500
    assert validate_index(searcher.index).valid


def test_all_algorithms_agree_at_scale(big):
    searcher, words, tok = big
    rng = random.Random(5)
    for _ in range(6):
        word = words[rng.randrange(len(words))]
        q = tok.tokens(word)
        tau = rng.choice([0.7, 0.9])
        ref = {
            (r.set_id, round(r.score, 9))
            for r in searcher.brute_force(q, tau)
        }
        for algo in algorithm_names():
            got = {
                (r.set_id, round(r.score, 9))
                for r in searcher.search(q, tau, algorithm=algo).results
            }
            assert got == ref, (algo, tau, word)


def test_topk_consistent_at_scale(big):
    searcher, words, tok = big
    rng = random.Random(6)
    for _ in range(4):
        q = tok.tokens(words[rng.randrange(len(words))])
        full = [r for r in searcher.brute_force(q, 1e-9) if r.score > 0]
        got = [
            (r.set_id, round(r.score, 9))
            for r in searcher.top_k(q, 10).results
        ]
        assert got == [(r.set_id, round(r.score, 9)) for r in full[:10]]


def test_batch_consistent_at_scale(big):
    searcher, words, tok = big
    rng = random.Random(7)
    queries = [
        searcher.prepare(tok.tokens(words[rng.randrange(len(words))]))
        for _ in range(10)
    ]
    batch = BatchSelector(searcher.index)
    results, _stats = batch.search_many(queries, 0.8)
    for query, result in zip(queries, results):
        ref = searcher.search_prepared(query, 0.8, algorithm="sf")
        assert set(result.ids()) == set(ref.ids())


def test_persistence_round_trip_at_scale(big, tmp_path):
    from repro import load_searcher, save_searcher

    searcher, words, tok = big
    save_searcher(searcher, tmp_path / "big")
    loaded = load_searcher(tmp_path / "big")
    rng = random.Random(8)
    for _ in range(4):
        q = tok.tokens(words[rng.randrange(len(words))])
        assert set(loaded.search(q, 0.8).ids()) == set(
            searcher.search(q, 0.8).ids()
        )


def test_pruning_strong_at_scale(big):
    searcher, words, tok = big
    rng = random.Random(9)
    powers = []
    for _ in range(10):
        q = tok.tokens(words[rng.randrange(len(words))])
        powers.append(
            searcher.search(q, 0.9, algorithm="sf").pruning_power
        )
    assert sum(powers) / len(powers) > 0.6
