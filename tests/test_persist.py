"""Tests for index persistence (save_searcher / load_searcher)."""

import json

import pytest

from repro import (
    SetCollection,
    SetSimilaritySearcher,
    StringMatcher,
    load_searcher,
    save_searcher,
)
from repro.core.errors import StorageError


@pytest.fixture()
def saved(tmp_path, searcher):
    manifest = save_searcher(searcher, tmp_path / "idx")
    # The default layout is generational: the payload files live under
    # the first generation directory, named by CURRENT.
    return tmp_path / "idx" / "gen-000001", manifest, searcher


class TestRoundTrip:
    def test_manifest_counts(self, saved):
        path, manifest, searcher = saved
        assert manifest["num_sets"] == len(searcher.collection)
        assert manifest["num_postings"] == searcher.index.num_postings()

    def test_files_written(self, saved):
        path, _m, _s = saved
        assert (path / "manifest.json").exists()
        assert (path / "collection.jsonl").exists()
        assert (path / "postings.bin").exists()
        assert (path.parent / "CURRENT").read_text().strip() == path.name

    def test_loaded_searcher_answers_match(self, saved, small_vocab):
        path, _m, original = saved
        loaded = load_searcher(path.parent)
        import random

        rng = random.Random(77)
        for _ in range(10):
            q = rng.sample(small_vocab, rng.randint(1, 5))
            a = {(r.set_id, round(r.score, 9))
                 for r in original.search(q, 0.5).results}
            b = {(r.set_id, round(r.score, 9))
                 for r in loaded.search(q, 0.5).results}
            assert a == b

    def test_payloads_survive(self, tmp_path):
        matcher = StringMatcher(["alpha beta", "gamma delta"])
        save_searcher(matcher.searcher, tmp_path / "m")
        loaded = load_searcher(tmp_path / "m")
        assert loaded.collection.payload(0) == "alpha beta"
        assert loaded.collection.payload(1) == "gamma delta"

    def test_multiset_counts_survive(self, tmp_path):
        coll = SetCollection.from_token_sets([["a", "a", "b"]])
        save_searcher(SetSimilaritySearcher(coll), tmp_path / "x")
        loaded = load_searcher(tmp_path / "x")
        assert loaded.collection[0].counts == {"a": 2, "b": 1}

    def test_component_flags_respected(self, tmp_path, small_collection):
        lean = SetSimilaritySearcher(
            small_collection, with_id_lists=False, with_hash_index=False
        )
        save_searcher(lean, tmp_path / "lean")
        loaded = load_searcher(tmp_path / "lean")
        assert not loaded.index.with_id_lists
        assert not loaded.index.with_hash_index


class TestFlatLayout:
    def test_flat_round_trip(self, tmp_path, searcher, small_vocab):
        save_searcher(searcher, tmp_path / "flat", layout="flat")
        assert (tmp_path / "flat" / "manifest.json").exists()
        assert not (tmp_path / "flat" / "CURRENT").exists()
        loaded = load_searcher(tmp_path / "flat")
        assert loaded.recovery_report.legacy
        q = small_vocab[:3]
        a = {(r.set_id, round(r.score, 9))
             for r in searcher.search(q, 0.5).results}
        b = {(r.set_id, round(r.score, 9))
             for r in loaded.search(q, 0.5).results}
        assert a == b

    def test_legacy_v1_manifest_without_checksums_loads(self, tmp_path):
        # A directory written by the version-1 code has no checksum map;
        # the loader must still accept it (postings verification covers
        # it) rather than demand fields the old writer never produced.
        coll = SetCollection.from_token_sets([["a", "b"], ["b", "c"]])
        save_searcher(
            SetSimilaritySearcher(coll), tmp_path / "v1", layout="flat"
        )
        manifest = json.loads((tmp_path / "v1" / "manifest.json").read_text())
        manifest["format_version"] = 1
        del manifest["checksums"]
        (tmp_path / "v1" / "manifest.json").write_text(json.dumps(manifest))
        loaded = load_searcher(tmp_path / "v1")
        assert len(loaded.collection) == 2

    def test_unknown_layout_rejected(self, tmp_path, searcher):
        with pytest.raises(StorageError):
            save_searcher(searcher, tmp_path / "x", layout="zip")

    def test_successive_saves_advance_generations(self, tmp_path, searcher):
        save_searcher(searcher, tmp_path / "g")
        save_searcher(searcher, tmp_path / "g")
        assert (tmp_path / "g" / "gen-000002").is_dir()
        assert (
            tmp_path / "g" / "CURRENT"
        ).read_text().strip() == "gen-000002"
        loaded = load_searcher(tmp_path / "g")
        assert loaded.recovery_report.loaded_generation == "gen-000002"


class TestFailureModes:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            load_searcher(tmp_path)

    def test_wrong_version(self, saved):
        path, _m, _s = saved
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            load_searcher(path.parent)

    def test_truncated_collection_detected(self, saved):
        path, _m, _s = saved
        lines = (path / "collection.jsonl").read_text().splitlines()
        (path / "collection.jsonl").write_text("\n".join(lines[:-5]) + "\n")
        with pytest.raises(StorageError):
            load_searcher(path.parent)

    def test_corrupted_postings_detected(self, saved):
        path, _m, _s = saved
        data = bytearray((path / "postings.bin").read_bytes())
        # Flip a byte deep inside a posting payload.
        data[len(data) // 2] ^= 0xFF
        (path / "postings.bin").write_bytes(bytes(data))
        with pytest.raises(StorageError):
            load_searcher(path.parent)

    def test_unserializable_payload_rejected(self, tmp_path):
        coll = SetCollection()
        coll.add(["a"], payload=object())
        coll.freeze()
        with pytest.raises(StorageError):
            save_searcher(SetSimilaritySearcher(coll), tmp_path / "bad")

    def test_random_corruption_never_silent(self, tmp_path):
        """Fuzz: any single byte flip in postings.bin either leaves the
        load equivalent (flipped padding is impossible here, so in
        practice it raises) or raises StorageError — never a silently
        different index."""
        import random

        coll = SetCollection.from_token_sets(
            [["a", "b"], ["b", "c"], ["c", "d"], ["a", "d"]]
        )
        save_searcher(SetSimilaritySearcher(coll), tmp_path / "fz")
        postings = tmp_path / "fz" / "gen-000001" / "postings.bin"
        original = postings.read_bytes()
        reference = load_searcher(tmp_path / "fz")
        ref_answers = {
            (r.set_id, round(r.score, 9))
            for r in reference.search(["a", "b"], 0.3).results
        }
        rng = random.Random(0)
        raised = 0
        for _ in range(30):
            data = bytearray(original)
            pos = rng.randrange(len(data))
            data[pos] ^= 1 << rng.randrange(8)
            postings.write_bytes(bytes(data))
            try:
                loaded = load_searcher(tmp_path / "fz")
            except StorageError:
                raised += 1
                continue
            got = {
                (r.set_id, round(r.score, 9))
                for r in loaded.search(["a", "b"], 0.3).results
            }
            assert got == ref_answers
        assert raised > 0  # the verifier actually fires
        postings.write_bytes(original)
