"""Tests for multi-field record linkage (FieldedMatcher)."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.core.linkage import FieldedMatcher


RECORDS = [
    {"name": "jonathan smithers", "city": "boston"},
    {"name": "jonathon smithers", "city": "bostn"},
    {"name": "jonathan smith", "city": "chicago"},
    {"name": "mary watson", "city": "boston"},
    {"name": "mary watson", "city": "new york"},
    {"name": "elizabeth warren", "city": ""},
]

WEIGHTS = {"name": 0.7, "city": 0.3}


@pytest.fixture(scope="module")
def matcher():
    return FieldedMatcher(RECORDS, WEIGHTS)


def ids(matches):
    return [(m.record_id, round(m.score, 9)) for m in matches]


class TestConstruction:
    def test_weights_normalized(self, matcher):
        assert sum(matcher.weights.values()) == pytest.approx(1.0)
        assert matcher.weights["name"] == pytest.approx(0.7)

    def test_empty_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            FieldedMatcher(RECORDS, {})

    def test_non_positive_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            FieldedMatcher(RECORDS, {"name": 0.0})

    def test_unnormalized_weights_accepted(self):
        m = FieldedMatcher(RECORDS, {"name": 7, "city": 3})
        assert m.weights["city"] == pytest.approx(0.3)


class TestMatching:
    def test_exact_record_scores_one(self, matcher):
        matches = matcher.match(RECORDS[0], 0.95)
        assert matches[0].record_id == 0
        assert matches[0].score == pytest.approx(1.0)

    def test_matches_brute_force(self, matcher):
        queries = [
            {"name": "jonathan smithers", "city": "boston"},
            {"name": "jonathan smitters", "city": "bostan"},
            {"name": "mary watson", "city": "boston"},
            {"name": "marie watson", "city": ""},
            {"name": "someone else", "city": "boston"},
        ]
        for q in queries:
            for tau in (0.2, 0.4, 0.6, 0.9):
                got = ids(matcher.match(q, tau))
                ref = ids(matcher.brute_force(q, tau))
                assert got == ref, (q, tau)

    def test_low_threshold_catches_single_field_matches(self, matcher):
        # City-only agreement must surface at a threshold below the city
        # weight (the completeness case the naive bound misses).
        q = {"name": "zzz qqq xxx", "city": "boston"}
        got = ids(matcher.match(q, 0.25))
        ref = ids(matcher.brute_force(q, 0.25))
        assert got == ref
        assert any(rid in (0, 3) for rid, _ in got)

    def test_per_field_breakdown(self, matcher):
        matches = matcher.match(
            {"name": "jonathan smithers", "city": "chicago"}, 0.3
        )
        best = matches[0]
        assert set(best.per_field) == {"name", "city"}
        combined = sum(
            matcher.weights[f] * s for f, s in best.per_field.items()
        )
        assert best.score == pytest.approx(combined)

    def test_missing_query_field(self, matcher):
        got = ids(matcher.match({"name": "mary watson"}, 0.3))
        ref = ids(matcher.brute_force({"name": "mary watson"}, 0.3))
        assert got == ref

    def test_max_candidates(self, matcher):
        matches = matcher.match(
            {"name": "jonathan smithers", "city": "boston"}, 0.1,
            max_candidates=2,
        )
        assert len(matches) == 2

    def test_field_weighting_effects(self):
        # Same records, opposite weights: the ranking flips.
        heavy_name = FieldedMatcher(RECORDS, {"name": 0.9, "city": 0.1})
        heavy_city = FieldedMatcher(RECORDS, {"name": 0.1, "city": 0.9})
        q = {"name": "mary watson", "city": "new york"}
        top_name = heavy_name.match(q, 0.2)[0]
        top_city = heavy_city.match(q, 0.2)[0]
        assert top_name.record_id in (3, 4)
        assert top_city.record_id == 4  # the new-york mary wins on city


class TestRandomized:
    def test_differential_against_brute_force(self):
        rng = random.Random(8)
        words = ["alpha", "beta", "gamma", "delta", "epsln", "zeta"]
        records = [
            {
                "a": " ".join(rng.sample(words, 2)),
                "b": rng.choice(words),
            }
            for _ in range(60)
        ]
        matcher = FieldedMatcher(records, {"a": 0.6, "b": 0.4})
        for _ in range(25):
            q = {
                "a": " ".join(rng.sample(words, 2)),
                "b": rng.choice(words),
            }
            tau = rng.choice([0.2, 0.35, 0.5, 0.8])
            assert ids(matcher.match(q, tau)) == ids(
                matcher.brute_force(q, tau)
            ), (q, tau)
