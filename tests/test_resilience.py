"""Tests for the service resilience layer (retry / breaker / admission).

The contract under test, per ``docs/robustness.md``:

* transient backend failures are retried with seeded full-jitter
  backoff and absorbed — results under injected faults are *identical*
  to a fault-free run, with ``retries_total > 0`` proving retries did
  the absorbing;
* the circuit breaker opens after ``threshold`` consecutive failures,
  fails fast while open, and closes through a single half-open probe;
* admission control sheds (never queues) work beyond ``max_inflight``
  and while draining, with ``Retry-After`` guidance in the error;
* drain waits for in-flight queries, then the service refuses new ones.
"""

import threading

import pytest

from repro import (
    ServiceConfig,
    SetCollection,
    SetSimilaritySearcher,
    SimilarityService,
)
from repro.core.errors import (
    CircuitOpenError,
    ConfigurationError,
    ServiceOverloadError,
)
from repro.faults import TransientIOError, use_fault_plan
from repro.obs import metrics as obs_metrics
from repro.service.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionController,
    CircuitBreaker,
    RetryPolicy,
    call_with_retries,
)

TOKEN_SETS = [
    ["data", "cleaning", "matters"],
    ["data", "cleaning"],
    ["query", "processing"],
    ["set", "similarity", "query", "processing"],
    ["data", "quality", "matters"],
    ["similarity", "selection"],
    ["query", "planning", "matters"],
    ["set", "union", "intersection"],
]

QUERIES = [list(tokens) for tokens in TOKEN_SETS]


@pytest.fixture()
def searcher():
    return SetSimilaritySearcher(SetCollection.from_token_sets(TOKEN_SETS))


class _Flaky:
    """Callable failing with TransientIOError the first ``n`` calls."""

    def __init__(self, failures, result="done"):
        self.remaining = failures
        self.result = result
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise TransientIOError("test.site")
        return self.result


class TestRetryPolicy:
    def test_backoff_is_seeded_and_bounded(self):
        a = RetryPolicy(base_delay=0.1, max_delay=0.5, seed=9)
        b = RetryPolicy(base_delay=0.1, max_delay=0.5, seed=9)
        seq_a = [a.backoff(k) for k in range(6)]
        seq_b = [b.backoff(k) for k in range(6)]
        assert seq_a == seq_b
        for k, delay in enumerate(seq_a):
            assert 0.0 <= delay <= min(0.5, 0.1 * 2 ** k)
        # The exponential ceiling caps at max_delay.
        assert max(seq_a) <= 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_success_after_transient_failures(self):
        slept = []
        policy = RetryPolicy(attempts=3, seed=1, sleeper=slept.append)
        flaky = _Flaky(failures=2)
        assert call_with_retries(flaky, policy=policy) == "done"
        assert flaky.calls == 3
        assert len(slept) == 2  # one backoff per retry, via the stub

    def test_budget_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(attempts=2, seed=1, sleeper=lambda _d: None)
        with pytest.raises(TransientIOError):
            call_with_retries(_Flaky(failures=5), policy=policy)

    def test_non_retryable_propagates_immediately(self):
        policy = RetryPolicy(attempts=5, seed=1, sleeper=lambda _d: None)
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            call_with_retries(boom, policy=policy)
        assert len(calls) == 1

    def test_retry_metrics(self):
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()) as reg:
            policy = RetryPolicy(attempts=4, seed=1, sleeper=lambda _d: None)
            call_with_retries(_Flaky(failures=3), policy=policy)
            assert reg.total("retries_total") == 3
            assert reg.get("retry_backoff_seconds").labels().count == 3


class TestCircuitBreaker:
    @staticmethod
    def _broken(threshold=3, reset_seconds=10.0):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            threshold=threshold,
            reset_seconds=reset_seconds,
            clock=lambda: clock["now"],
        )
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _clock = self._broken(threshold=3)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        with pytest.raises(CircuitOpenError) as exc:
            breaker.allow()
        assert exc.value.retry_after > 0

    def test_success_resets_the_failure_streak(self):
        breaker, _clock = self._broken(threshold=3)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        breaker.allow()
        breaker.record_success()
        breaker.allow()
        breaker.record_failure()  # streak restarted: 1 of 3
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_closes_on_success(self):
        breaker, clock = self._broken(threshold=2, reset_seconds=5.0)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        clock["now"] = 6.0
        breaker.allow()  # the half-open probe
        assert breaker.state == BREAKER_HALF_OPEN
        # Only one probe at a time: a second caller is refused.
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.state_name == "closed"

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self._broken(threshold=2, reset_seconds=5.0)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        clock["now"] = 6.0
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN

    def test_state_gauge(self):
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()) as reg:
            breaker, _clock = self._broken(threshold=1)
            breaker.allow()
            breaker.record_failure()
            assert reg.get("breaker_state").labels().value == BREAKER_OPEN


class TestAdmissionController:
    def test_sheds_beyond_max_inflight(self):
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()) as reg:
            admission = AdmissionController(max_inflight=2)
            admission.acquire(2)
            with pytest.raises(ServiceOverloadError) as exc:
                admission.acquire(1)
            assert exc.value.retry_after == 1.0
            counter = reg.get("queries_shed_total")
            assert counter.labels(reason="overload").value == 1
            admission.release(2)
            admission.acquire(1)  # capacity is back

    def test_draining_sheds_everything(self):
        admission = AdmissionController()
        admission.begin_drain()
        with pytest.raises(ServiceOverloadError) as exc:
            admission.acquire(1)
        assert exc.value.retry_after == 5.0
        admission.resume()
        admission.acquire(1)

    def test_drain_waits_for_inflight(self):
        admission = AdmissionController()
        admission.acquire(1)
        released = threading.Event()

        def releaser():
            released.wait(5.0)
            admission.release(1)

        thread = threading.Thread(target=releaser)
        thread.start()
        released.set()
        assert admission.drain(timeout=5.0)
        thread.join()
        assert admission.inflight == 0 and admission.draining

    def test_drain_timeout_reports_false(self):
        admission = AdmissionController()
        admission.acquire(1)
        assert not admission.drain(timeout=0.01)
        admission.release(1)


class TestServiceResilience:
    """The service-level wiring: faults in, identical answers out."""

    @staticmethod
    def _service(searcher, **overrides):
        config = ServiceConfig(
            retry_base_delay=0.0,  # jitter draws collapse to 0: no sleeping
            **overrides,
        )
        return SimilarityService(searcher, config=config)

    def test_batch_exact_under_transient_read_faults(self, searcher):
        with SimilarityService(searcher) as plain:
            baseline = [
                {(r.set_id, round(r.score, 9)) for r in res.result.results}
                for res in plain.search_batch(QUERIES, 0.4)
            ]
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()) as reg:
            with self._service(searcher) as service:
                with use_fault_plan(
                    "seed=11;service.execute:transient:p=0.4"
                ) as plan:
                    results = service.search_batch(QUERIES, 0.4)
            got = [
                {(r.set_id, round(r.score, 9)) for r in res.result.results}
                for res in results
            ]
            assert got == baseline
            assert plan.injected_total() > 0  # faults actually fired...
            assert reg.total("retries_total") > 0  # ...and were retried

    def test_retry_budget_exhaustion_surfaces_the_error(self, searcher):
        with self._service(searcher, retry_attempts=2) as service:
            with use_fault_plan("service.execute:transient:p=1"):
                with pytest.raises(TransientIOError):
                    service.search(["data", "cleaning"], 0.4)

    def test_breaker_opens_and_fails_fast(self, searcher):
        with self._service(
            searcher, retry_attempts=1, breaker_threshold=2
        ) as service:
            with use_fault_plan("service.execute:transient:p=1") as plan:
                for _ in range(2):
                    with pytest.raises(TransientIOError):
                        service.search(["query", "processing"], 0.4)
                fired_before = plan.injected_total()
                # Breaker now open: fails fast without touching the
                # backend (no further injections).
                with pytest.raises(CircuitOpenError):
                    service.search(["query", "processing"], 0.4)
                assert plan.injected_total() == fired_before
            assert service.stats()["breaker_state"] == "open"

    def test_max_inflight_sheds_concurrent_queries(self, searcher):
        with self._service(searcher, max_inflight=1) as service:
            entered = threading.Event()
            unblock = threading.Event()
            original = service._execute_raw

            def slow_execute(*args):
                entered.set()
                unblock.wait(5.0)
                return original(*args)

            service._execute_raw = slow_execute
            worker = threading.Thread(
                target=lambda: service.search(["data", "cleaning"], 0.4)
            )
            worker.start()
            try:
                assert entered.wait(5.0)
                with pytest.raises(ServiceOverloadError):
                    service.search(["query", "processing"], 0.4)
            finally:
                unblock.set()
                worker.join()

    def test_drain_then_refuse(self, searcher):
        with self._service(searcher) as service:
            service.search(["data", "cleaning"], 0.4)
            assert service.drain(timeout=5.0)
            assert service.stats()["draining"]
            with pytest.raises(ServiceOverloadError):
                service.search(["data", "cleaning"], 0.4)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(retry_attempts=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(breaker_threshold=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_inflight=0)

    def test_stats_surface_resilience_state(self, searcher):
        with self._service(searcher) as service:
            stats = service.stats()
            assert stats["inflight"] == 0
            assert stats["draining"] is False
            assert stats["breaker_state"] == "closed"
