"""Tests for the top-k extension (Section X future work)."""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.core.errors import ConfigurationError
from repro.core.topk import TopKSearcher


def brute_topk(searcher, q, k):
    full = searcher.brute_force(q, 1e-9)
    positive = [r for r in full if r.score > 0.0]
    return [(r.set_id, round(r.score, 9)) for r in positive[:k]]


class TestTopKCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 5, 10, 50])
    def test_matches_brute_force(self, searcher, small_vocab, k):
        rng = random.Random(k)
        for _ in range(10):
            q = rng.sample(small_vocab, rng.randint(1, 6))
            got = [
                (r.set_id, round(r.score, 9))
                for r in searcher.top_k(q, k).results
            ]
            assert got == brute_topk(searcher, q, k)

    def test_k_larger_than_matches(self):
        coll = SetCollection.from_token_sets([["a"], ["a", "b"], ["z"]])
        s = SetSimilaritySearcher(coll)
        result = s.top_k(["a"], 100)
        assert set(result.ids()) == {0, 1}  # 'z' has score 0, excluded

    def test_exact_match_ranks_first(self, searcher, small_vocab):
        rng = random.Random(77)
        rec = searcher.collection[rng.randrange(len(searcher.collection))]
        result = searcher.top_k(sorted(rec.tokens), 3)
        assert result.results[0].score == pytest.approx(1.0)

    def test_ties_broken_by_id(self):
        coll = SetCollection.from_token_sets([["a", "b"]] * 4)
        s = SetSimilaritySearcher(coll)
        assert s.top_k(["a", "b"], 2).ids() == [0, 1]

    def test_invalid_k(self, searcher, small_vocab):
        with pytest.raises(ConfigurationError):
            searcher.top_k([small_vocab[0]], 0)

    def test_unseen_tokens_empty(self, searcher):
        assert len(searcher.top_k(["nope-token"], 5)) == 0

    def test_scores_descending(self, searcher, small_vocab):
        rng = random.Random(3)
        q = rng.sample(small_vocab, 5)
        scores = [r.score for r in searcher.top_k(q, 20).results]
        assert scores == sorted(scores, reverse=True)


class TestTopKEfficiency:
    def test_prunes_for_small_k(self, word_searcher, word_database):
        from repro.core.tokenize import QGramTokenizer

        collection, words = word_database
        tok = QGramTokenizer(q=3)
        rng = random.Random(9)
        word = words[rng.randrange(len(words))]
        q = tok.tokens(word)
        result = word_searcher.top_k(q, 1)
        # The dynamic threshold must avoid reading the whole lists.
        assert result.stats.elements_read < result.elements_total

    def test_direct_searcher_use(self, searcher, small_vocab):
        topk = TopKSearcher(searcher.index)
        query = searcher.prepare([small_vocab[0], small_vocab[1]])
        result = topk.search(query, 5)
        assert len(result) <= 5

    def test_without_skip_lists(self, searcher, small_vocab):
        topk = TopKSearcher(searcher.index, use_skip_lists=False)
        query = searcher.prepare([small_vocab[0]])
        got = [(r.set_id, round(r.score, 9)) for r in topk.search(query, 5).results]
        assert got == brute_topk(searcher, [small_vocab[0]], 5)


class TestTopKProperty:
    def test_randomized_consistency(self):
        rng = random.Random(123)
        vocab = [f"w{i}" for i in range(30)]
        sets = [rng.sample(vocab, rng.randint(1, 7)) for _ in range(150)]
        s = SetSimilaritySearcher(SetCollection.from_token_sets(sets))
        for _ in range(30):
            q = rng.sample(vocab, rng.randint(1, 5))
            k = rng.choice([1, 3, 7, 20])
            got = [
                (r.set_id, round(r.score, 9)) for r in s.top_k(q, k).results
            ]
            assert got == brute_topk(s, q, k)
