"""Tests for the user-data loaders."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.tokenize import WordTokenizer
from repro.data.loaders import (
    dump_token_sets,
    iter_lines,
    load_delimited,
    load_lines,
    load_token_sets,
)


class TestLoadLines:
    def test_basic(self, tmp_path):
        path = tmp_path / "strings.txt"
        path.write_text("Main Street\n\nElm Avenue\n")
        coll = load_lines(path)
        assert len(coll) == 2
        assert coll.payload(0) == "Main Street"
        assert coll.frozen

    def test_limit(self, tmp_path):
        path = tmp_path / "strings.txt"
        path.write_text("a\nb\nc\n")
        assert len(load_lines(path, limit=2)) == 2

    def test_custom_tokenizer(self, tmp_path):
        path = tmp_path / "strings.txt"
        path.write_text("alpha beta\n")
        coll = load_lines(path, tokenizer=WordTokenizer())
        assert coll[0].tokens == frozenset({"alpha", "beta"})

    def test_iter_lines_skips_blank(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("a\n   \nb\n")
        assert list(iter_lines(path)) == ["a", "b"]


class TestLoadDelimited:
    CSV = "id,name,city\n1,Jon Smith,Boston\n2,Jane Doe,Chicago\n"

    def test_by_column_name(self, tmp_path):
        path = tmp_path / "people.csv"
        path.write_text(self.CSV)
        coll = load_delimited(path, text_column="name")
        assert len(coll) == 2
        assert coll.payload(0) == "Jon Smith"

    def test_payload_column(self, tmp_path):
        path = tmp_path / "people.csv"
        path.write_text(self.CSV)
        coll = load_delimited(
            path, text_column="name", payload_column="id"
        )
        assert coll.payload(1) == "2"

    def test_by_index_without_header(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("x,hello there\ny,more text\n")
        coll = load_delimited(path, text_column=1, has_header=False)
        assert len(coll) == 2
        assert coll.payload(0) == "hello there"

    def test_tsv(self, tmp_path):
        path = tmp_path / "data.tsv"
        path.write_text("name\tcity\nJon\tNYC\n")
        coll = load_delimited(path, text_column="name", delimiter="\t")
        assert coll.payload(0) == "Jon"

    def test_unknown_column(self, tmp_path):
        path = tmp_path / "people.csv"
        path.write_text(self.CSV)
        with pytest.raises(ConfigurationError):
            load_delimited(path, text_column="nope")

    def test_name_without_header_rejected(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("a,b\n")
        with pytest.raises(ConfigurationError):
            load_delimited(path, text_column="a", has_header=False)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            load_delimited(path, text_column="a")

    def test_ragged_rows_skipped(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,full row\nshort\n2,another\n")
        coll = load_delimited(path, text_column="b")
        assert len(coll) == 2

    def test_limit(self, tmp_path):
        path = tmp_path / "people.csv"
        path.write_text(self.CSV)
        assert len(load_delimited(path, text_column="name", limit=1)) == 1


class TestTokenSets:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sets.txt"
        path.write_text("a b c\nb d\n")
        coll = load_token_sets(path)
        assert coll[0].tokens == frozenset({"a", "b", "c"})
        out = tmp_path / "dump.txt"
        n = dump_token_sets(coll, out)
        assert n == 2
        reloaded = load_token_sets(out)
        assert list(reloaded.token_sets()) == list(coll.token_sets())

    def test_searchable_end_to_end(self, tmp_path):
        from repro import SetSimilaritySearcher

        path = tmp_path / "sets.txt"
        path.write_text("a b\na b c\nx y\n")
        coll = load_token_sets(path)
        searcher = SetSimilaritySearcher(coll)
        assert 0 in searcher.search(["a", "b"], 0.9).ids()
