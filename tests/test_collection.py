"""Unit tests for repro.core.collection."""

import pytest

from repro.core.collection import (
    SetCollection,
    SetRecord,
    collection_summary,
)
from repro.core.errors import ConfigurationError, IndexNotBuiltError
from repro.core.tokenize import WordTokenizer


class TestConstruction:
    def test_from_token_sets(self):
        coll = SetCollection.from_token_sets([["a", "b"], ["b", "c"]])
        assert len(coll) == 2
        assert coll[0].tokens == frozenset({"a", "b"})

    def test_from_token_sets_with_payloads(self):
        coll = SetCollection.from_token_sets(
            [["a"], ["b"]], payloads=["first", "second"]
        )
        assert coll.payload(1) == "second"

    def test_from_strings_default_payload(self):
        coll = SetCollection.from_strings(
            ["main st", "elm ave"], WordTokenizer()
        )
        assert coll.payload(0) == "main st"
        assert coll[0].tokens == frozenset({"main", "st"})

    def test_from_strings_payload_fn(self):
        coll = SetCollection.from_strings(
            ["x"], WordTokenizer(), payload_fn=lambda i, s: (i, s.upper())
        )
        assert coll.payload(0) == (0, "X")

    def test_incremental_ids_dense(self):
        coll = SetCollection()
        ids = [coll.add(["a"]), coll.add(["b"]), coll.add(["c"])]
        assert ids == [0, 1, 2]

    def test_add_after_freeze_rejected(self):
        coll = SetCollection()
        coll.add(["a"])
        coll.freeze()
        with pytest.raises(ConfigurationError):
            coll.add(["b"])

    def test_empty_set_allowed(self):
        coll = SetCollection()
        coll.add([])
        coll.freeze()
        assert len(coll[0]) == 0
        assert coll.length(0) == 0.0

    def test_multiset_counts_preserved(self):
        coll = SetCollection()
        coll.add(["a", "a", "b"])
        coll.freeze()
        assert coll[0].counts == {"a": 2, "b": 1}
        assert coll[0].tokens == frozenset({"a", "b"})


class TestStatistics:
    def test_stats_before_freeze_rejected(self):
        coll = SetCollection()
        coll.add(["a"])
        with pytest.raises(IndexNotBuiltError):
            _ = coll.stats

    def test_stats_cached(self):
        coll = SetCollection.from_token_sets([["a"], ["a", "b"]])
        assert coll.stats is coll.stats

    def test_lengths_indexed_by_id(self):
        coll = SetCollection.from_token_sets([["a"], ["a", "b"]])
        lengths = coll.lengths()
        assert len(lengths) == 2
        assert lengths[1] > lengths[0]

    def test_vocabulary_size(self):
        coll = SetCollection.from_token_sets([["a", "b"], ["b", "c"]])
        assert coll.vocabulary_size() == 3

    def test_iteration_yields_records(self):
        coll = SetCollection.from_token_sets([["a"], ["b"]])
        recs = list(coll)
        assert all(isinstance(r, SetRecord) for r in recs)
        assert [r.set_id for r in recs] == [0, 1]

    def test_token_sets_view(self):
        coll = SetCollection.from_token_sets([["a"], ["b"]])
        assert list(coll.token_sets()) == [
            frozenset({"a"}), frozenset({"b"}),
        ]


class TestSummary:
    def test_summary_fields(self):
        coll = SetCollection.from_token_sets([["a"], ["a", "b", "c"]])
        s = collection_summary(coll)
        assert s["num_sets"] == 2.0
        assert s["vocabulary"] == 3.0
        assert s["mean_set_size"] == pytest.approx(2.0)
        assert s["max_set_size"] == 3.0
        assert s["max_length"] >= s["mean_length"] > 0

    def test_summary_empty_collection(self):
        coll = SetCollection()
        coll.freeze()
        s = collection_summary(coll)
        assert s["num_sets"] == 0.0
        assert s["mean_set_size"] == 0.0

    def test_repr_states(self):
        coll = SetCollection()
        assert "building" in repr(coll)
        coll.freeze()
        assert "frozen" in repr(coll)
