"""Tests for cost estimation and automatic algorithm choice."""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.core.analysis import (
    choose_algorithm,
    estimate_cost,
    explain_choice,
    window_count,
)


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(21)
    vocab = [f"t{i}" for i in range(30)]
    sets = [rng.sample(vocab, rng.randint(1, 7)) for _ in range(300)]
    coll = SetCollection.from_token_sets(sets)
    return SetSimilaritySearcher(coll), vocab


class TestWindowCount:
    def test_full_window_is_list_length(self, setup):
        searcher, vocab = setup
        token = vocab[0]
        n = searcher.index.list_length(token)
        assert window_count(searcher.index, token, 0.0, 1e9) == n

    def test_empty_window(self, setup):
        searcher, vocab = setup
        assert window_count(searcher.index, vocab[0], 1e8, 1e9) == 0

    def test_unknown_token(self, setup):
        searcher, _v = setup
        assert window_count(searcher.index, "zzz", 0.0, 1e9) == 0

    def test_matches_actual_scan(self, setup):
        searcher, vocab = setup
        token = vocab[3]
        lo, hi = 2.0, 6.0
        cursor = searcher.index.cursor(token)
        actual = 0
        while not cursor.exhausted():
            ln, _ = cursor.next()
            if lo <= ln <= hi:
                actual += 1
        assert window_count(searcher.index, token, lo, hi) == actual


class TestEstimate:
    def test_window_shrinks_with_tau(self, setup):
        searcher, vocab = setup
        query = searcher.prepare(vocab[:4])
        low = estimate_cost(searcher.index, query, 0.3)
        high = estimate_cost(searcher.index, query, 0.95)
        assert high.window_postings <= low.window_postings
        assert 0.0 <= high.window_fraction <= low.window_fraction <= 1.0

    def test_predicts_sf_reads(self, setup):
        # The estimate upper-bounds what SF actually reads in-window
        # (SF can stop earlier thanks to λ and candidate pruning).
        searcher, vocab = setup
        rng = random.Random(4)
        for _ in range(10):
            q = rng.sample(vocab, 4)
            query = searcher.prepare(q)
            est = estimate_cost(searcher.index, query, 0.8)
            result = searcher.search(q, 0.8, algorithm="sf")
            slack = 16 * est.num_lists  # skip-list landing tails
            assert result.stats.elements_read <= est.window_postings + slack

    def test_unseen_tokens_ignored(self, setup):
        searcher, vocab = setup
        query = searcher.prepare([vocab[0], "zzz"])
        est = estimate_cost(searcher.index, query, 0.5)
        assert est.num_lists == 1


class TestChoice:
    def test_low_threshold_prefers_merge(self, setup):
        searcher, vocab = setup
        query = searcher.prepare(vocab[:4])
        # At a tiny tau the window covers ~everything.
        assert choose_algorithm(searcher.index, query, 0.01) == "sort-by-id"

    def test_default_is_sf(self, setup):
        searcher, vocab = setup
        query = searcher.prepare(vocab[:4])
        assert choose_algorithm(searcher.index, query, 0.8) in ("sf", "ita")

    def test_no_id_lists_falls_back_to_sf(self, setup):
        searcher, vocab = setup
        from repro.storage.invlist import InvertedIndex

        lean = InvertedIndex(
            searcher.collection, with_id_lists=False, with_hash_index=False
        )
        query = searcher.prepare(vocab[:4])
        assert choose_algorithm(lean, query, 0.01) == "sf"

    def test_auto_spec_returns_correct_answers(self, setup):
        searcher, vocab = setup
        rng = random.Random(8)
        for tau in (0.05, 0.5, 0.95):
            q = rng.sample(vocab, 4)
            auto = {
                (r.set_id, round(r.score, 9))
                for r in searcher.search(q, tau, algorithm="auto").results
            }
            ref = {
                (r.set_id, round(r.score, 9))
                for r in searcher.brute_force(q, tau)
            }
            assert auto == ref

    def test_explain_choice_fields(self, setup):
        searcher, vocab = setup
        query = searcher.prepare(vocab[:3])
        info = explain_choice(searcher.index, query, 0.8)
        assert set(info) == {
            "num_lists", "total_postings", "window_postings",
            "window_fraction", "algorithm",
        }

    def test_explain_query_text(self, setup):
        from repro.core.analysis import explain_query

        searcher, vocab = setup
        query = searcher.prepare([vocab[0], vocab[1], "zz-unseen"])
        text = explain_query(searcher.index, query, 0.8)
        assert "length window" in text
        assert "λ" in text
        assert "no postings" in text  # the unseen token's line
        assert "chosen algorithm" in text
        # One numbered line per query token.
        assert text.count("idf²") == 2
