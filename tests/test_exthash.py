"""Unit + property tests for extendible hashing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StorageError
from repro.storage.exthash import ExtendibleHash
from repro.storage.pages import IOStats


class TestBasics:
    def test_insert_and_probe(self):
        h = ExtendibleHash(bucket_capacity=4)
        h.insert(10, "a")
        found, value = h.probe(10)
        assert found and value == "a"

    def test_probe_missing(self):
        h = ExtendibleHash()
        found, value = h.probe(99)
        assert not found and value is None

    def test_overwrite(self):
        h = ExtendibleHash()
        h.insert(1, "x")
        h.insert(1, "y")
        assert h.get(1) == "y"
        assert len(h) == 1

    def test_get_missing_raises(self):
        h = ExtendibleHash()
        with pytest.raises(KeyError):
            h.get(5)

    def test_contains(self):
        h = ExtendibleHash()
        h.insert(3, None)
        assert 3 in h
        assert 4 not in h

    def test_invalid_capacity(self):
        with pytest.raises(StorageError):
            ExtendibleHash(bucket_capacity=0)


class TestSplitting:
    def test_directory_doubles_under_load(self):
        h = ExtendibleHash(bucket_capacity=2)
        for i in range(100):
            h.insert(i, i)
        assert h.global_depth > 1
        assert h.num_buckets > 2
        for i in range(100):
            assert h.get(i) == i

    def test_load_factor_reasonable(self):
        h = ExtendibleHash(bucket_capacity=8)
        for i in range(1000):
            h.insert(i, i)
        assert 0.2 < h.load_factor() <= 1.0

    def test_size_counts_full_buckets(self):
        h = ExtendibleHash(bucket_capacity=4)
        h.insert(1, 1)
        # One entry still pays for whole bucket pages + directory.
        assert h.size_bytes() >= 4 * 16


class TestProbeCost:
    def test_exactly_one_random_io_per_probe(self):
        h = ExtendibleHash(bucket_capacity=2)
        for i in range(50):
            h.insert(i, i)
        stats = IOStats()
        h.probe(25, stats)
        h.probe(9999, stats)  # miss also costs one I/O
        assert stats.random_pages == 2
        assert stats.hash_probes == 2


class TestAgainstDict:
    @given(
        st.lists(
            st.tuples(st.integers(0, 10_000), st.integers(-50, 50)),
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_dict_semantics(self, pairs):
        h = ExtendibleHash(bucket_capacity=3)
        reference = {}
        for k, v in pairs:
            h.insert(k, v)
            reference[k] = v
        assert len(h) == len(reference)
        for k, v in reference.items():
            assert h.get(k) == v
        for k in range(10_001, 10_010):
            assert (k in h) == (k in reference)

    def test_large_random_workload(self):
        rng = random.Random(7)
        h = ExtendibleHash(bucket_capacity=8)
        reference = {}
        for _ in range(5000):
            k = rng.randrange(100_000)
            v = rng.random()
            h.insert(k, v)
            reference[k] = v
        misses = 0
        for k in rng.sample(range(100_000), 500):
            found, value = h.probe(k)
            assert found == (k in reference)
            if found:
                assert value == reference[k]
            else:
                misses += 1
        assert misses > 0  # the sample actually exercised the miss path
