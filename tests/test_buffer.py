"""Tests for the LRU buffer pool and buffered I/O accounting."""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.core.errors import ConfigurationError
from repro.storage.buffer import BufferedIOStats, LRUBufferPool


class TestLRUBufferPool:
    def test_miss_then_hit(self):
        pool = LRUBufferPool(4)
        assert pool.access("a") is False
        assert pool.access("a") is True

    def test_eviction_order(self):
        pool = LRUBufferPool(2)
        pool.access("a")
        pool.access("b")
        pool.access("a")  # refresh a
        pool.access("c")  # evicts b
        assert "a" in pool and "c" in pool and "b" not in pool

    def test_capacity_enforced(self):
        pool = LRUBufferPool(3)
        for k in range(10):
            pool.access(k)
        assert len(pool) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            LRUBufferPool(0)

    def test_clear(self):
        pool = LRUBufferPool(2)
        pool.access("x")
        pool.clear()
        assert "x" not in pool


class TestBufferedIOStats:
    def test_repeat_page_absorbed(self):
        stats = BufferedIOStats(8)
        stats.charge_random_page(key=("f", 1))
        stats.charge_random_page(key=("f", 1))
        assert stats.random_pages == 1
        assert stats.buffer_hits == 1

    def test_keyless_charges_always_billed(self):
        stats = BufferedIOStats(8)
        stats.charge_random_page()
        stats.charge_random_page()
        assert stats.random_pages == 2
        assert stats.buffer_hits == 0

    def test_sequential_pages_buffered_too(self):
        stats = BufferedIOStats(8)
        stats.charge_sequential_page(key=("f", 0))
        stats.charge_sequential_page(key=("f", 0))
        assert stats.sequential_pages == 1
        assert stats.buffer_hits == 1

    def test_eviction_causes_rebill(self):
        stats = BufferedIOStats(1)
        stats.charge_random_page(key=("f", 1))
        stats.charge_random_page(key=("f", 2))  # evicts page 1
        stats.charge_random_page(key=("f", 1))  # miss again
        assert stats.random_pages == 3

    def test_snapshot_includes_hits(self):
        stats = BufferedIOStats(4)
        stats.charge_random_page(key=("f", 1))
        stats.charge_random_page(key=("f", 1))
        assert stats.snapshot()["buffer_hits"] == 1

    def test_reset_clears_pool(self):
        stats = BufferedIOStats(4)
        stats.charge_random_page(key=("f", 1))
        stats.reset()
        stats.charge_random_page(key=("f", 1))
        assert stats.random_pages == 1
        assert stats.buffer_hits == 0

    def test_snapshot_covers_base_counters(self):
        # Regression: iterating self.__slots__ saw only the subclass's
        # own slots, so a buffered snapshot dropped every base counter.
        stats = BufferedIOStats(4)
        stats.charge_element(3)
        stats.charge_random_page(key=("f", 1))
        snap = stats.snapshot()
        assert set(snap) == set(BufferedIOStats.COUNTER_FIELDS)
        assert snap["elements_read"] == 3
        assert snap["random_pages"] == 1

    def test_merge_buffered_into_plain(self):
        from repro.storage.pages import IOStats

        plain, buffered = IOStats(), BufferedIOStats(4)
        plain.charge_element(2)
        buffered.charge_element(5)
        buffered.charge_random_page(key=("f", 1))
        buffered.charge_random_page(key=("f", 1))  # one hit
        plain.add(buffered)
        # The plain ledger has no buffer_hits counter; everything it
        # does track accumulates.
        assert plain.elements_read == 7
        assert plain.random_pages == 1

    def test_merge_plain_into_buffered(self):
        from repro.storage.pages import IOStats

        plain, buffered = IOStats(), BufferedIOStats(4)
        plain.charge_element(2)
        buffered.charge_random_page(key=("f", 1))
        buffered.charge_random_page(key=("f", 1))
        buffered.add(plain)
        # Counters the plain ledger lacks contribute zero, not AttributeError.
        assert buffered.elements_read == 2
        assert buffered.buffer_hits == 1


class TestBufferedSearch:
    @pytest.fixture(scope="class")
    def searcher(self):
        rng = random.Random(9)
        vocab = [f"t{i}" for i in range(40)]
        sets = [rng.sample(vocab, rng.randint(1, 8)) for _ in range(400)]
        return SetSimilaritySearcher(SetCollection.from_token_sets(sets))

    def test_answers_unchanged(self, searcher):
        rng = random.Random(10)
        for _ in range(10):
            q = rng.sample([f"t{i}" for i in range(40)], 4)
            cold = searcher.search(q, 0.6, algorithm="ta")
            warm = searcher.search(
                q, 0.6, algorithm="ta", buffer_pool_pages=256
            )
            assert cold.ids() == warm.ids()

    def test_buffering_reduces_ta_random_io(self, searcher):
        # The paper's §VIII-A remark: buffering favors TA/iTA.
        rng = random.Random(11)
        cold_total = warm_total = hits = 0
        for _ in range(10):
            q = rng.sample([f"t{i}" for i in range(40)], 5)
            cold = searcher.search(q, 0.6, algorithm="ta")
            warm = searcher.search(
                q, 0.6, algorithm="ta", buffer_pool_pages=512
            )
            cold_total += cold.stats.random_pages
            warm_total += warm.stats.random_pages
            hits += warm.stats.buffer_hits
        assert warm_total < cold_total
        assert hits > 0

    def test_engine_spec_suffix(self, searcher):
        from repro.eval.harness import parse_engine_spec

        name, opts = parse_engine_spec("ta-buf256")
        assert name == "ta"
        assert opts == {"buffer_pool_pages": 256}
        name, opts = parse_engine_spec("sf-nlb-buf64")
        assert name == "sf"
        assert opts == {
            "use_length_bounds": False,
            "buffer_pool_pages": 64,
        }
