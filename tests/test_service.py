"""Tests for the concurrent query service layer (``repro.service``).

The contract under test, per ``docs/service.md``:

* service answers are bit-identical to direct searcher calls when no
  deadline fires (including cached replays and thread batches);
* caches invalidate on any index mutation, with no explicit flush;
* a deadline miss degrades to SF at a tightened threshold and the
  result is *flagged*, never silent, and never cached;
* the HTTP endpoint round-trips all of the above as JSON.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import (
    QGramTokenizer,
    ServiceConfig,
    SetCollection,
    SetSimilaritySearcher,
    SimilarityService,
    UpdatableSearcher,
)
from repro.core.errors import ConfigurationError, EmptyQueryError
from repro.data.synthetic import generate_word_database
from repro.obs import metrics as obs_metrics
from repro.service import (
    DEGRADED_ALGORITHM,
    GenerationLRUCache,
    ServiceHTTPServer,
    result_cache_key,
)

TOKEN_SETS = [
    ["data", "cleaning", "matters"],
    ["data", "cleaning"],
    ["query", "processing"],
    ["set", "similarity", "query", "processing"],
    ["data", "quality", "matters"],
]


@pytest.fixture()
def searcher():
    return SetSimilaritySearcher(SetCollection.from_token_sets(TOKEN_SETS))


@pytest.fixture()
def service(searcher):
    with SimilarityService(searcher) as svc:
        yield svc


def ids_and_scores(results):
    return [(r.set_id, r.score) for r in results]


class TestGenerationLRUCache:
    def test_roundtrip_same_version(self):
        cache = GenerationLRUCache(4)
        cache.put("k", (1,), "value")
        assert cache.get("k", (1,)) == "value"
        assert cache.stats()["hits"] == 1

    def test_version_change_invalidates(self):
        cache = GenerationLRUCache(4)
        cache.put("k", (1,), "stale")
        assert cache.get("k", (2,)) is None
        assert cache.stats()["invalidations"] == 1
        assert cache.stats()["size"] == 0  # the stale entry is evicted

    def test_capacity_evicts_least_recently_used(self):
        cache = GenerationLRUCache(2)
        cache.put("a", (1,), 1)
        cache.put("b", (1,), 2)
        cache.get("a", (1,))  # refresh a
        cache.put("c", (1,), 3)  # evicts b
        assert cache.get("b", (1,)) is None
        assert cache.get("a", (1,)) == 1
        assert cache.get("c", (1,)) == 3

    def test_result_key_ignores_token_order_and_duplicates(self):
        assert result_cache_key(("a", "b", "b"), 0.5, "sf") == \
            result_cache_key(("b", "a"), 0.5, "sf")
        assert result_cache_key(("a",), 0.5, "sf") != \
            result_cache_key(("a",), 0.6, "sf")


class TestServiceConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_workers=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(degrade_tighten=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(degrade_tighten=1.5)
        with pytest.raises(ConfigurationError):
            ServiceConfig(deadline_seconds=0.0)

    def test_degraded_tau_moves_toward_one(self):
        config = ServiceConfig(degrade_tighten=0.5)
        assert config.degraded_tau(0.6) == pytest.approx(0.8)
        assert config.degraded_tau(1.0) == pytest.approx(1.0)

    def test_backend_type_is_validated(self):
        with pytest.raises(ConfigurationError):
            SimilarityService(object())


class TestSingleQuery:
    def test_bit_identical_to_direct_search(self, searcher, service):
        direct = searcher.search(["data", "cleaning"], 0.4, algorithm="sf")
        served = service.search(["data", "cleaning"], 0.4)
        assert ids_and_scores(served.results) == \
            ids_and_scores(direct.results)
        assert not served.cached and not served.degraded

    def test_repeat_is_cached_and_identical(self, service):
        first = service.search(["data", "cleaning"], 0.4)
        second = service.search(["data", "cleaning"], 0.4)
        assert second.cached
        assert ids_and_scores(second.results) == \
            ids_and_scores(first.results)
        assert service.stats()["result_cache"]["hits"] == 1

    def test_cache_distinguishes_threshold_and_algorithm(self, service):
        service.search(["data", "cleaning"], 0.4)
        assert not service.search(["data", "cleaning"], 0.5).cached
        assert not service.search(
            ["data", "cleaning"], 0.4, algorithm="inra"
        ).cached

    def test_empty_query_raises(self, service):
        with pytest.raises(EmptyQueryError):
            service.search([], 0.5)

    def test_caches_can_be_disabled(self, searcher):
        config = ServiceConfig(result_cache_size=0, prepared_cache_size=0)
        with SimilarityService(searcher, config=config) as svc:
            svc.search(["data", "cleaning"], 0.4)
            assert not svc.search(["data", "cleaning"], 0.4).cached
            assert svc.stats()["result_cache"] is None

    def test_search_text_requires_tokenizer(self, searcher):
        with SimilarityService(searcher) as svc:
            with pytest.raises(ConfigurationError):
                svc.search_text("data cleaning", 0.5)


class TestInvalidation:
    def test_collection_generation_counts_mutations(self):
        collection = SetCollection()
        assert collection.generation == 0
        collection.add(["a", "b"])
        collection.add(["b", "c"])
        assert collection.generation == 2
        collection.freeze()
        with pytest.raises(ConfigurationError):
            collection.add(["d"])
        assert collection.generation == 2  # refused adds don't count

    def test_updatable_insert_invalidates_cache(self):
        updatable = UpdatableSearcher(TOKEN_SETS)
        with SimilarityService(updatable) as service:
            before = service.search(["data", "cleaning"], 0.3)
            assert service.search(["data", "cleaning"], 0.3).cached

            updatable.add(["data", "cleaning", "fresh"])

            after = service.search(["data", "cleaning"], 0.3)
            assert not after.cached  # version changed -> stale entry dropped
            new_id = len(TOKEN_SETS)
            assert new_id in {r.set_id for r in after.results}
            assert new_id not in {r.set_id for r in before.results}
            assert service.stats()["result_cache"]["invalidations"] >= 1

    def test_explicit_invalidate_clears_both_caches(self, service):
        service.search(["data", "cleaning"], 0.4)
        assert service.invalidate() >= 2  # one result + one prepared entry
        assert not service.search(["data", "cleaning"], 0.4).cached


class TestBatch:
    BATCH = [
        ["data", "cleaning"],
        ["query", "processing"],
        ["data", "quality", "matters"],
        ["data", "cleaning"],  # duplicate of slot 0
    ]

    def test_threads_identical_to_sequential(self, searcher, service):
        batch = service.search_batch(self.BATCH, 0.3)
        for tokens, served in zip(self.BATCH, batch):
            direct = searcher.search(tokens, 0.3, algorithm="sf")
            assert ids_and_scores(served.results) == \
                ids_and_scores(direct.results)

    def test_duplicates_coalesce(self, service):
        batch = service.search_batch(self.BATCH, 0.3)
        assert not batch[0].coalesced
        assert batch[3].coalesced
        assert ids_and_scores(batch[3].results) == \
            ids_and_scores(batch[0].results)
        assert service.stats()["coalesced"] == 1

    def test_cache_hits_replay_in_batches(self, service):
        service.search(["data", "cleaning"], 0.3)
        batch = service.search_batch(self.BATCH, 0.3)
        assert batch[0].cached

    def test_empty_query_becomes_error_slot(self, service):
        batch = service.search_batch([["data"], []], 0.3)
        assert batch[0].ok
        assert not batch[1].ok
        assert batch[1].results == []

    def test_shared_strategy_same_answers(self, searcher, service):
        batch = service.search_batch(self.BATCH, 0.3, strategy="shared")
        for tokens, served in zip(self.BATCH, batch):
            direct = searcher.search(tokens, 0.3, algorithm="sf")
            assert [r.set_id for r in served.results] == \
                [r.set_id for r in direct.results]
            for got, want in zip(served.results, direct.results):
                assert got.score == pytest.approx(want.score)

    def test_auto_strategy_valid(self, service):
        batch = service.search_batch(self.BATCH, 0.3, strategy="auto")
        assert all(r.ok for r in batch)

    def test_unknown_strategy_rejected(self, service):
        with pytest.raises(ConfigurationError):
            service.search_batch(self.BATCH, 0.3, strategy="bogus")

    def test_locality_sort_does_not_change_answers(self, searcher):
        config = ServiceConfig(locality_sort=False)
        with SimilarityService(searcher, config=config) as unsorted:
            with SimilarityService(searcher) as sorted_svc:
                a = unsorted.search_batch(self.BATCH, 0.3)
                b = sorted_svc.search_batch(self.BATCH, 0.3)
        for x, y in zip(a, b):
            assert ids_and_scores(x.results) == ids_and_scores(y.results)


class TestBatchRandomized:
    def test_large_batch_matches_sequential(self):
        collection, _ = generate_word_database(
            num_records=400, vocabulary_size=250, seed=11
        )
        searcher = SetSimilaritySearcher(collection)
        queries = [list(rec.tokens) for rec in collection][:60]
        with SimilarityService(
            searcher, config=ServiceConfig(max_workers=4)
        ) as service:
            for strategy in ("threads", "shared", "auto"):
                batch = service.search_batch(
                    queries, 0.7, strategy=strategy
                )
                for tokens, served in zip(queries, batch):
                    direct = searcher.search(tokens, 0.7, algorithm="sf")
                    assert [r.set_id for r in served.results] == \
                        [r.set_id for r in direct.results], strategy


class TestDeadline:
    @staticmethod
    def _slow_service(searcher, primary_sleep, fallback_sleep=0.0):
        """A service whose primary algorithm is artificially slow."""
        service = SimilarityService(
            searcher, config=ServiceConfig(algorithm="nra")
        )
        backend = service._backend
        original = backend.execute

        def slow_execute(tokens, prepared, tau, algorithm):
            time.sleep(
                fallback_sleep
                if algorithm == DEGRADED_ALGORITHM
                else primary_sleep
            )
            return original(tokens, prepared, tau, algorithm)

        backend.execute = slow_execute
        return service

    def test_deadline_miss_degrades_and_flags(self, searcher):
        with self._slow_service(searcher, primary_sleep=1.5) as service:
            result = service.search(["data", "cleaning"], 0.4, deadline=0.05)
        assert result.degraded
        assert result.degraded_tau == pytest.approx(
            service.config.degraded_tau(0.4)
        )
        assert result.ok  # degraded is not an error
        stats = service.stats()
        assert stats["degraded"] == 1
        assert stats["deadline_misses"] == 1

    def test_degraded_answers_are_subset_at_tightened_tau(self, searcher):
        with self._slow_service(searcher, primary_sleep=1.5) as service:
            degraded = service.search(
                ["data", "cleaning"], 0.4, deadline=0.05
            )
        exact = searcher.search(["data", "cleaning"], 0.4, algorithm="sf")
        exact_ids = {r.set_id for r in exact.results}
        for r in degraded.results:
            assert r.set_id in exact_ids
            assert r.score >= degraded.degraded_tau - 1e-9

    def test_degraded_result_never_cached(self, searcher):
        with self._slow_service(searcher, primary_sleep=1.5) as service:
            service.search(["data", "cleaning"], 0.4, deadline=0.05)
            # Without a deadline the slow primary runs to completion;
            # the answer must be freshly computed, not a degraded replay.
            follow_up = service.search(["data", "cleaning"], 0.4)
        assert not follow_up.cached
        assert not follow_up.degraded

    def test_late_primary_adopted_over_fallback(self, searcher):
        # Primary outlives the deadline but finishes while the (very
        # slow) fallback runs: the exact answer must win, unflagged.
        with self._slow_service(
            searcher, primary_sleep=0.1, fallback_sleep=1.0
        ) as service:
            result = service.search(["data", "cleaning"], 0.4, deadline=0.02)
        assert not result.degraded
        direct = searcher.search(["data", "cleaning"], 0.4, algorithm="nra")
        assert ids_and_scores(result.results) == \
            ids_and_scores(direct.results)

    def test_no_deadline_runs_inline(self, searcher):
        with SimilarityService(searcher) as service:
            service.search(["data", "cleaning"], 0.4)
            assert service._executor is None  # no pool was ever started


class TestConcurrentUse:
    def test_parallel_searches_match_sequential(self, searcher):
        queries = [list(rec.tokens) for rec in searcher.collection]
        expected = [
            ids_and_scores(searcher.search(q, 0.5, algorithm="sf").results)
            for q in queries
        ]
        with SimilarityService(searcher) as service:
            got = [None] * len(queries)
            errors = []

            def worker(i):
                try:
                    res = service.search(queries[i], 0.5)
                    got[i] = ids_and_scores(res.results)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert got == expected


class TestServiceMetrics:
    def test_cache_hit_and_miss_counters(self, service):
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()) as reg:
            service.search(["data", "cleaning"], 0.5)
            service.search(["data", "cleaning"], 0.5)
            hits = reg.get("cache_hits_total")
            misses = reg.get("cache_misses_total")
            assert hits.labels(cache="result").value == 1
            assert misses.labels(cache="result").value == 1
            assert reg.total("service_queries_total") == 2
            latency = reg.get("service_request_latency_seconds")
            # Cache hits are observed too — the histogram covers every
            # answered request, not just index executions.
            assert latency.labels().count == 2

    def test_deadline_degradation_counters(self, searcher):
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()) as reg:
            slow = TestDeadline._slow_service(searcher, primary_sleep=1.5)
            with slow as service:
                result = service.search(
                    ["data", "cleaning"], 0.4, deadline=0.05
                )
            assert result.degraded
            assert reg.total("deadline_degradations_total") == 1
            assert reg.total("deadline_misses_total") == 1

    def test_disabled_registry_stays_empty(self, service):
        service.search(["data", "cleaning"], 0.5)
        assert obs_metrics.get_registry().snapshot() == {}


class TestHTTPServer:
    @pytest.fixture()
    def server(self):
        tokenizer = QGramTokenizer()
        collection = SetCollection.from_strings(
            ["Main Street", "Maine Street", "Elm Avenue"], tokenizer
        )
        service = SimilarityService(
            SetSimilaritySearcher(collection), tokenizer=tokenizer
        )
        with ServiceHTTPServer(service, port=0) as server:
            yield server
        service.close()

    @staticmethod
    def _post(url, body):
        request = urllib.request.Request(
            url, data=json.dumps(body).encode("utf-8")
        )
        with urllib.request.urlopen(request, timeout=10) as resp:
            return json.loads(resp.read())

    @staticmethod
    def _get(url):
        with urllib.request.urlopen(url, timeout=10) as resp:
            return json.loads(resp.read())

    def test_healthz(self, server):
        assert self._get(server.url + "/healthz") == {"ok": True}

    def test_search_by_text(self, server):
        body = self._post(
            server.url + "/search",
            {"text": "Main Stret", "threshold": 0.5},
        )
        assert body["ok"] and not body["degraded"]
        assert body["results"][0]["payload"] == "Main Street"

    def test_search_by_tokens_and_cache_flag(self, server):
        tokens = server.service.tokenizer.tokens("Elm Avenue")
        request = {"tokens": tokens, "threshold": 0.5}
        first = self._post(server.url + "/search", request)
        second = self._post(server.url + "/search", request)
        assert not first["cached"] and second["cached"]
        assert first["results"] == second["results"]

    def test_batch_mixed_queries(self, server):
        body = self._post(
            server.url + "/batch",
            {
                "queries": ["Main Street", "Elm Avenu", "Main Street"],
                "threshold": 0.5,
            },
        )
        assert body["ok"]
        assert len(body["results"]) == 3
        assert body["results"][0]["results"] == \
            body["results"][2]["results"]

    def test_stats_endpoint(self, server):
        self._post(
            server.url + "/search", {"text": "Main", "threshold": 0.5}
        )
        stats = self._get(server.url + "/stats")
        assert stats["queries_served"] >= 1

    def test_bad_request_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/search", data=b'{"threshold": 0.5}'
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10)
        assert exc.value.code == 400

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(server.url + "/nope", timeout=10)
        assert exc.value.code == 404

    def test_metrics_endpoint_scrapes_prometheus_text(self, server):
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()):
            self._post(
                server.url + "/search",
                {"text": "Main Stret", "threshold": 0.5},
            )
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=10
            ) as resp:
                content_type = resp.headers["Content-Type"]
                text = resp.read().decode("utf-8")
        assert content_type == obs_metrics.PROMETHEUS_CONTENT_TYPE
        # The documented families, in valid exposition shape: HELP/TYPE
        # headers, labeled counters, cumulative histogram buckets.
        assert "# TYPE queries_total counter" in text
        assert 'elements_read_total{algo="sf"}' in text
        assert 'query_latency_seconds_bucket{algo="sf",le="+Inf"} 1' in text
        assert "service_request_latency_seconds_count 1" in text
        assert 'http_requests_total{path="/search"}' in text

    def test_metrics_endpoint_empty_when_disabled(self, server):
        with urllib.request.urlopen(
            server.url + "/metrics", timeout=10
        ) as resp:
            assert resp.status == 200
            assert resp.read() == b""


class TestHTTPResilience:
    """The failure-path HTTP contract: 503 when shedding, JSON 500 on
    unexpected handler errors — never a raw traceback on the socket."""

    @pytest.fixture()
    def server(self):
        tokenizer = QGramTokenizer()
        collection = SetCollection.from_strings(
            ["Main Street", "Maine Street", "Elm Avenue"], tokenizer
        )
        service = SimilarityService(
            SetSimilaritySearcher(collection), tokenizer=tokenizer
        )
        with ServiceHTTPServer(service, port=0) as server:
            yield server
        service.close()

    @staticmethod
    def _post_raw(url, body):
        request = urllib.request.Request(
            url, data=json.dumps(body).encode("utf-8")
        )
        return urllib.request.urlopen(request, timeout=10)

    def test_draining_service_returns_503_with_retry_after(self, server):
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()) as reg:
            server.service.drain(timeout=5.0)
            with pytest.raises(urllib.error.HTTPError) as exc:
                self._post_raw(
                    server.url + "/search",
                    {"text": "Main", "threshold": 0.5},
                )
            assert exc.value.code == 503
            assert exc.value.headers["Retry-After"] == "5"
            body = json.loads(exc.value.read())
            assert body["overloaded"] and not body["ok"]
            errors = reg.get("http_errors_total")
            assert errors.labels(status="503").value == 1
            shed = reg.get("queries_shed_total")
            assert shed.labels(reason="draining").value == 1

    def test_unexpected_error_returns_json_500(self, server):
        def explode(*_args, **_kwargs):
            raise RuntimeError("wiring gone bad")

        server.service.search = explode
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()) as reg:
            with pytest.raises(urllib.error.HTTPError) as exc:
                self._post_raw(
                    server.url + "/search",
                    {"text": "Main", "threshold": 0.5},
                )
            assert exc.value.code == 500
            body = json.loads(exc.value.read())
            # The type is surfaced, the message is withheld.
            assert body["error"] == "internal error (RuntimeError)"
            assert "wiring" not in json.dumps(body)
            errors = reg.get("http_errors_total")
            assert errors.labels(status="500").value == 1

    def test_resumed_service_serves_again(self, server):
        server.service.drain(timeout=5.0)
        server.service._admission.resume()
        body = TestHTTPServer._post(
            server.url + "/search", {"text": "Main", "threshold": 0.5}
        )
        assert body["ok"]
