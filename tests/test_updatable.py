"""Tests for the updatable (epoch-based) searcher."""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.core.errors import ConfigurationError
from repro.core.updatable import UpdatableSearcher


def answers(results):
    return {(r.set_id, round(r.score, 9)) for r in results}


class TestBasics:
    def test_initial_build_searches(self):
        u = UpdatableSearcher([["a", "b"], ["b", "c"]])
        assert 0 in u.search(["a", "b"], 0.9).ids()

    def test_insert_visible_immediately(self):
        u = UpdatableSearcher([["a", "b"]], auto_rebuild_fraction=1.0)
        new_id = u.add(["x", "y"])
        assert new_id == 1
        assert new_id in u.search(["x", "y"], 0.5).ids()

    def test_payloads(self):
        u = UpdatableSearcher([["a"]], payloads=["first"])
        u.add(["b"], payload="second")
        assert u.payload(0) == "first"
        assert u.payload(1) == "second"

    def test_len_and_pending(self):
        u = UpdatableSearcher([["a"], ["b"]], auto_rebuild_fraction=1.0)
        assert len(u) == 2 and u.pending == 0
        u.add(["c"])
        assert len(u) == 3 and u.pending == 1

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            UpdatableSearcher([["a"]], auto_rebuild_fraction=0.0)

    def test_empty_start(self):
        u = UpdatableSearcher()
        u.add(["a", "b"])
        assert 0 in u.search(["a", "b"], 0.5).ids()


class TestEpochSemantics:
    def test_scores_use_epoch_stats_before_rebuild(self):
        # Before a rebuild, pending sets are scored with the old snapshot:
        # a token unseen at snapshot time keeps its default (max) idf.
        u = UpdatableSearcher([["a", "b"], ["a", "c"]],
                              auto_rebuild_fraction=1.0)
        snapshot = u.stats_epoch
        u.add(["a", "b"])  # duplicate of set 0 under the old stats
        result = u.search(["a", "b"], 0.99)
        assert set(result.ids()) == {0, 2}
        assert u.stats_epoch is snapshot  # epoch unchanged

    def test_rebuild_matches_fresh_build(self):
        rng = random.Random(12)
        vocab = [f"t{i}" for i in range(20)]
        initial = [rng.sample(vocab, rng.randint(1, 5)) for _ in range(50)]
        additions = [rng.sample(vocab, rng.randint(1, 5)) for _ in range(20)]
        u = UpdatableSearcher(initial, auto_rebuild_fraction=1.0)
        for s in additions:
            u.add(s)
        u.rebuild()

        fresh_coll = SetCollection.from_token_sets(initial + additions)
        fresh = SetSimilaritySearcher(fresh_coll)
        for _ in range(10):
            q = rng.sample(vocab, rng.randint(1, 4))
            for tau in (0.4, 0.8):
                assert answers(u.search(q, tau).results) == answers(
                    fresh.search(q, tau).results
                )

    def test_auto_rebuild_triggers(self):
        u = UpdatableSearcher(
            [["a"], ["b"], ["c"], ["d"]], auto_rebuild_fraction=0.25
        )
        assert u.epoch == 0
        u.add(["e"])  # pending 1 > 0.25*4 -> rebuild
        assert u.epoch == 1
        assert u.pending == 0

    def test_manual_rebuild_resets_pending(self):
        u = UpdatableSearcher([["a"], ["b"]], auto_rebuild_fraction=1.0)
        u.add(["c"])
        assert u.pending == 1
        epoch = u.rebuild()
        assert epoch == 1
        assert u.pending == 0

    def test_pending_results_merge_with_base(self):
        u = UpdatableSearcher(
            [["a", "b"], ["q", "r"]], auto_rebuild_fraction=1.0
        )
        u.add(["a", "b"])
        result = u.search(["a", "b"], 0.9)
        assert set(result.ids()) == {0, 2}
        # Telemetry aggregated across both indexes.
        assert result.elements_total > 0

    def test_consistency_before_and_after_rebuild(self):
        # The same query must return the same *sets* pre/post rebuild when
        # the additions do not change relative idf ordering drastically;
        # here we assert the exact-match set is stable.
        u = UpdatableSearcher(
            [["x", "y"], ["x", "z"]], auto_rebuild_fraction=1.0
        )
        u.add(["x", "y"])
        before = set(u.search(["x", "y"], 0.999).ids())
        u.rebuild()
        after = set(u.search(["x", "y"], 0.999).ids())
        assert before == after == {0, 2}


class TestInterleaved:
    def test_random_interleaving_always_complete(self):
        rng = random.Random(3)
        vocab = [f"w{i}" for i in range(15)]
        u = UpdatableSearcher(auto_rebuild_fraction=0.5)
        shadow = []
        for step in range(60):
            tokens = rng.sample(vocab, rng.randint(1, 5))
            u.add(tokens)
            shadow.append(tokens)
            if step % 7 == 0:
                q = rng.sample(vocab, rng.randint(1, 4))
                got = set(u.search(q, 0.95).ids())
                # Every exact duplicate of the query must be found
                # irrespective of epoch state.
                expect = {
                    i for i, s in enumerate(shadow)
                    if frozenset(s) == frozenset(q)
                }
                assert expect <= got
