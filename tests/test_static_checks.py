"""Tests for the custom static-analysis suite (``tools/check``).

Each pass gets good/bad fixture packages under ``tests/fixtures/check``;
the suite is also run over ``src/repro`` itself, which must be clean
modulo the committed layering baseline.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "check"

sys.path.insert(0, str(REPO_ROOT))

from tools.check import run_checks  # noqa: E402
from tools.check import (  # noqa: E402
    algocontract,
    broadexcept,
    docrefs,
    floatcmp,
    layering,
    timesource,
)
from tools.check.base import load_modules  # noqa: E402
from tools.check.baseline import read_baseline  # noqa: E402
from tools.check.cli import DEFAULT_BASELINE  # noqa: E402

SRC = REPO_ROOT / "src" / "repro"


def modules_of(*fixture_names):
    return load_modules([FIXTURES / name for name in fixture_names])


def run_cli(*args):
    proc = subprocess.run(
        [sys.executable, "-m", "tools.check", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stdout + proc.stderr


class TestRepoIsClean:
    def test_suite_passes_on_src(self):
        assert run_checks([SRC]) == []

    def test_cli_exits_zero_on_src(self):
        code, output = run_cli("src/repro")
        assert code == 0, output

    def test_burned_down_edges_stay_out_of_baseline(self):
        baseline = read_baseline(DEFAULT_BASELINE)
        for edge in layering.BURNED_DOWN:
            assert edge not in baseline
        # The ratchet only ever shrinks from the 11 grandfathered edges.
        assert len(baseline) <= 11


class TestLayeringPass:
    def test_good_fixture_clean(self):
        assert layering.run(modules_of("layering_good")) == []

    def test_upward_import_flagged(self):
        violations = layering.run(modules_of("layering_bad"))
        messages = [repr(v) for v in violations]
        assert any("upward import" in m and "core/join.py" in m
                   for m in messages)

    def test_sideways_import_flagged(self):
        violations = layering.run(modules_of("layering_bad"))
        messages = [repr(v) for v in violations]
        assert any("sideways import" in m and "storage/lists.py" in m
                   for m in messages)

    def test_baseline_tolerates_known_edge(self):
        modules = modules_of("layering_bad")
        keys = layering.generate_baseline(modules)
        assert len(keys) == 2
        assert layering.run(modules, baseline=set(keys)) == []

    def test_stale_baseline_entry_flagged(self):
        # 'lgood.core.measure' is scanned but has no storage import: a
        # baseline entry grandfathering one is stale and must go.
        violations = layering.run(
            modules_of("layering_good"),
            baseline={"lgood.core.measure -> lgood.storage"},
        )
        assert len(violations) == 1
        assert "stale baseline entry" in repr(violations[0])

    def test_stale_detection_skips_unscanned_modules(self):
        # A partial scan must not misread baseline entries for modules
        # outside the scan as stale.
        violations = layering.run(
            modules_of("layering_good"),
            baseline={"repro.core.weighted -> repro.storage"},
        )
        assert violations == []

    def test_late_and_type_checking_imports_sanctioned(self):
        # layering_good's storage/lists.py imports algorithms upward both
        # ways the pass sanctions; neither may produce an edge.
        modules = modules_of("layering_good")
        edges = layering.layering_edges(modules, "lgood")
        upward = [
            (m.name, target) for m, _line, _src, target in edges
            if target == "algorithms"
        ]
        assert upward == []


class TestFloatEqualityPass:
    def test_good_fixture_clean(self):
        assert floatcmp.run(modules_of("floatcmp_good.py")) == []

    def test_bad_fixture_all_flavours_flagged(self):
        violations = floatcmp.run(modules_of("floatcmp_bad.py"))
        # name==name, tau!=threshold, attribute, tuple, call operand.
        assert len(violations) == 5
        assert {v.line for v in violations} == {5, 9, 13, 17, 21}

    def test_cli_exits_nonzero_on_bad_fixture(self):
        code, output = run_cli(str(FIXTURES / "floatcmp_bad.py"))
        assert code == 1
        assert "float-equality" in output


class TestAlgorithmContractPass:
    def test_good_fixture_clean(self):
        assert algocontract.run(modules_of("algocontract_good")) == []

    def test_bad_fixture_every_breakage_flagged(self):
        violations = algocontract.run(modules_of("algocontract_bad"))
        messages = " ".join(repr(v) for v in violations)
        assert "Unregistered" in messages and "not registered" in messages
        assert "`search`" in messages and "`_bounds`" in messages
        assert "NoRun" in messages and "never implements `_run`" in messages
        assert "Sentinel" in messages and "'abstract'" in messages
        assert "Nameless" in messages and "`name` class" in messages
        assert len(violations) == 6  # Shadow counts twice

    def test_cli_exits_nonzero_on_bad_fixture(self):
        code, output = run_cli(str(FIXTURES / "algocontract_bad"))
        assert code == 1
        assert "algorithm-contract" in output


class TestPaperReferencePass:
    def test_good_fixture_clean(self):
        assert docrefs.run(modules_of("algocontract_good")) == []

    def test_missing_citation_and_docstring_flagged(self):
        violations = docrefs.run(modules_of("docrefs_bad"))
        messages = " ".join(repr(v) for v in violations)
        assert len(violations) == 2
        assert "NoCite" in messages and "cites no paper construct" in messages
        assert "NoDoc" in messages and "no class docstring" in messages

    def test_cli_exits_nonzero_on_bad_fixture(self):
        code, output = run_cli(str(FIXTURES / "docrefs_bad"))
        assert code == 1
        assert "paper-reference" in output


class TestTimeSourcePass:
    def test_good_fixture_clean(self):
        # Monotonic clocks, a pragma'd epoch stamp, and a local callable
        # that merely *shadows* the name `time` must all pass.
        assert timesource.run(modules_of("timesource_good.py")) == []

    def test_bad_fixture_all_flavours_flagged(self):
        violations = timesource.run(modules_of("timesource_bad.py"))
        # time.time x2, time.time_ns x2, `now` asname, bare time_ns.
        assert len(violations) == 6
        assert {v.line for v in violations} == {9, 11, 15, 17, 21, 25}
        messages = " ".join(repr(v) for v in violations)
        assert "time.perf_counter()" in messages

    def test_cli_exits_nonzero_on_bad_fixture(self):
        code, output = run_cli(str(FIXTURES / "timesource_bad.py"))
        assert code == 1
        assert "time-source" in output


class TestBroadExceptPass:
    def test_good_fixture_clean(self):
        # Narrow handlers, a pragma'd deliberate catch-all, and a broad
        # handler outside the patrolled layers must all pass.
        assert broadexcept.run(modules_of("broadexcept_good")) == []

    def test_bad_fixture_all_flavours_flagged(self):
        violations = broadexcept.run(modules_of("broadexcept_bad"))
        # except Exception, bare except, Exception inside a tuple.
        assert len(violations) == 3
        assert {v.line for v in violations} == {7, 14, 21}
        messages = " ".join(repr(v) for v in violations)
        assert "(bare except)" in messages
        assert "allow-broad-except" in messages

    def test_cli_exits_nonzero_on_bad_fixture(self):
        code, output = run_cli(str(FIXTURES / "broadexcept_bad"))
        assert code == 1
        assert "broad-except" in output


class TestFaultsLayer:
    def test_faults_is_rank_zero(self):
        # The fault-injection package sits beside obs at the bottom of
        # the DAG: anything may import it, it imports nothing upward.
        assert layering.LAYERS["faults"] == 0
        assert layering.LAYERS["faults"] == layering.LAYERS["obs"]

    def test_faults_package_imports_nothing_internal(self):
        modules = load_modules([SRC / "faults"])
        edges = layering.layering_edges(modules, "repro")
        upward = [
            (m.name, target) for m, _line, _src, target in edges
            if target != "faults"
        ]
        assert upward == []


class TestCliBehaviour:
    def test_select_unknown_pass_is_usage_error(self):
        code, output = run_cli("--select", "bogus")
        assert code == 2
        assert "unknown pass" in output

    def test_select_limits_passes(self):
        code, output = run_cli(
            "--select", "layering", str(FIXTURES / "floatcmp_bad.py")
        )
        assert code == 0  # float violations exist but pass not selected

    def test_list_passes(self):
        code, output = run_cli("--list-passes")
        assert code == 0
        for name in ("layering", "float-equality", "algorithm-contract",
                     "paper-reference", "time-source"):
            assert name in output

    def test_repro_check_subcommand(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check", "src/repro"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
