"""Tests for the high-level facade: SetSimilaritySearcher and StringMatcher."""

import pytest

from repro import (
    SetCollection,
    SetSimilaritySearcher,
    StringMatcher,
    algorithm_names,
)
from repro.core.tokenize import WordTokenizer


class TestSetSimilaritySearcher:
    def test_search_default_algorithm_is_sf(self, searcher, small_vocab):
        result = searcher.search([small_vocab[0]], 0.5)
        assert result.algorithm == "sf"

    def test_prepare_returns_prepared_query(self, searcher, small_vocab):
        pq = searcher.prepare([small_vocab[0], small_vocab[1]])
        assert pq.length > 0

    def test_search_prepared_reusable(self, searcher, small_vocab):
        pq = searcher.prepare([small_vocab[0], small_vocab[1]])
        a = searcher.search_prepared(pq, 0.5, "sf")
        b = searcher.search_prepared(pq, 0.5, "inra")
        assert a.ids() == b.ids()

    def test_lean_index_still_searches(self, small_collection, small_vocab):
        lean = SetSimilaritySearcher(
            small_collection,
            with_id_lists=False,
            with_hash_index=False,
        )
        result = lean.search([small_vocab[0]], 0.5)  # sf needs neither
        full = SetSimilaritySearcher(small_collection)
        assert result.ids() == full.search([small_vocab[0]], 0.5).ids()

    def test_algorithm_names_exposed(self):
        names = algorithm_names()
        assert {"sf", "hybrid", "inra", "ita", "nra", "ta", "sort-by-id"} <= set(
            names
        )


class TestSearchOrSuggest:
    def test_matched_path(self, searcher, small_vocab):
        rec = searcher.collection[0]
        results, matched = searcher.search_or_suggest(
            sorted(rec.tokens), 0.99
        )
        assert matched is True
        assert results[0].set_id == 0

    def test_suggestion_fallback(self):
        coll = SetCollection.from_token_sets([["a", "b"], ["b", "c"]])
        s = SetSimilaritySearcher(coll)
        results, matched = s.search_or_suggest(
            ["b", "x", "y", "z"], 0.95, suggestions=2
        )
        assert matched is False
        assert 0 < len(results) <= 2
        assert all(r.score < 0.95 for r in results)

    def test_nothing_overlaps(self, searcher):
        results, matched = searcher.search_or_suggest(["zz-none"], 0.5)
        assert matched is False
        assert results == []


class TestStringMatcher:
    STRINGS = [
        "Main St., Main",
        "Main St., Maine",
        "Elm Avenue",
        "Maine Street",
        "completely different",
    ]

    @pytest.fixture(scope="class")
    def matcher(self):
        return StringMatcher(self.STRINGS)

    def test_exact_string_scores_one(self, matcher):
        matches = matcher.match("Main St., Maine", threshold=0.9)
        assert matches[0][0] == "Main St., Maine"
        assert matches[0][1] == pytest.approx(1.0)

    def test_typo_still_matches(self, matcher):
        matches = matcher.match("Main St., Mane", threshold=0.4)
        texts = [t for t, _ in matches]
        assert "Main St., Maine" in texts

    def test_results_best_first(self, matcher):
        matches = matcher.match("Main Street", threshold=0.1)
        scores = [s for _, s in matches]
        assert scores == sorted(scores, reverse=True)

    def test_unrelated_query_empty(self, matcher):
        assert matcher.match("zzzzqqqq", threshold=0.5) == []

    def test_empty_query_empty(self, matcher):
        assert matcher.match("", threshold=0.5) == []
        assert matcher.best_matches("", 3) == []

    def test_best_matches_k(self, matcher):
        top = matcher.best_matches("Main Street", k=2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]

    def test_custom_tokenizer(self):
        m = StringMatcher(
            ["alpha beta", "beta gamma"], tokenizer=WordTokenizer()
        )
        matches = m.match("beta alpha", threshold=0.9)
        assert matches[0][0] == "alpha beta"

    def test_algorithm_override(self, matcher):
        a = matcher.match("Main St., Maine", 0.5, algorithm="sf")
        b = matcher.match("Main St., Maine", 0.5, algorithm="hybrid")
        assert a == b

    def test_duplicate_strings_both_returned(self):
        m = StringMatcher(["same text", "same text"])
        matches = m.match("same text", threshold=0.99)
        assert len(matches) == 2
