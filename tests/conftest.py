"""Shared fixtures: small deterministic corpora and searchers.

The whole suite runs with the runtime invariant contracts armed
(``repro.contracts``): any test that silently produced an unsorted
posting list, a non-monotone frontier, or an out-of-window result now
fails loudly instead.  Must be set before ``repro`` is first imported —
the contracts module snapshots the environment at import time.
"""

from __future__ import annotations

import os
import random

import pytest

os.environ.setdefault("REPRO_CHECK_INVARIANTS", "1")

from repro import SetCollection, SetSimilaritySearcher
from repro.core.tokenize import QGramTokenizer
from repro.data.synthetic import generate_word_database


def random_token_sets(
    num_sets: int, vocab_size: int, max_size: int, seed: int
):
    rng = random.Random(seed)
    vocab = [f"t{i}" for i in range(vocab_size)]
    return [
        rng.sample(vocab, rng.randint(1, max_size)) for _ in range(num_sets)
    ], vocab


@pytest.fixture(scope="session")
def small_collection():
    """300 random sets over a 60-token vocabulary (session-cached)."""
    sets, _vocab = random_token_sets(300, 60, 10, seed=42)
    return SetCollection.from_token_sets(sets)


@pytest.fixture(scope="session")
def small_vocab():
    _sets, vocab = random_token_sets(300, 60, 10, seed=42)
    return vocab


@pytest.fixture(scope="session")
def searcher(small_collection):
    return SetSimilaritySearcher(small_collection)


@pytest.fixture(scope="session")
def word_database():
    """A synthetic word-level q-gram database (collection, words)."""
    return generate_word_database(
        num_records=600, vocabulary_size=500, seed=11
    )


@pytest.fixture(scope="session")
def word_searcher(word_database):
    collection, _words = word_database
    return SetSimilaritySearcher(collection)


@pytest.fixture()
def qgram3():
    return QGramTokenizer(q=3)
