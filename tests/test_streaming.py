"""Tests for streaming selections and early termination."""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.algorithms.streaming import (
    STREAMING_ALGORITHMS,
    first_match,
    stream_search,
)
from repro.core.errors import ConfigurationError
from repro.storage.pages import IOStats


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(71)
    vocab = [f"t{i}" for i in range(30)]
    sets = [rng.sample(vocab, rng.randint(1, 7)) for _ in range(250)]
    coll = SetCollection.from_token_sets(sets)
    return SetSimilaritySearcher(coll), vocab


class TestStreamingCorrectness:
    @pytest.mark.parametrize("algorithm", STREAMING_ALGORITHMS)
    @pytest.mark.parametrize("tau", [0.4, 0.7, 0.95])
    def test_complete_stream_equals_batch(self, setup, algorithm, tau):
        searcher, vocab = setup
        rng = random.Random(hash((algorithm, tau)) & 0xFFFF)
        for _ in range(10):
            q = rng.sample(vocab, rng.randint(1, 5))
            query = searcher.prepare(q)
            streamed = {
                (r.set_id, round(r.score, 9))
                for r in stream_search(
                    searcher.index, query, tau, algorithm
                )
            }
            ref = {
                (r.set_id, round(r.score, 9))
                for r in searcher.brute_force(q, tau)
            }
            assert streamed == ref, (algorithm, tau, q)

    def test_sort_by_id_emits_in_id_order(self, setup):
        searcher, vocab = setup
        query = searcher.prepare(vocab[:4])
        ids = [
            r.set_id
            for r in stream_search(searcher.index, query, 0.3, "sort-by-id")
        ]
        assert ids == sorted(ids)

    def test_exact_scores(self, setup):
        from repro.core.similarity import idf_similarity

        searcher, vocab = setup
        q = vocab[:4]
        query = searcher.prepare(q)
        for r in stream_search(searcher.index, query, 0.3, "ita"):
            expected = idf_similarity(
                q, searcher.collection[r.set_id].tokens,
                searcher.collection.stats,
            )
            assert r.score == pytest.approx(expected)

    def test_unknown_algorithm(self, setup):
        searcher, vocab = setup
        query = searcher.prepare(vocab[:2])
        with pytest.raises(ConfigurationError):
            stream_search(searcher.index, query, 0.5, "sf")

    def test_no_match_stream_is_empty(self, setup):
        searcher, _v = setup
        query = searcher.prepare(["zzz-not-in-corpus"])
        assert list(stream_search(searcher.index, query, 0.5)) == []


class TestEarlyTermination:
    def test_abandoning_saves_io(self, setup):
        searcher, vocab = setup
        q = vocab[:5]
        query = searcher.prepare(q)
        full_stats = IOStats()
        list(
            stream_search(
                searcher.index, query, 0.2, "sort-by-id", stats=full_stats
            )
        )
        early_stats = IOStats()
        gen = stream_search(
            searcher.index, query, 0.2, "sort-by-id", stats=early_stats
        )
        next(gen)  # take one answer, drop the generator
        gen.close()
        assert early_stats.elements_read < full_stats.elements_read

    def test_first_match(self, setup):
        searcher, _v = setup
        rec = searcher.collection[3]
        query = searcher.prepare(sorted(rec.tokens))
        hit = first_match(searcher.index, query, 0.999)
        assert hit is not None
        assert hit.score == pytest.approx(1.0)

    def test_first_match_none(self, setup):
        searcher, _v = setup
        query = searcher.prepare(["zzz-none"])
        assert first_match(searcher.index, query, 0.9) is None
