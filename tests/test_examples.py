"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "data_cleaning.py",
        "movie_search.py",
        "algorithm_tour.py",
        "similarity_measures.py",
        "incremental_pipeline.py",
    } <= names


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda p: p.name
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_shows_agreement():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=120,
    )
    # All seven algorithms print the same answer line.
    lines = [
        l for l in result.stdout.splitlines() if "set4" in l and "set1" in l
    ]
    assert len(lines) == 7
