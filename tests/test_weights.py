"""Unit tests for repro.core.weights (idf statistics and lengths)."""

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.core.weights import (
    IdfStatistics,
    contribution,
    normalized_length,
    tf_counts,
)


@pytest.fixture()
def stats():
    # 4 sets; 'common' in all, 'rare' in one, 'mid' in two.
    sets = [
        {"common", "rare"},
        {"common", "mid"},
        {"common", "mid"},
        {"common"},
    ]
    return IdfStatistics.from_sets(sets)


class TestIdfStatistics:
    def test_num_sets(self, stats):
        assert stats.num_sets == 4

    def test_doc_freq(self, stats):
        assert stats.doc_freq("common") == 4
        assert stats.doc_freq("mid") == 2
        assert stats.doc_freq("rare") == 1

    def test_unseen_token_df_one(self, stats):
        assert stats.doc_freq("never") == 1

    def test_idf_formula(self, stats):
        assert stats.idf("rare") == pytest.approx(math.log2(1 + 4 / 1))
        assert stats.idf("common") == pytest.approx(math.log2(1 + 4 / 4))

    def test_idf_monotone_in_rarity(self, stats):
        assert stats.idf("rare") > stats.idf("mid") > stats.idf("common")

    def test_common_token_idf_is_one(self, stats):
        # N(t) == N gives log2(2) == 1.
        assert stats.idf("common") == pytest.approx(1.0)

    def test_idf_squared(self, stats):
        assert stats.idf_squared("mid") == pytest.approx(stats.idf("mid") ** 2)

    def test_idf_cached(self, stats):
        first = stats.idf("rare")
        assert stats.idf("rare") is first or stats.idf("rare") == first

    def test_contains_and_len(self, stats):
        assert "rare" in stats
        assert "never" not in stats
        assert len(stats) == 3

    def test_multisets_counted_once(self):
        s = IdfStatistics.from_sets([["a", "a", "b"], ["a"]])
        assert s.doc_freq("a") == 2

    def test_avg_set_size(self):
        s = IdfStatistics.from_sets([{"a"}, {"a", "b", "c"}])
        assert s.avg_set_size == pytest.approx(2.0)

    def test_empty_corpus(self):
        s = IdfStatistics.from_sets([])
        assert s.num_sets == 0
        assert s.idf("x") > 0  # still well-defined

    def test_invalid_doc_freq_rejected(self):
        with pytest.raises(ConfigurationError):
            IdfStatistics(2, {"a": 0})

    def test_negative_num_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            IdfStatistics(-1, {})

    def test_repr(self, stats):
        assert "vocabulary=3" in repr(stats)


class TestLengths:
    def test_normalized_length_definition(self, stats):
        expected = math.sqrt(
            stats.idf_squared("common") + stats.idf_squared("rare")
        )
        assert normalized_length({"common", "rare"}, stats) == pytest.approx(
            expected
        )

    def test_length_ignores_duplicates(self, stats):
        assert normalized_length(
            ["common", "common"], stats
        ) == pytest.approx(normalized_length(["common"], stats))

    def test_empty_set_zero_length(self, stats):
        assert normalized_length([], stats) == 0.0

    def test_length_monotone_under_superset(self, stats):
        small = normalized_length({"common"}, stats)
        large = normalized_length({"common", "rare"}, stats)
        assert large > small

    def test_stats_length_helper(self, stats):
        assert stats.length({"mid"}) == pytest.approx(stats.idf("mid"))


class TestContribution:
    def test_formula(self, stats):
        ls, lq = 2.0, 3.0
        expected = stats.idf_squared("rare") / (ls * lq)
        assert contribution("rare", ls, lq, stats) == pytest.approx(expected)

    def test_zero_length_guard(self, stats):
        assert contribution("rare", 0.0, 3.0, stats) == 0.0
        assert contribution("rare", 3.0, 0.0, stats) == 0.0

    def test_decreasing_in_set_length(self, stats):
        a = contribution("rare", 1.0, 2.0, stats)
        b = contribution("rare", 5.0, 2.0, stats)
        assert a > b


class TestTfCounts:
    def test_counts(self):
        assert tf_counts(["a", "b", "a"]) == {"a": 2, "b": 1}

    def test_empty(self):
        assert tf_counts([]) == {}
