"""The paper's running examples (Figures 3 and 4), reconstructed exactly.

Both figures are numerically self-consistent: Figure 3 sets
``idf(q1)² = 225, idf(q2)² = 180, idf(q3)² = 45`` giving
``len(q) = sqrt(450) = 21.21``, and the listed contributions pin every
set's normalized length.  We rebuild those exact inverted lists through a
manual index (real posting files and cursors, prescribed statistics) and
check the algorithms' answers and the qualitative access-cost claims the
paper derives from each figure:

* Figure 3: set 4 is the only answer at tau = 1 (score .5 + .4 + .1);
  SF reads fewer postings than iNRA on this instance (Section VI's walk).
* Figure 4: no answers at tau = 1; iNRA stops earlier than SF, which must
  descend list q1 deeply (Lemma 3's direction).
"""

import math

import pytest

from repro.algorithms import make_algorithm
from repro.core.query import PreparedQuery
from repro.core.weights import IdfStatistics
from repro.storage.invlist import (
    POSTING_BYTES,
    TokenPostings,
    WeightOrderCursor,
)
from repro.storage.pages import PagedFile
from repro.storage.skiplist import SkipList


class FixedStats(IdfStatistics):
    """Statistics with prescribed idf values (the figures' premises)."""

    def __init__(self, idf_squared: dict) -> None:
        super().__init__(num_sets=10, doc_freq={t: 1 for t in idf_squared})
        self._fixed = dict(idf_squared)

    def idf(self, token: str) -> float:
        return math.sqrt(self._fixed.get(token, 0.0))

    def idf_squared(self, token: str) -> float:
        return self._fixed.get(token, 0.0)


class ManualIndex:
    """An inverted index with hand-written postings (no collection)."""

    with_id_lists = False
    with_skip_lists = True
    with_hash_index = True

    def __init__(self, lists: dict) -> None:
        self._postings = {}
        for token, entries in lists.items():
            entries = sorted(entries)
            weight_file = PagedFile(POSTING_BYTES)
            weight_file.extend(entries)
            skip = SkipList(entries, stride=1)
            self._postings[token] = TokenPostings(
                token, weight_file, None, skip, None
            )
        self._membership = {
            token: {sid: ln for ln, sid in entries}
            for token, entries in lists.items()
        }

    def cursor(self, token, stats=None, use_skip_list=True):
        postings = self._postings.get(token)
        if postings is None:
            return None
        return WeightOrderCursor(postings, stats, use_skip_list)

    def id_cursor(self, token, stats=None):  # pragma: no cover - unused
        raise NotImplementedError

    def probe(self, token, set_id, stats=None):
        if stats is not None:
            stats.charge_random_page()
            stats.charge_hash_probe()
        return self._membership.get(token, {}).get(set_id)

    def list_length(self, token):
        postings = self._postings.get(token)
        return len(postings) if postings else 0


def figure3():
    """idf² = (225, 180, 45); lengths derived from the printed w_i.

    Each set's normalized length is computed ONCE and reused in every list
    it appears in — the index invariant Property 1 rests on (in the real
    system, lengths come from the collection, one value per set).  The
    figure is consistent: e.g. set 4's length solves to 450/len(q) from
    all three of its printed contributions.
    """
    stats = FixedStats({"q1": 225.0, "q2": 180.0, "q3": 45.0})
    lq = math.sqrt(450.0)  # 21.2132 — the paper's 21.21
    length = {
        1: 225.0 / (0.7 * lq),   # 15.15
        2: 450.0 / lq,           # 21.21
        3: 450.0 / lq,
        4: 450.0 / lq,
        5: 225.0 / (0.1 * lq),   # deep in list q1
        6: 180.0 / (0.1 * lq),
        7: 450.0 / lq,
        8: 450.0 / lq,
    }
    lists = {
        "q1": [(length[i], i) for i in (1, 2, 4, 5)],
        "q2": [(length[i], i) for i in (2, 3, 4, 6)],
        "q3": [(length[i], i) for i in (3, 4, 7, 8)],
    }
    index = ManualIndex(lists)
    query = PreparedQuery(["q1", "q2", "q3"], stats)
    return index, query


def figure4():
    """idf² = (225, 135, 45); the variant where iNRA beats SF."""
    stats = FixedStats({"q1": 225.0, "q2": 135.0, "q3": 45.0})
    lq = math.sqrt(405.0)  # 20.1246 — the paper's 20.12
    length = {
        1: 225.0 / (0.7 * lq),   # 15.97
        2: 450.0 / lq,           # 22.36 (= 225/.5 = 135/.3 = 45/.1, x 1/lq)
        3: 450.0 / lq,
        4: 450.0 / lq,
        5: 450.0 / lq,
        6: 135.0 / (0.1 * lq),
        7: 450.0 / lq,
        8: 450.0 / lq,
    }
    lists = {
        "q1": [(length[i], i) for i in (1, 2, 4, 5)],
        "q2": [(length[i], i) for i in (2, 3, 4, 6)],
        "q3": [(length[i], i) for i in (3, 4, 7, 8)],
    }
    index = ManualIndex(lists)
    query = PreparedQuery(["q1", "q2", "q3"], stats)
    return index, query


class TestFigure3:
    def test_paper_numbers_reproduced(self):
        index, query = figure3()
        assert query.length == pytest.approx(21.2132, abs=1e-3)
        # len(1) = 15.15, len(2) = len(3) = len(4) = 21.21 (the paper).
        cursor = index.cursor("q1")
        first_len, first_id = cursor.peek()
        assert first_id == 1
        assert first_len == pytest.approx(15.1523, abs=1e-3)
        # λ cutoffs: λ1 = 21.21, λ2 = 10.6, λ3 = 2.12.
        lam = query.cutoffs(1.0)
        assert lam[0] == pytest.approx(21.2132, abs=1e-3)
        assert lam[1] == pytest.approx(10.6066, abs=1e-3)
        assert lam[2] == pytest.approx(2.1213, abs=1e-3)

    @pytest.mark.parametrize("algo", ["nra", "inra", "sf", "hybrid", "ta", "ita"])
    def test_set4_is_the_answer_at_tau_one(self, algo):
        index, query = figure3()
        result = make_algorithm(algo, index).search(query, 1.0)
        assert result.ids() == [4], algo
        assert result.results[0].score == pytest.approx(1.0)

    def test_sf_reads_fewer_than_nra(self):
        index, query = figure3()
        sf = make_algorithm("sf", index).search(query, 1.0)
        nra = make_algorithm("nra", index).search(query, 1.0)
        assert sf.stats.elements_read < nra.stats.elements_read

    def test_scores_at_lower_threshold(self):
        # Full score table of the figure: 1->0.7, 2->0.9, 3->0.5, 4->1.0.
        index, query = figure3()
        res = make_algorithm("inra", index).search(query, 0.5)
        scores = {r.set_id: round(r.score, 3) for r in res.results}
        assert scores == {1: 0.7, 2: 0.9, 3: 0.5, 4: 1.0}


class TestFigure4:
    def test_paper_numbers_reproduced(self):
        index, query = figure4()
        assert query.length == pytest.approx(20.1246, abs=1e-3)
        lam = query.cutoffs(1.0)
        assert lam[0] == pytest.approx(20.1246, abs=1e-3)
        assert lam[1] == pytest.approx(8.9443, abs=1e-3)
        assert lam[2] == pytest.approx(2.2361, abs=1e-3)
        cursor = index.cursor("q1")
        first_len, _ = cursor.peek()
        # The paper prints 15.97 (225/(0.7·20.1246) = 15.9719).
        assert first_len == pytest.approx(15.9719, abs=1e-3)

    @pytest.mark.parametrize("algo", ["nra", "inra", "sf", "hybrid", "ta", "ita"])
    def test_no_exact_matches(self, algo):
        index, query = figure4()
        result = make_algorithm(algo, index).search(query, 1.0)
        assert result.ids() == [], algo

    def test_inra_stops_earlier_than_sf(self):
        # Lemma 3's direction: breadth-first discovers non-viability fast;
        # SF must descend q1 to λ1 before learning anything.
        index, query = figure4()
        inra = make_algorithm("inra", index).search(query, 1.0)
        sf = make_algorithm("sf", index).search(query, 1.0)
        assert inra.stats.elements_read <= sf.stats.elements_read

    def test_best_set_scores_point_nine(self):
        index, query = figure4()
        res = make_algorithm("sf", index).search(query, 0.85)
        scores = {r.set_id: round(r.score, 3) for r in res.results}
        assert scores == {4: 0.9}
