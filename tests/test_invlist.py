"""Unit tests for the inverted-list index."""

import pytest

from repro.core.collection import SetCollection
from repro.core.errors import IndexNotBuiltError
from repro.storage.invlist import InvertedIndex
from repro.storage.pages import IOStats


@pytest.fixture()
def coll():
    return SetCollection.from_token_sets(
        [
            ["a"],               # 0: short set, short length
            ["a", "b"],          # 1
            ["a", "b", "c"],     # 2
            ["b", "c", "d"],     # 3
            ["a", "b", "c", "d"],# 4: longest
        ]
    )


@pytest.fixture()
def index(coll):
    return InvertedIndex(coll)


class TestBuild:
    def test_tokens_present(self, index):
        assert set(index.tokens()) == {"a", "b", "c", "d"}

    def test_list_lengths(self, index):
        assert index.list_length("a") == 4
        assert index.list_length("d") == 2
        assert index.list_length("zzz") == 0

    def test_num_postings(self, index, coll):
        assert index.num_postings() == sum(len(r) for r in coll)

    def test_requires_frozen(self):
        c = SetCollection()
        c.add(["a"])
        with pytest.raises(IndexNotBuiltError):
            InvertedIndex(c)

    def test_contains(self, index):
        assert "a" in index
        assert "nope" not in index


class TestWeightOrderCursor:
    def test_sorted_by_length_then_id(self, index, coll):
        cursor = index.cursor("a")
        entries = []
        while not cursor.exhausted():
            entries.append(cursor.next())
        assert entries == sorted(entries)
        # Increasing length == decreasing contribution.
        lengths = [ln for ln, _ in entries]
        assert lengths == sorted(lengths)

    def test_ids_match_collection(self, index, coll):
        cursor = index.cursor("d")
        ids = set()
        while not cursor.exhausted():
            _, sid = cursor.next()
            ids.add(sid)
        assert ids == {3, 4}

    def test_lengths_match_collection(self, index, coll):
        cursor = index.cursor("b")
        while not cursor.exhausted():
            length, sid = cursor.next()
            assert length == pytest.approx(coll.length(sid))

    def test_missing_token_returns_none(self, index):
        assert index.cursor("zzz") is None

    def test_seek_with_skip_list(self, index, coll):
        stats = IOStats()
        cursor = index.cursor("a", stats, use_skip_list=True)
        target = coll.length(2)  # somewhere in the middle
        cursor.seek_length_ge(target)
        length, _ = cursor.peek()
        assert length >= target

    def test_seek_without_skip_list_charges_elements(self, coll):
        idx = InvertedIndex(coll, with_skip_lists=False)
        stats = IOStats()
        cursor = idx.cursor("a", stats, use_skip_list=False)
        cursor.seek_length_ge(coll.length(4))
        assert stats.elements_read > 0  # scan-and-discard paid per element

    def test_seek_to_zero_is_noop(self, index):
        stats = IOStats()
        cursor = index.cursor("a", stats)
        cursor.seek_length_ge(0.0)
        assert cursor.position == 0

    def test_seek_past_end_exhausts(self, index):
        cursor = index.cursor("a")
        cursor.seek_length_ge(1e9)
        assert cursor.exhausted()


class TestIdOrderCursor:
    def test_sorted_by_id(self, index):
        cursor = index.id_cursor("b")
        ids = []
        while not cursor.exhausted():
            sid, _ = cursor.next()
            ids.append(sid)
        assert ids == sorted(ids) == [1, 2, 3, 4]

    def test_disabled_raises(self, coll):
        idx = InvertedIndex(coll, with_id_lists=False)
        with pytest.raises(IndexNotBuiltError):
            idx.id_cursor("a")

    def test_len(self, index):
        assert len(index.id_cursor("a")) == 4


class TestProbe:
    def test_hit_returns_length(self, index, coll):
        assert index.probe("a", 2) == pytest.approx(coll.length(2))

    def test_miss_returns_none(self, index):
        assert index.probe("d", 0) is None

    def test_unknown_token_none(self, index):
        assert index.probe("zzz", 0) is None

    def test_probe_charges_one_random_io(self, index):
        stats = IOStats()
        index.probe("a", 2, stats)
        assert stats.random_pages == 1
        assert stats.hash_probes == 1

    def test_disabled_raises(self, coll):
        idx = InvertedIndex(coll, with_hash_index=False)
        with pytest.raises(IndexNotBuiltError):
            idx.probe("a", 0)


class TestSizeReport:
    def test_components(self, index):
        report = index.size_report()
        assert report["inverted_lists_by_weight"] > 0
        assert report["inverted_lists_by_id"] > 0
        assert report["skip_lists"] > 0
        assert report["extendible_hashing"] > 0
        assert report["total"] == sum(
            v for k, v in report.items() if k != "total"
        )

    def test_stripped_index_smaller(self, coll):
        full = InvertedIndex(coll).size_report()["total"]
        lean = InvertedIndex(
            coll,
            with_id_lists=False,
            with_hash_index=False,
        ).size_report()["total"]
        assert lean < full

    def test_hashing_dominates(self, coll):
        # The paper's Figure 5 point: extendible hashing is the heavy part.
        report = InvertedIndex(coll).size_report()
        assert report["extendible_hashing"] > report["skip_lists"]
