"""Tests for the mini relational engine and the SQL baseline."""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.core.errors import IndexNotBuiltError, SchemaError
from repro.relational.engine import (
    group_sum,
    hash_join,
    having,
    project,
    select,
)
from repro.relational.sqlbaseline import SqlBaseline
from repro.relational.table import Schema, Table
from repro.storage.pages import IOStats


class TestSchema:
    def test_positions(self):
        s = Schema([("id", 8), ("name", 16)])
        assert s.position("id") == 0
        assert s.position("name") == 1
        assert s.names == ["id", "name"]

    def test_row_bytes(self):
        assert Schema([("a", 8), ("b", 4)]).row_bytes() == 12

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", 8), ("a", 8)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            Schema([("a", 8)]).position("b")


class TestTable:
    def _table(self):
        t = Table("t", Schema([("id", 8), ("v", 8)]))
        t.insert_many([(i, i * 10) for i in range(20)])
        return t

    def test_insert_and_len(self):
        assert len(self._table()) == 20

    def test_arity_checked(self):
        t = Table("t", Schema([("id", 8)]))
        with pytest.raises(SchemaError):
            t.insert((1, 2))

    def test_scan_charges_pages(self):
        t = self._table()
        stats = IOStats()
        rows = list(t.scan(stats))
        assert len(rows) == 20
        assert stats.sequential_pages >= 1
        assert stats.elements_read == 20

    def test_size_bytes(self):
        assert self._table().size_bytes() > 0

    def test_column_lookup(self):
        assert self._table().column("v") == 1


class TestOperators:
    ROWS = [(1, "a", 10.0), (2, "b", 20.0), (1, "c", 5.0)]

    def test_select(self):
        assert list(select(self.ROWS, lambda r: r[0] == 1)) == [
            (1, "a", 10.0), (1, "c", 5.0),
        ]

    def test_project(self):
        assert list(project(self.ROWS, (2, 0))) == [
            (10.0, 1), (20.0, 2), (5.0, 1),
        ]

    def test_group_sum(self):
        groups = group_sum(self.ROWS, key_position=0, value_position=2)
        assert groups == {1: 15.0, 2: 20.0}

    def test_having(self):
        groups = {1: 15.0, 2: 20.0}
        assert having(groups, lambda v: v > 16) == {2: 20.0}

    def test_hash_join(self):
        left = [(1, "x"), (2, "y")]
        right = [(10, 1), (20, 1), (30, 3)]
        joined = sorted(hash_join(left, right, left_key=0, right_key=1))
        assert joined == [(1, "x", 10, 1), (1, "x", 20, 1)]


@pytest.fixture(scope="module")
def sql_setup():
    rng = random.Random(17)
    vocab = [f"g{i}" for i in range(35)]
    sets = [rng.sample(vocab, rng.randint(1, 7)) for _ in range(180)]
    coll = SetCollection.from_token_sets(sets)
    return (
        SetSimilaritySearcher(coll),
        SqlBaseline(coll),
        coll,
        vocab,
    )


class TestSqlBaseline:
    def test_matches_brute_force(self, sql_setup):
        searcher, sql, coll, vocab = sql_setup
        rng = random.Random(4)
        for tau in (0.4, 0.7, 0.9, 1.0):
            for _ in range(8):
                q = rng.sample(vocab, rng.randint(1, 5))
                pq = searcher.prepare(q)
                got = {
                    (r.set_id, round(r.score, 9))
                    for r in sql.search(pq, tau).results
                }
                ref = {
                    (r.set_id, round(r.score, 9))
                    for r in searcher.brute_force(q, tau)
                }
                assert got == ref

    def test_nlb_variant_matches_too(self, sql_setup):
        searcher, _sql, coll, vocab = sql_setup
        sql_nlb = SqlBaseline(coll, use_length_bounds=False)
        q = vocab[:4]
        pq = searcher.prepare(q)
        got = {r.set_id for r in sql_nlb.search(pq, 0.5).results}
        ref = {r.set_id for r in searcher.brute_force(q, 0.5)}
        assert got == ref
        assert sql_nlb.search(pq, 0.5).algorithm == "sql-nlb"

    def test_scan_plan_matches(self, sql_setup):
        searcher, _sql, coll, vocab = sql_setup
        sql_scan = SqlBaseline(coll, use_index=False)
        q = vocab[:3]
        pq = searcher.prepare(q)
        got = {r.set_id for r in sql_scan.search(pq, 0.6).results}
        ref = {r.set_id for r in searcher.brute_force(q, 0.6)}
        assert got == ref

    def test_length_predicate_reduces_elements(self, sql_setup):
        searcher, sql, coll, vocab = sql_setup
        sql_nlb = SqlBaseline(coll, use_length_bounds=False)
        rng = random.Random(8)
        q = rng.sample(vocab, 4)
        pq = searcher.prepare(q)
        with_lb = sql.search(pq, 0.9).stats.elements_read
        without = sql_nlb.search(pq, 0.9).stats.elements_read
        assert with_lb <= without

    def test_scan_plan_reads_whole_table(self, sql_setup):
        searcher, _sql, coll, vocab = sql_setup
        sql_scan = SqlBaseline(coll, use_index=False)
        pq = searcher.prepare(vocab[:2])
        r = sql_scan.search(pq, 0.8)
        assert r.stats.elements_read == len(sql_scan.qgram_table)

    def test_size_report(self, sql_setup):
        _searcher, sql, coll, _vocab = sql_setup
        report = sql.size_report()
        assert report["qgram_table"] > report["base_table"]
        assert report["total"] == (
            report["base_table"] + report["qgram_table"] + report["btree"]
        )

    def test_qgram_table_row_per_token(self, sql_setup):
        _s, sql, coll, _v = sql_setup
        assert len(sql.qgram_table) == sum(len(r.tokens) for r in coll)

    def test_requires_frozen(self):
        c = SetCollection()
        c.add(["a"])
        with pytest.raises(IndexNotBuiltError):
            SqlBaseline(c)

    def test_unseen_query_token_ok(self, sql_setup):
        searcher, sql, _c, vocab = sql_setup
        pq = searcher.prepare([vocab[0], "unknown-gram"])
        got = {r.set_id for r in sql.search(pq, 0.3).results}
        ref = {r.set_id for r in searcher.brute_force([vocab[0], "unknown-gram"], 0.3)}
        assert got == ref
