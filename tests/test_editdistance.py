"""Tests for the edit-distance q-gram filter baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.editdistance import EditDistanceSearcher, levenshtein
from repro.core.errors import ConfigurationError
from repro.storage.pages import IOStats


def reference_levenshtein(a: str, b: str) -> int:
    """Plain full-matrix DP, for cross-checking the banded version."""
    m, n = len(a), len(b)
    dp = [[0] * (n + 1) for _ in range(m + 1)]
    for i in range(m + 1):
        dp[i][0] = i
    for j in range(n + 1):
        dp[0][j] = j
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            dp[i][j] = min(
                dp[i - 1][j] + 1,
                dp[i][j - 1] + 1,
                dp[i - 1][j - 1] + (a[i - 1] != b[j - 1]),
            )
    return dp[m][n]


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,d",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("same", "same", 0),
            ("abc", "cba", 2),
        ],
    )
    def test_known_values(self, a, b, d):
        assert levenshtein(a, b) == d

    def test_symmetric(self):
        assert levenshtein("street", "straet") == levenshtein(
            "straet", "street"
        )

    def test_band_exact_within_bound(self):
        assert levenshtein("kitten", "sitting", max_distance=3) == 3

    def test_band_cutoff_beyond_bound(self):
        assert levenshtein("aaaa", "zzzz", max_distance=2) == 3

    def test_band_length_quick_reject(self):
        assert levenshtein("a", "abcdefgh", max_distance=2) == 3

    @given(st.text(alphabet="abcd", max_size=12),
           st.text(alphabet="abcd", max_size=12))
    @settings(max_examples=150, deadline=None)
    def test_matches_reference(self, a, b):
        assert levenshtein(a, b) == reference_levenshtein(a, b)

    @given(st.text(alphabet="abc", max_size=10),
           st.text(alphabet="abc", max_size=10),
           st.integers(0, 5))
    @settings(max_examples=150, deadline=None)
    def test_banded_consistent(self, a, b, k):
        true = reference_levenshtein(a, b)
        banded = levenshtein(a, b, max_distance=k)
        if true <= k:
            assert banded == true
        else:
            assert banded > k


class TestEditDistanceSearcher:
    WORDS = [
        "street", "stret", "straight", "strait", "stream",
        "main", "maine", "mane", "avenue", "avenu",
    ]

    @pytest.fixture(scope="class")
    def searcher(self):
        return EditDistanceSearcher(self.WORDS, q=3)

    def test_exact_match_k0(self, searcher):
        assert searcher.search("street", 0) == [("street", 0)]

    def test_k1_finds_single_edits(self, searcher):
        hits = dict(searcher.search("street", 1))
        assert hits["street"] == 0
        assert hits["stret"] == 1
        assert "straight" not in hits

    def test_results_nearest_first(self, searcher):
        results = searcher.search("maine", 2)
        distances = [d for _, d in results]
        assert distances == sorted(distances)

    def test_matches_brute_force(self, searcher):
        rng = random.Random(4)
        for _ in range(30):
            base = rng.choice(self.WORDS)
            # random perturbation as query
            chars = list(base)
            for _ in range(rng.randint(0, 2)):
                if chars and rng.random() < 0.5:
                    chars.pop(rng.randrange(len(chars)))
                else:
                    chars.insert(
                        rng.randrange(len(chars) + 1), rng.choice("abest")
                    )
            query = "".join(chars)
            for k in (0, 1, 2, 3):
                got = set(searcher.search(query, k))
                ref = {
                    (w, levenshtein(query, w))
                    for w in self.WORDS
                    if levenshtein(query, w) <= k
                }
                assert got == ref, (query, k)

    def test_filter_is_selective(self):
        words = [f"word{i:04d}" for i in range(500)] + ["completely-other"]
        s = EditDistanceSearcher(words, q=3)
        verified, total = s.candidates_checked("word0001", 1)
        assert verified < total  # the count filter pruned something

    def test_stats_charged(self, searcher):
        stats = IOStats()
        searcher.search("street", 1, stats=stats)
        assert stats.elements_read > 0

    def test_negative_k_rejected(self, searcher):
        with pytest.raises(ConfigurationError):
            searcher.search("x", -1)

    def test_invalid_q(self):
        with pytest.raises(ConfigurationError):
            EditDistanceSearcher(["a"], q=0)

    @given(
        st.lists(st.text(alphabet="abcde", min_size=1, max_size=8),
                 min_size=1, max_size=20),
        st.text(alphabet="abcde", min_size=1, max_size=8),
        st.integers(0, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_completeness_property(self, words, query, k):
        s = EditDistanceSearcher(words, q=2)
        got = {w for w, _ in s.search(query, k)}
        expected = {w for w in words if reference_levenshtein(query, w) <= k}
        assert got == expected
