"""Behavioural invariants: pruning, I/O profiles, telemetry plausibility.

Correctness is covered elsewhere; these tests pin down the *performance
shape* the paper reports — which algorithm reads/probes what — using the
deterministic element/I-O counters rather than wall-clock.
"""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.data.synthetic import generate_word_database
from repro.core.tokenize import QGramTokenizer


@pytest.fixture(scope="module")
def setup():
    collection, words = generate_word_database(
        num_records=700, vocabulary_size=500, seed=23
    )
    searcher = SetSimilaritySearcher(collection)
    tok = QGramTokenizer(q=3)
    rng = random.Random(23)
    queries = [
        tok.tokens(words[rng.randrange(len(words))]) for _ in range(15)
    ]
    return searcher, queries


def total_elements(searcher, algo, queries, tau, **opts):
    return sum(
        searcher.search(q, tau, algorithm=algo, **opts).stats.elements_read
        for q in queries
    )


class TestPruningRelations:
    def test_sort_by_id_reads_everything(self, setup):
        searcher, queries = setup
        for q in queries[:5]:
            r = searcher.search(q, 0.9, algorithm="sort-by-id")
            assert r.stats.elements_read == r.elements_total
            assert r.pruning_power == 0.0

    def test_inra_reads_no_more_than_nra(self, setup):
        searcher, queries = setup
        for tau in (0.7, 0.9):
            nra = total_elements(searcher, "nra", queries, tau)
            inra = total_elements(searcher, "inra", queries, tau)
            assert inra <= nra

    def test_hybrid_reads_no_more_than_inra(self, setup):
        searcher, queries = setup
        for tau in (0.7, 0.9):
            inra = total_elements(searcher, "inra", queries, tau)
            hybrid = total_elements(searcher, "hybrid", queries, tau)
            assert hybrid <= inra

    def test_improved_algorithms_prune_substantially_at_high_tau(self, setup):
        searcher, queries = setup
        for algo in ("inra", "ita", "sf", "hybrid"):
            powers = [
                searcher.search(q, 0.9, algorithm=algo).pruning_power
                for q in queries
            ]
            assert sum(powers) / len(powers) > 0.5, algo

    def test_pruning_increases_with_threshold(self, setup):
        searcher, queries = setup
        for algo in ("sf", "inra"):
            low = total_elements(searcher, algo, queries, 0.6)
            high = total_elements(searcher, algo, queries, 0.95)
            assert high <= low

    def test_length_bounding_helps(self, setup):
        # sf/inra read every in-window posting, so skipping the prefix is a
        # pure win.  (iTA is excluded: its frontier threshold already stops
        # it early without bounds, so at small corpus scale the sparse
        # skip-list landing tail can cost more elements than the window
        # skip saves — the weighted-I/O comparison below still holds.)
        searcher, queries = setup
        for algo in ("sf", "inra"):
            with_lb = total_elements(searcher, algo, queries, 0.9)
            without = total_elements(
                searcher, algo, queries, 0.9, use_length_bounds=False
            )
            assert with_lb <= without, algo

    def test_length_bounding_never_hurts_weighted_io(self, setup):
        searcher, queries = setup
        for algo in ("sf", "inra", "ita"):
            with_lb = sum(
                searcher.search(q, 0.9, algorithm=algo).stats.cost()
                for q in queries
            )
            without = sum(
                searcher.search(
                    q, 0.9, algorithm=algo, use_length_bounds=False
                ).stats.cost()
                for q in queries
            )
            assert with_lb <= without * 1.5, algo

    def test_ita_cheaper_than_ta_on_weighted_io(self, setup):
        # TA's unit cost is the random probe; iTA's magnitude pre-check and
        # probe avoidance must shrink the weighted I/O bill substantially.
        searcher, queries = setup
        ta = sum(
            searcher.search(q, 0.9, algorithm="ta").stats.cost()
            for q in queries
        )
        ita = sum(
            searcher.search(q, 0.9, algorithm="ita").stats.cost()
            for q in queries
        )
        assert ita < ta / 2


class TestIOProfiles:
    def test_ta_pays_random_io(self, setup):
        searcher, queries = setup
        r = searcher.search(queries[0], 0.8, algorithm="ta")
        assert r.stats.random_pages > 0
        assert r.stats.hash_probes > 0

    def test_nra_family_is_sequential_only(self, setup):
        searcher, queries = setup
        for algo in ("nra", "sort-by-id"):
            for q in queries[:5]:
                r = searcher.search(q, 0.8, algorithm=algo)
                assert r.stats.random_pages == 0, algo
                assert r.stats.hash_probes == 0, algo

    def test_skip_list_seeks_replace_scanning(self, setup):
        searcher, queries = setup
        for algo in ("sf", "inra"):
            with_sl = sum(
                searcher.search(q, 0.9, algorithm=algo).stats.elements_read
                for q in queries
            )
            without_sl = sum(
                searcher.search(
                    q, 0.9, algorithm=algo, use_skip_lists=False
                ).stats.elements_read
                for q in queries
            )
            assert with_sl <= without_sl

    def test_skip_jumps_charged_when_enabled(self, setup):
        searcher, queries = setup
        r = searcher.search(queries[0], 0.9, algorithm="sf")
        assert r.stats.skip_jumps > 0

    def test_ita_probes_fewer_than_ta(self, setup):
        searcher, queries = setup
        ta_probes = sum(
            searcher.search(q, 0.9, algorithm="ta").stats.hash_probes
            for q in queries
        )
        ita_probes = sum(
            searcher.search(q, 0.9, algorithm="ita").stats.hash_probes
            for q in queries
        )
        assert ita_probes < ta_probes


class TestTelemetry:
    def test_elements_total_is_query_list_mass(self, setup):
        searcher, queries = setup
        q = queries[0]
        r = searcher.search(q, 0.8, algorithm="sf")
        expected = sum(
            searcher.index.list_length(t) for t in frozenset(q)
        )
        assert r.elements_total == expected

    def test_wall_seconds_positive(self, setup):
        searcher, queries = setup
        r = searcher.search(queries[0], 0.8, algorithm="sf")
        assert r.wall_seconds > 0

    def test_peak_candidates_reported(self, setup):
        searcher, queries = setup
        r = searcher.search(queries[0], 0.6, algorithm="inra")
        assert r.peak_candidates >= len(r.results)

    def test_pruning_power_in_unit_interval(self, setup):
        searcher, queries = setup
        for algo in ("nra", "inra", "sf", "hybrid", "ta", "ita"):
            r = searcher.search(queries[1], 0.8, algorithm=algo)
            assert 0.0 <= r.pruning_power <= 1.0

    def test_repr_mentions_flags(self, setup):
        searcher, _ = setup
        from repro.algorithms import make_algorithm

        alg = make_algorithm(
            "sf", searcher.index,
            use_length_bounds=False, use_skip_lists=False,
        )
        assert "NLB" in repr(alg) and "NSL" in repr(alg)


class TestScaleBehaviour:
    def test_exact_match_query_is_cheap_at_tau_one(self):
        # With unique lengths and tau=1, length bounding restricts the
        # search to essentially one set (the paper's Section V argument).
        sets = [[f"u{i}", f"v{i}", "shared"] for i in range(50)]
        sets.append(["needle1", "needle2"])
        coll = SetCollection.from_token_sets(sets)
        searcher = SetSimilaritySearcher(coll)
        r = searcher.search(["needle1", "needle2"], 1.0, algorithm="sf")
        assert set(r.ids()) == {50}
        assert r.stats.elements_read <= 4
