"""Tests for SF's list-ordering strategies (beyond-paper ablation)."""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.algorithms.sf import ShortestFirst
from repro.core.errors import ConfigurationError


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(66)
    vocab = [f"t{i}" for i in range(35)]
    # Skewed: a handful of very frequent tokens, many rare ones.
    weights = [10.0 if i < 5 else 1.0 for i in range(35)]
    sets = [
        list(dict.fromkeys(
            rng.choices(vocab, weights=weights, k=rng.randint(2, 8))
        ))
        for _ in range(400)
    ]
    coll = SetCollection.from_token_sets(sets)
    return SetSimilaritySearcher(coll), vocab


def answers(searcher, q, tau, **opts):
    r = searcher.search(q, tau, algorithm="sf", **opts)
    return {(x.set_id, round(x.score, 9)) for x in r.results}


class TestOrderingCorrectness:
    @pytest.mark.parametrize("order", ShortestFirst.ORDERS)
    def test_all_orders_agree_with_brute_force(self, setup, order):
        searcher, vocab = setup
        rng = random.Random(hash(order) & 0xFFFF)
        for _ in range(15):
            q = rng.sample(vocab, rng.randint(2, 6))
            tau = rng.choice([0.4, 0.7, 0.9, 1.0])
            got = answers(searcher, q, tau, list_order=order)
            ref = {
                (r.set_id, round(r.score, 9))
                for r in searcher.brute_force(q, tau)
            }
            assert got == ref, (order, tau, q)

    def test_unknown_order_rejected(self, setup):
        searcher, vocab = setup
        with pytest.raises(ConfigurationError):
            searcher.search(vocab[:3], 0.8, algorithm="sf",
                            list_order="bogus")

    def test_default_is_idf(self, setup):
        searcher, _v = setup
        alg = ShortestFirst(searcher.index)
        assert alg.list_order_strategy == "idf"


class TestOrderingBehaviour:
    def test_orders_coincide_on_natural_corpora(self, setup):
        # On any corpus whose idfs come from its own document frequencies,
        # "highest idf first" IS "shortest list first" (idf is a monotone
        # function of df) — the observation behind the paper's SF name.
        searcher, vocab = setup
        from repro.algorithms.base import QueryLists
        from repro.storage.pages import IOStats

        rng = random.Random(5)
        for _ in range(10):
            q = rng.sample(vocab, 5)
            query = searcher.prepare(q)
            lists = QueryLists(searcher.index, query, IOStats())
            idf_order = ShortestFirst(searcher.index)._list_order(lists)
            short_order = ShortestFirst(
                searcher.index, list_order="shortest-list"
            )._list_order(lists)
            # Same ordering up to ties in list length.
            assert [len(lists.cursors[i]) for i in idf_order] == [
                len(lists.cursors[i]) for i in short_order
            ]

    def test_orders_differ_with_decoupled_statistics(self):
        # With prescribed statistics (idf decoupled from list length), the
        # strategies genuinely diverge: a high-idf token can own a long
        # list.  Answers must still agree.

        from tests.test_paper_figures import FixedStats, ManualIndex
        from repro.algorithms import make_algorithm
        from repro.core.query import PreparedQuery

        stats = FixedStats({"rare": 100.0, "freq": 64.0})
        # 'rare' (high idf) has the LONG list; 'freq' the short one.  A
        # set's length must be identical in every list it appears in
        # (Property 1's invariant), so shared ids reuse the same length.
        length = {i: 10.0 + 0.1 * i for i in range(30)}
        rare_list = [(length[i], i) for i in range(30)]
        freq_list = [(length[i], i) for i in (0, 2, 11)]
        index = ManualIndex({"rare": rare_list, "freq": freq_list})
        query = PreparedQuery(["rare", "freq"], stats)

        reads = {}
        results = {}
        for order in ShortestFirst.ORDERS:
            alg = make_algorithm("sf", index, list_order=order)
            r = alg.search(query, 0.7)
            reads[order] = r.stats.elements_read
            results[order] = {(x.set_id, round(x.score, 9))
                              for x in r.results}
        assert len({frozenset(v) for v in results.values()}) == 1
        assert reads["shortest-list"] != reads["idf"] or (
            reads["density"] != reads["idf"]
        )

    def test_shortest_list_order_sorted_by_list_length(self, setup):
        searcher, vocab = setup
        from repro.algorithms.base import QueryLists
        from repro.storage.pages import IOStats

        query = searcher.prepare(vocab[:5])
        lists = QueryLists(searcher.index, query, IOStats())
        alg = ShortestFirst(searcher.index, list_order="shortest-list")
        order = alg._list_order(lists)
        lengths = [len(lists.cursors[i]) for i in order]
        assert lengths == sorted(lengths)
