"""Every algorithm must return exactly the brute-force answer set.

This file is the load-bearing correctness check of the library: all seven
inverted-list algorithms (and their length-bounding / skip-list ablation
variants) are compared against exhaustive scoring on randomized corpora,
hypothesis-generated corpora, and hand-picked edge cases.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SetCollection, SetSimilaritySearcher, algorithm_names
from repro.core.errors import InvalidThresholdError, UnknownAlgorithmError

ALGOS = algorithm_names()
VARIANT_ALGOS = ["inra", "ita", "sf", "hybrid"]


def answers(result):
    return {(r.set_id, round(r.score, 9)) for r in result.results}


def reference(searcher, q, tau):
    return {(r.set_id, round(r.score, 9)) for r in searcher.brute_force(q, tau)}


class TestAgainstBruteForce:
    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("tau", [0.3, 0.5, 0.7, 0.9, 1.0])
    def test_random_queries(self, searcher, small_vocab, algo, tau):
        rng = random.Random(hash((algo, tau)) & 0xFFFF)
        for _ in range(12):
            q = rng.sample(small_vocab, rng.randint(1, 8))
            got = answers(searcher.search(q, tau, algorithm=algo))
            assert got == reference(searcher, q, tau)

    @pytest.mark.parametrize("algo", VARIANT_ALGOS)
    @pytest.mark.parametrize("lb,sl", [(True, False), (False, True), (False, False)])
    def test_ablation_variants(self, searcher, small_vocab, algo, lb, sl):
        rng = random.Random(hash((algo, lb, sl)) & 0xFFFF)
        for tau in (0.4, 0.8):
            for _ in range(6):
                q = rng.sample(small_vocab, rng.randint(1, 6))
                got = answers(
                    searcher.search(
                        q, tau, algorithm=algo,
                        use_length_bounds=lb, use_skip_lists=sl,
                    )
                )
                assert got == reference(searcher, q, tau)

    @pytest.mark.parametrize("algo", ["nra", "inra"])
    def test_eager_scan_variants(self, searcher, small_vocab, algo):
        rng = random.Random(13)
        for _ in range(8):
            q = rng.sample(small_vocab, rng.randint(1, 6))
            got = answers(
                searcher.search(q, 0.6, algorithm=algo, lazy_scans=False)
            )
            assert got == reference(searcher, q, 0.6)

    def test_hybrid_lazy_variant(self, searcher, small_vocab):
        rng = random.Random(14)
        for _ in range(8):
            q = rng.sample(small_vocab, rng.randint(1, 6))
            got = answers(
                searcher.search(q, 0.6, algorithm="hybrid", lazy_scans=True)
            )
            assert got == reference(searcher, q, 0.6)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_on_qgram_word_database(self, word_searcher, word_database, algo):
        collection, words = word_database
        rng = random.Random(hash(algo) & 0xFFFF)
        from repro.core.tokenize import QGramTokenizer

        tok = QGramTokenizer(q=3)
        for tau in (0.6, 0.85):
            for _ in range(4):
                word = words[rng.randrange(len(words))]
                q = tok.tokens(word)
                got = answers(word_searcher.search(q, tau, algorithm=algo))
                assert got == reference(word_searcher, q, tau)


class TestHypothesisCorrectness:
    @given(
        data=st.data(),
        tau=st.sampled_from([0.25, 0.5, 0.75, 0.95, 1.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_algorithms_property(self, data, tau):
        vocab = [f"v{i}" for i in range(12)]
        sets = data.draw(
            st.lists(
                st.sets(st.sampled_from(vocab), min_size=1, max_size=6),
                min_size=1,
                max_size=25,
            )
        )
        query = data.draw(
            st.sets(st.sampled_from(vocab), min_size=1, max_size=5)
        )
        coll = SetCollection.from_token_sets([sorted(s) for s in sets])
        searcher = SetSimilaritySearcher(coll)
        ref = reference(searcher, sorted(query), tau)
        for algo in ALGOS:
            got = answers(searcher.search(sorted(query), tau, algorithm=algo))
            assert got == ref, algo


class TestEdgeCases:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_query_with_unseen_tokens_only(self, searcher, algo):
        result = searcher.search(["unseen1", "unseen2"], 0.5, algorithm=algo)
        assert len(result) == 0

    @pytest.mark.parametrize("algo", ALGOS)
    def test_query_mixing_seen_and_unseen(self, searcher, small_vocab, algo):
        q = [small_vocab[0], "unseen-token"]
        got = answers(searcher.search(q, 0.3, algorithm=algo))
        assert got == reference(searcher, q, 0.3)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_tau_one_finds_exact_duplicates(self, algo):
        coll = SetCollection.from_token_sets(
            [["a", "b"], ["a", "b"], ["a"], ["a", "b", "c"]]
        )
        searcher = SetSimilaritySearcher(coll)
        result = searcher.search(["a", "b"], 1.0, algorithm=algo)
        assert set(result.ids()) == {0, 1}
        assert all(r.score == pytest.approx(1.0) for r in result.results)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_single_token_query(self, algo):
        coll = SetCollection.from_token_sets([["a"], ["a", "b"], ["b"]])
        searcher = SetSimilaritySearcher(coll)
        got = answers(searcher.search(["a"], 0.5, algorithm=algo))
        assert got == reference(searcher, ["a"], 0.5)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_all_sets_identical(self, algo):
        coll = SetCollection.from_token_sets([["x", "y"]] * 5)
        searcher = SetSimilaritySearcher(coll)
        result = searcher.search(["x", "y"], 0.9, algorithm=algo)
        assert set(result.ids()) == {0, 1, 2, 3, 4}

    @pytest.mark.parametrize("algo", ALGOS)
    def test_singleton_collection(self, algo):
        coll = SetCollection.from_token_sets([["only"]])
        searcher = SetSimilaritySearcher(coll)
        assert set(
            searcher.search(["only"], 1.0, algorithm=algo).ids()
        ) == {0}

    @pytest.mark.parametrize("algo", ALGOS)
    def test_very_low_threshold_returns_all_overlapping(self, algo):
        coll = SetCollection.from_token_sets(
            [["a", "b"], ["b", "c"], ["c", "d"], ["x"]]
        )
        searcher = SetSimilaritySearcher(coll)
        got = answers(searcher.search(["b", "c"], 0.01, algorithm=algo))
        assert got == reference(searcher, ["b", "c"], 0.01)
        assert 3 not in {sid for sid, _ in got}  # no-overlap never returned

    def test_invalid_threshold_rejected(self, searcher, small_vocab):
        with pytest.raises(InvalidThresholdError):
            searcher.search([small_vocab[0]], 0.0)
        with pytest.raises(InvalidThresholdError):
            searcher.search([small_vocab[0]], 1.5)

    def test_unknown_algorithm_rejected(self, searcher, small_vocab):
        with pytest.raises(UnknownAlgorithmError):
            searcher.search([small_vocab[0]], 0.5, algorithm="quantum")

    def test_results_sorted_best_first(self, searcher, small_vocab):
        rng = random.Random(5)
        q = rng.sample(small_vocab, 6)
        result = searcher.search(q, 0.2, algorithm="sf")
        scores = [r.score for r in result.results]
        assert scores == sorted(scores, reverse=True)

    def test_scores_are_exact(self, searcher, small_vocab):
        from repro.core.similarity import idf_similarity

        rng = random.Random(6)
        q = rng.sample(small_vocab, 5)
        result = searcher.search(q, 0.3, algorithm="hybrid")
        for r in result.results:
            rec = searcher.collection[r.set_id]
            expected = idf_similarity(
                q, rec.tokens, searcher.collection.stats
            )
            assert r.score == pytest.approx(expected)
