"""Tests for the observability layer (``repro.obs``).

Covers the metrics registry (families, labels, histogram bucket edges,
thread safety), the Prometheus text exposition against a golden
document, the global registry runtime, the span tracer (nesting, JSONL
round-trip, the flame summary), and the end-to-end wiring: running a
query with a registry installed populates the documented families.
"""

import json
import threading

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.obs import metrics, trace
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
class TestCounterAndGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.dec(4)
        g.inc()
        assert g.value == pytest.approx(7.0)

    def test_concurrent_increments_are_exact(self):
        # The registry's whole reason to lock: N threads, no lost updates.
        c = Counter()
        threads = [
            threading.Thread(
                target=lambda: [c.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == pytest.approx(8000.0)


class TestHistogram:
    def test_bucket_edges_inclusive(self):
        # Prometheus `le` semantics: an observation equal to a bound
        # lands in that bound's bucket.
        h = Histogram([0.1, 0.5, 1.0])
        h.observe(0.1)
        assert dict(h.cumulative_buckets())[0.1] == 1

    def test_cumulative_counts(self):
        h = Histogram([0.1, 0.5, 1.0])
        for value in (0.05, 0.3, 0.7, 2.0):
            h.observe(value)
        buckets = h.cumulative_buckets()
        assert buckets == [
            (0.1, 1), (0.5, 2), (1.0, 3), (float("inf"), 4),
        ]
        assert h.count == 4
        assert h.sum == pytest.approx(3.05)

    def test_overflow_only_in_inf(self):
        h = Histogram([0.1])
        h.observe(99.0)
        assert h.cumulative_buckets() == [(0.1, 0), (float("inf"), 1)]

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram([1.0, 0.5])
        with pytest.raises(ValueError):
            Histogram([])


# ----------------------------------------------------------------------
# registry and families
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_family_is_idempotent(self):
        r = MetricsRegistry()
        a = r.counter("queries_total", "Queries.", ("algo",))
        b = r.counter("queries_total", "Queries.", ("algo",))
        assert a is b

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x_total")
        with pytest.raises(ValueError):
            r.gauge("x_total")

    def test_label_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("y_total", labelnames=("algo",))
        with pytest.raises(ValueError):
            r.counter("y_total")

    def test_invalid_names_rejected(self):
        r = MetricsRegistry()
        for bad in ("", "has space", "9leading", "dash-ed"):
            with pytest.raises(ValueError):
                r.counter(bad)

    def test_labeled_children_are_independent(self):
        r = MetricsRegistry()
        family = r.counter("queries_total", labelnames=("algo",))
        family.labels(algo="sf").inc(3)
        family.labels(algo="nra").inc()
        assert family.labels(algo="sf").value == pytest.approx(3.0)
        assert family.labels(algo="nra").value == pytest.approx(1.0)
        assert family.total() == pytest.approx(4.0)

    def test_missing_label_rejected(self):
        r = MetricsRegistry()
        family = r.counter("z_total", labelnames=("algo", "kind"))
        with pytest.raises(ValueError):
            family.labels(algo="sf")

    def test_labelless_family_proxies_child(self):
        r = MetricsRegistry()
        r.counter("plain_total").inc(2)
        assert r.total("plain_total") == pytest.approx(2.0)

    def test_snapshot_shape(self):
        r = MetricsRegistry()
        r.counter("c_total", labelnames=("algo",)).labels(algo="sf").inc()
        r.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snap = r.snapshot()
        assert snap["c_total"] == {'algo="sf"': 1.0}
        assert snap["h_seconds"][""]["count"] == 1
        assert snap["h_seconds"][""]["buckets"][0] == [1.0, 1]
        json.dumps(snap)  # JSON-ready, as documented

    def test_null_registry_accepts_everything(self):
        r = NullRegistry()
        assert not r.enabled
        r.counter("anything").labels(algo="sf").inc()
        r.histogram("h").observe(1.0)
        r.gauge("g").set(5)
        assert r.snapshot() == {}
        assert r.total("anything") == 0.0


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheusExposition:
    def test_golden_document(self):
        r = MetricsRegistry()
        r.counter(
            "queries_total", "Queries executed.", ("algo",)
        ).labels(algo="sf").inc(3)
        r.histogram(
            "latency_seconds", "Latency.", buckets=(0.1, 1.0)
        ).observe(0.05)
        r.gauge("inflight", "In-flight requests.").set(2)
        expected = (
            '# HELP inflight In-flight requests.\n'
            '# TYPE inflight gauge\n'
            'inflight 2\n'
            '# HELP latency_seconds Latency.\n'
            '# TYPE latency_seconds histogram\n'
            'latency_seconds_bucket{le="0.1"} 1\n'
            'latency_seconds_bucket{le="1"} 1\n'
            'latency_seconds_bucket{le="+Inf"} 1\n'
            'latency_seconds_sum 0.05\n'
            'latency_seconds_count 1\n'
            '# HELP queries_total Queries executed.\n'
            '# TYPE queries_total counter\n'
            'queries_total{algo="sf"} 3\n'
        )
        assert metrics.render_prometheus(r) == expected

    def test_label_values_escaped(self):
        r = MetricsRegistry()
        r.counter("c_total", labelnames=("q",)).labels(
            q='say "hi"\nback\\slash'
        ).inc()
        text = metrics.render_prometheus(r)
        assert 'q="say \\"hi\\"\\nback\\\\slash"' in text

    def test_null_registry_renders_empty(self):
        assert metrics.render_prometheus(NullRegistry()) == ""


# ----------------------------------------------------------------------
# global runtime
# ----------------------------------------------------------------------
class TestGlobalRegistry:
    def test_disabled_by_default(self):
        assert metrics.get_registry().enabled is False

    def test_use_registry_scopes(self):
        before = metrics.get_registry()
        with metrics.use_registry(MetricsRegistry()) as registry:
            assert metrics.get_registry() is registry
            registry.counter("x_total").inc()
        assert metrics.get_registry() is before

    def test_enable_is_idempotent(self):
        previous = metrics.get_registry()
        try:
            first = metrics.enable()
            second = metrics.enable()
            assert first is second and first.enabled
        finally:
            metrics.set_registry(previous)

    def test_summary_line(self):
        with metrics.use_registry(MetricsRegistry()) as registry:
            registry.counter(
                "queries_total", labelnames=("algo",)
            ).labels(algo="sf").inc(4)
            registry.counter("elements_read_total").inc(128)
            assert metrics.summary_line(registry) == (
                "metrics: queries=4 elements_read=128"
            )

    def test_summary_line_disabled(self):
        assert metrics.summary_line(NullRegistry()) == "metrics: disabled"


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_records_parents(self):
        tracer = trace.Tracer()
        with tracer.span("query", algo="sf") as outer:
            with tracer.span("sf.scan_list", token="abc"):
                tracer.event("sf.prune", count=2)
            outer.note(answers=1)
        by_name = {r.name: r for r in tracer.records}
        query = by_name["query"]
        scan = by_name["sf.scan_list"]
        prune = by_name["sf.prune"]
        assert query.parent_id == 0
        assert scan.parent_id == query.span_id
        assert prune.parent_id == scan.span_id
        assert prune.duration == 0.0
        assert query.attrs == {"algo": "sf", "answers": 1}

    def test_durations_monotonic(self):
        tracer = trace.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["outer"].duration >= by_name["inner"].duration >= 0.0

    def test_jsonl_round_trip(self):
        tracer = trace.Tracer()
        with tracer.span("query", tau=0.8):
            tracer.event("list.seek", skipped=7)
        text = tracer.to_jsonl()
        records = trace.read_jsonl(text)
        assert [(r.span_id, r.parent_id, r.name, r.attrs)
                for r in records] == \
            [(r.span_id, r.parent_id, r.name, r.attrs)
             for r in tracer.records]

    def test_write_jsonl(self, tmp_path):
        tracer = trace.Tracer()
        with tracer.span("a"):
            pass
        path = tmp_path / "spans.jsonl"
        assert tracer.write_jsonl(str(path)) == 1
        assert len(trace.read_jsonl(path.read_text())) == 1

    def test_capture_installs_and_restores(self):
        assert trace.current() is None
        with trace.capture() as tracer:
            assert trace.current() is tracer
            with trace.span("via-module"):
                pass
        assert trace.current() is None
        assert [r.name for r in tracer.records] == ["via-module"]

    def test_module_span_is_noop_when_uninstalled(self):
        span = trace.span("ignored")
        assert span is trace.NOOP_SPAN
        with span:
            span.note(anything=1)  # accepted, discarded

    def test_threads_do_not_share_stacks(self):
        tracer = trace.Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("worker-span"):
                done.wait(1.0)

        with tracer.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            done.set()
            t.join()
        by_name = {r.name: r for r in tracer.records}
        # The worker's span must be a root, not a child of main-span.
        assert by_name["worker-span"].parent_id == 0

    def test_flame_summary(self):
        tracer = trace.Tracer()
        with tracer.span("query"):
            with tracer.span("sf.scan_list"):
                pass
            with tracer.span("sf.scan_list"):
                pass
        text = trace.flame_summary(tracer.records)
        lines = text.splitlines()
        assert "span" in lines[0] and "self_ms" in lines[0]
        assert any("query" in line and "  1" in line for line in lines)
        assert any("sf.scan_list" in line and "  2" in line
                   for line in lines)

    def test_flame_summary_empty(self):
        assert trace.flame_summary([]) == "(empty trace)"


# ----------------------------------------------------------------------
# end-to-end wiring
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def searcher():
    sets = [
        ["apple", "banana", "cherry"],
        ["apple", "banana", "date"],
        ["elder", "fig", "grape", "apple"],
        ["banana", "cherry", "date", "elder"],
    ] * 5
    return SetSimilaritySearcher(SetCollection.from_token_sets(sets))


class TestQueryWiring:
    def test_search_populates_documented_families(self, searcher):
        with metrics.use_registry(MetricsRegistry()) as registry:
            result = searcher.search(["apple", "banana", "cherry"], 0.5,
                                     algorithm="sf")
            assert result.results
            assert registry.total("queries_total") == 1
            assert registry.get("queries_total").labels(algo="sf").value == 1
            assert registry.total("elements_read_total") == \
                result.stats.elements_read
            latency = registry.get("query_latency_seconds")
            assert latency.labels(algo="sf").count == 1
            assert latency.labels(algo="sf").bounds == \
                DEFAULT_LATENCY_BUCKETS

    def test_search_traces_list_scans(self, searcher):
        with trace.capture() as tracer:
            searcher.search(["apple", "banana", "cherry"], 0.5,
                            algorithm="sf")
        names = {r.name for r in tracer.records}
        assert "query" in names and "sf.scan_list" in names
        query = next(r for r in tracer.records if r.name == "query")
        assert query.attrs["algo"] == "sf"
        assert "answers" in query.attrs
        scans = [r for r in tracer.records if r.name == "sf.scan_list"]
        assert all(r.parent_id == query.span_id for r in scans)

    def test_disabled_search_records_nothing(self, searcher):
        searcher.search(["apple", "banana"], 0.5, algorithm="sf")
        assert metrics.get_registry().snapshot() == {}
