"""Unit tests for the simulated paged storage and I/O accounting."""

import pytest

from repro.core.errors import StorageError
from repro.storage.pages import (
    IOStats,
    PagedFile,
    SequentialCursor,
    bytes_human,
)


class TestIOStats:
    def test_initial_zero(self):
        s = IOStats()
        assert s.total_pages == 0
        assert s.elements_read == 0

    def test_charges(self):
        s = IOStats()
        s.charge_sequential_page(2)
        s.charge_random_page()
        s.charge_element(5)
        s.charge_hash_probe()
        s.charge_skip_jump(3)
        s.charge_candidate_scan(4)
        assert s.sequential_pages == 2
        assert s.random_pages == 1
        assert s.elements_read == 5
        assert s.hash_probes == 1
        assert s.skip_jumps == 3
        assert s.candidate_scans == 4

    def test_cost_weights_random_higher(self):
        s = IOStats()
        s.charge_sequential_page(10)
        seq_cost = s.cost()
        s.reset()
        s.charge_random_page(10)
        rand_cost = s.cost()
        assert rand_cost == 10 * seq_cost

    def test_snapshot_and_add(self):
        a, b = IOStats(), IOStats()
        a.charge_element(3)
        b.charge_element(4)
        b.charge_random_page(2)
        a.add(b)
        snap = a.snapshot()
        assert snap["elements_read"] == 7
        assert snap["random_pages"] == 2

    def test_reset(self):
        s = IOStats()
        s.charge_element()
        s.reset()
        assert s.elements_read == 0


class TestPagedFile:
    def test_append_and_len(self):
        f = PagedFile(record_bytes=8, page_capacity=4)
        for i in range(10):
            f.append(i)
        assert len(f) == 10
        assert f.num_pages == 3  # ceil(10/4)

    def test_size_accounting(self):
        f = PagedFile(record_bytes=8, page_capacity=4)
        f.append(0)
        assert f.size_bytes() == 8  # byte-accurate
        assert f.allocated_bytes() == 4 * 8  # page-rounded

    def test_invalid_params(self):
        with pytest.raises(StorageError):
            PagedFile(record_bytes=0)
        with pytest.raises(StorageError):
            PagedFile(record_bytes=8, page_capacity=0)

    def test_fetch_charges_random(self):
        f = PagedFile(8, 4)
        f.extend(range(10))
        stats = IOStats()
        assert f.fetch(7, stats) == 7
        assert stats.random_pages == 1

    def test_fetch_out_of_range(self):
        f = PagedFile(8, 4)
        with pytest.raises(StorageError):
            f.fetch(0)

    def test_page_of(self):
        f = PagedFile(8, 4)
        assert f.page_of(0) == 0
        assert f.page_of(3) == 0
        assert f.page_of(4) == 1


class TestSequentialCursor:
    def _file(self, n=10, cap=4):
        f = PagedFile(8, cap)
        f.extend(range(n))
        return f

    def test_sequential_page_charging(self):
        f = self._file(10, 4)
        stats = IOStats()
        c = f.cursor(stats)
        out = []
        while not c.exhausted():
            out.append(c.next())
        assert out == list(range(10))
        assert stats.sequential_pages == 3  # one per page crossed
        assert stats.elements_read == 10

    def test_peek_does_not_advance_or_charge_element(self):
        f = self._file()
        stats = IOStats()
        c = f.cursor(stats)
        assert c.peek() == 0
        assert c.peek() == 0
        assert stats.elements_read == 0
        assert c.next() == 0
        assert stats.elements_read == 1

    def test_peek_exhausted_raises(self):
        f = PagedFile(8, 4)
        c = f.cursor()
        with pytest.raises(StorageError):
            c.peek()

    def test_jump_charges_random_on_new_page(self):
        f = self._file(20, 4)
        stats = IOStats()
        c = f.cursor(stats)
        c.peek()  # buffer page 0 (1 sequential)
        c.jump(17)  # page 4
        c.peek()
        assert stats.random_pages == 1
        assert stats.sequential_pages == 1

    def test_jump_same_page_free(self):
        f = self._file(20, 4)
        stats = IOStats()
        c = f.cursor(stats)
        c.peek()  # page 0 buffered
        c.jump(2)  # still page 0
        c.peek()
        assert stats.random_pages == 0

    def test_jump_backwards_rejected(self):
        f = self._file()
        c = f.cursor()
        c.jump(5)
        with pytest.raises(StorageError):
            c.jump(2)

    def test_jump_past_end_allowed(self):
        f = self._file(5)
        c = f.cursor()
        c.jump(100)
        assert c.exhausted()

    def test_start_offset(self):
        f = self._file(10)
        c = f.cursor(start=8)
        assert c.next() == 8

    def test_negative_start_rejected(self):
        f = self._file()
        with pytest.raises(StorageError):
            SequentialCursor(f, None, start=-1)

    def test_skip_without_reading(self):
        f = self._file(10, 4)
        stats = IOStats()
        c = f.cursor(stats)
        c.skip(9)
        assert c.next() == 9
        assert stats.elements_read == 1


class TestBytesHuman:
    def test_units(self):
        assert bytes_human(512) == "512 B"
        assert bytes_human(2048) == "2.0 KB"
        assert bytes_human(5 * 1024 * 1024) == "5.0 MB"
        assert bytes_human(3 * 1024 ** 3) == "3.0 GB"
