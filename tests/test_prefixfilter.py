"""Tests for the prefix-filter selection baseline (Section IX related work)."""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.algorithms.prefixfilter import PrefixFilterSearcher
from repro.core.errors import ConfigurationError, EmptyQueryError


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(41)
    vocab = [f"t{i}" for i in range(30)]
    sets = [rng.sample(vocab, rng.randint(1, 7)) for _ in range(250)]
    coll = SetCollection.from_token_sets(sets)
    return (
        SetSimilaritySearcher(coll),
        PrefixFilterSearcher(coll, tau_min=0.5),
        vocab,
    )


def answers(results):
    return {(r.set_id, round(r.score, 9)) for r in results}


class TestCorrectness:
    @pytest.mark.parametrize("tau", [0.5, 0.7, 0.9, 1.0])
    def test_matches_brute_force(self, setup, tau):
        searcher, pf, vocab = setup
        rng = random.Random(int(tau * 100))
        for _ in range(12):
            q = rng.sample(vocab, rng.randint(1, 6))
            got = answers(pf.search(q, tau).results)
            ref = answers(searcher.brute_force(q, tau))
            assert got == ref, (tau, q)

    def test_exact_match_found_at_tau_one(self, setup):
        searcher, _pf, _v = setup
        pf1 = PrefixFilterSearcher(searcher.collection, tau_min=1.0)
        rec = searcher.collection[7]
        result = pf1.search(sorted(rec.tokens), 1.0)
        assert 7 in result.ids()

    def test_below_tau_min_rejected(self, setup):
        _s, pf, vocab = setup
        with pytest.raises(ConfigurationError):
            pf.search([vocab[0]], 0.3)

    def test_empty_query_rejected(self, setup):
        _s, pf, _v = setup
        with pytest.raises(EmptyQueryError):
            pf.search([], 0.6)

    def test_unseen_tokens_ok(self, setup):
        searcher, pf, vocab = setup
        q = [vocab[0], "zz-unknown"]
        assert answers(pf.search(q, 0.5).results) == answers(
            searcher.brute_force(q, 0.5)
        )

    def test_randomized_collections(self):
        rng = random.Random(9)
        for trial in range(5):
            vocab = [f"v{i}" for i in range(15)]
            sets = [
                rng.sample(vocab, rng.randint(1, 5)) for _ in range(60)
            ]
            coll = SetCollection.from_token_sets(sets)
            searcher = SetSimilaritySearcher(coll)
            pf = PrefixFilterSearcher(coll, tau_min=0.6)
            for tau in (0.6, 0.85, 1.0):
                q = rng.sample(vocab, rng.randint(1, 4))
                assert answers(pf.search(q, tau).results) == answers(
                    searcher.brute_force(q, tau)
                ), (trial, tau, q)


class TestIndexShape:
    def test_prefix_index_smaller_than_full(self, setup):
        searcher, pf, _v = setup
        full = searcher.index.num_postings()
        assert pf.index_postings() < full

    def test_higher_tau_min_means_smaller_index(self, setup):
        searcher, _pf, _v = setup
        loose = PrefixFilterSearcher(searcher.collection, tau_min=0.5)
        tight = PrefixFilterSearcher(searcher.collection, tau_min=0.9)
        assert tight.index_postings() <= loose.index_postings()

    def test_invalid_tau_min(self, setup):
        searcher, _pf, _v = setup
        with pytest.raises(Exception):
            PrefixFilterSearcher(searcher.collection, tau_min=0.0)

    def test_unfrozen_rejected(self):
        coll = SetCollection()
        coll.add(["a"])
        with pytest.raises(ConfigurationError):
            PrefixFilterSearcher(coll)

    def test_result_metadata(self, setup):
        _s, pf, vocab = setup
        result = pf.search(vocab[:3], 0.7)
        assert result.algorithm == "prefix-filter"
        assert result.peak_candidates >= len(result)
