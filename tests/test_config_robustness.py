"""Configuration fuzzing: answers must be invariant to storage tuning.

Page capacity, skip-list stride, hash bucket capacity and B-tree order are
*performance* knobs; none of them may change what a selection returns.
These tests sweep them (including degenerate extremes) against the same
query set and demand identical answers.
"""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.relational.sqlbaseline import SqlBaseline


@pytest.fixture(scope="module")
def base():
    rng = random.Random(77)
    vocab = [f"t{i}" for i in range(35)]
    sets = [rng.sample(vocab, rng.randint(1, 8)) for _ in range(250)]
    coll = SetCollection.from_token_sets(sets)
    queries = [rng.sample(vocab, rng.randint(1, 6)) for _ in range(12)]
    reference = SetSimilaritySearcher(coll)
    expected = {
        (tuple(q), tau): {
            (r.set_id, round(r.score, 9))
            for r in reference.brute_force(q, tau)
        }
        for q in queries
        for tau in (0.4, 0.8, 1.0)
    }
    return coll, queries, expected


def check_searcher(searcher, queries, expected, algorithms=("sf", "inra")):
    for q in queries:
        for tau in (0.4, 0.8, 1.0):
            for algo in algorithms:
                got = {
                    (r.set_id, round(r.score, 9))
                    for r in searcher.search(q, tau, algorithm=algo).results
                }
                assert got == expected[(tuple(q), tau)], (algo, tau, q)


class TestStorageKnobs:
    @pytest.mark.parametrize("page_capacity", [1, 2, 7, 1024])
    def test_page_capacity_irrelevant_to_answers(
        self, base, page_capacity
    ):
        coll, queries, expected = base
        searcher = SetSimilaritySearcher(coll, page_capacity=page_capacity)
        check_searcher(searcher, queries, expected)

    @pytest.mark.parametrize("stride", [1, 2, 5, 100])
    def test_skiplist_stride_irrelevant(self, base, stride):
        coll, queries, expected = base
        searcher = SetSimilaritySearcher(coll, skiplist_stride=stride)
        check_searcher(searcher, queries, expected)

    @pytest.mark.parametrize("bucket_capacity", [1, 3, 256])
    def test_hash_bucket_capacity_irrelevant(self, base, bucket_capacity):
        coll, queries, expected = base
        searcher = SetSimilaritySearcher(
            coll, hash_bucket_capacity=bucket_capacity
        )
        check_searcher(searcher, queries, expected, algorithms=("ta", "ita"))

    @pytest.mark.parametrize("max_bytes", [64, 4096])
    def test_skiplist_byte_cap_irrelevant(self, base, max_bytes):
        coll, queries, expected = base
        searcher = SetSimilaritySearcher(coll, skiplist_max_bytes=max_bytes)
        check_searcher(searcher, queries, expected)

    @pytest.mark.parametrize("order", [4, 8, 200])
    def test_btree_order_irrelevant_to_sql(self, base, order):
        coll, queries, expected = base
        reference = SetSimilaritySearcher(coll)
        sql = SqlBaseline(coll, btree_order=order)
        for q in queries:
            for tau in (0.4, 0.8, 1.0):
                pq = reference.prepare(q)
                got = {
                    (r.set_id, round(r.score, 9))
                    for r in sql.search(pq, tau).results
                }
                assert got == expected[(tuple(q), tau)]

    @pytest.mark.parametrize("pool", [1, 16, 10_000])
    def test_buffer_pool_irrelevant_to_answers(self, base, pool):
        coll, queries, expected = base
        searcher = SetSimilaritySearcher(coll)
        for q in queries:
            got = {
                (r.set_id, round(r.score, 9))
                for r in searcher.search(
                    q, 0.8, algorithm="ta", buffer_pool_pages=pool
                ).results
            }
            assert got == expected[(tuple(q), 0.8)]


class TestCombinedExtremes:
    def test_everything_degenerate_at_once(self, base):
        coll, queries, expected = base
        searcher = SetSimilaritySearcher(
            coll,
            page_capacity=1,
            skiplist_stride=100,
            hash_bucket_capacity=1,
        )
        check_searcher(
            searcher, queries, expected,
            algorithms=("sf", "inra", "ita", "hybrid", "ta", "nra",
                        "sort-by-id"),
        )
