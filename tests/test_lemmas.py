"""Constructed instances for the paper's Lemmas 1-4 (Sections V-VII).

These tests build adversarial corpora where the paper proves the access-cost
separations, and check them with the deterministic element counters:

* Lemma 1 — NRA reads arbitrarily more than iNRA (order preservation and
  the length window let iNRA skip almost everything);
* Section V remark — with unique lengths and tau = 1, any Length-Bounded
  algorithm touches O(1) elements while NRA scans the database;
* Lemma 3 flavour — instances where breadth-first iNRA stops earlier than
  depth-first SF (SF must fully descend list 1 first);
* Lemma 4 — Hybrid never reads more elements than iNRA, and matches or
  beats SF on SF-friendly instances.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SetCollection, SetSimilaritySearcher
from repro.contracts import (
    ContractViolation,
    invariants_enabled,
    set_invariant_checking,
)


def elements(searcher, q, tau, algo, **opts):
    return searcher.search(q, tau, algorithm=algo, **opts).stats.elements_read


class TestLemma1NraVsInra:
    """A long run of sets sharing one query token but far too short/long to
    ever qualify: NRA must crawl them, iNRA skips the whole window."""

    @pytest.fixture(scope="class")
    def instance(self):
        sets = []
        # 200 tiny sets containing token 'a' only: lengths far below the
        # tau-window of a two-token query.
        for i in range(200):
            sets.append(["a"])
        # The actual near-matches.
        sets.append(["a", "b"])
        sets.append(["a", "b", "pad"])
        coll = SetCollection.from_token_sets(sets)
        return SetSimilaritySearcher(coll)

    def test_inra_reads_far_fewer(self, instance):
        q = ["a", "b"]
        nra = elements(instance, q, 0.9, "nra")
        inra = elements(instance, q, 0.9, "inra")
        assert inra * 5 < nra  # arbitrarily better in the limit

    def test_answers_agree(self, instance):
        q = ["a", "b"]
        assert set(
            instance.search(q, 0.9, algorithm="nra").ids()
        ) == set(instance.search(q, 0.9, algorithm="inra").ids())


class TestUniqueLengthsTauOne:
    """Section V: unique lengths + tau=1 restrict the search space to a
    single set for any algorithm using Length Boundedness."""

    @pytest.fixture(scope="class")
    def instance(self):
        sets = [
            [f"x{i}" for i in range(1, n + 1)] for n in range(1, 60)
        ]
        coll = SetCollection.from_token_sets(sets)
        # Exact (stride-1) skip lists: seeks land on the window boundary,
        # exposing the theoretical O(1)-elements claim undiluted.
        return SetSimilaritySearcher(coll, skiplist_stride=1)

    @pytest.mark.parametrize("algo", ["inra", "sf", "hybrid", "ita"])
    def test_bounded_algorithms_touch_few_elements(self, instance, algo):
        q = [f"x{i}" for i in range(1, 11)]  # exact copy of set 9
        r = instance.search(q, 1.0, algorithm=algo)
        assert set(r.ids()) == {9}
        # The length window contains one length; a handful of postings at
        # most are touched across the 10 lists.
        assert r.stats.elements_read <= 12

    def test_nra_scans_much_more(self, instance):
        q = [f"x{i}" for i in range(1, 11)]
        nra = elements(instance, q, 1.0, "nra")
        sf = elements(instance, q, 1.0, "sf")
        assert sf * 3 < nra


class TestDepthVsBreadth:
    """SF reads rare lists deeply before learning from frequent lists;
    round-robin iNRA can discover non-viability earlier (Lemma 3), while on
    SF-friendly skew SF reads less than iNRA (Lemma 2 flavour)."""

    def _skewed_instance(self):
        # token 'rare' appears in many sets whose other tokens never match
        # the query; iNRA's round-robin sees the absence quickly.
        sets = []
        for i in range(100):
            sets.append(["rare", f"junk{i}", f"junk{i}b"])
        sets.append(["rare", "mid", "freq"])
        for i in range(30):
            sets.append(["freq", f"other{i}"])
        coll = SetCollection.from_token_sets(sets)
        return SetSimilaritySearcher(coll)

    def test_all_agree_on_answers(self):
        searcher = self._skewed_instance()
        q = ["rare", "mid", "freq"]
        ref = {(r.set_id, round(r.score, 9)) for r in searcher.brute_force(q, 0.8)}
        for algo in ("inra", "sf", "hybrid"):
            got = {
                (r.set_id, round(r.score, 9))
                for r in searcher.search(q, 0.8, algorithm=algo).results
            }
            assert got == ref

    def test_hybrid_at_most_inra(self):
        searcher = self._skewed_instance()
        q = ["rare", "mid", "freq"]
        for tau in (0.6, 0.8, 0.95):
            assert elements(searcher, q, tau, "hybrid") <= elements(
                searcher, q, tau, "inra"
            )


class TestLemma4Hybrid:
    def test_hybrid_leq_inra_randomized(self):
        rng = random.Random(99)
        vocab = [f"t{i}" for i in range(40)]
        sets = [
            rng.sample(vocab, rng.randint(1, 8)) for _ in range(400)
        ]
        searcher = SetSimilaritySearcher(SetCollection.from_token_sets(sets))
        for _ in range(25):
            q = rng.sample(vocab, rng.randint(2, 6))
            tau = rng.choice([0.5, 0.7, 0.9])
            assert elements(searcher, q, tau, "hybrid") <= elements(
                searcher, q, tau, "inra"
            )

    def test_hybrid_close_to_sf_on_sf_friendly_instances(self):
        # Zipf-like skew: SF's natural habitat.  Hybrid should be within a
        # small constant of SF's element accesses (round-robin quantization
        # costs at most one extra element per list per completed round).
        rng = random.Random(5)
        sets = []
        for i in range(300):
            s = ["freq"]
            if i % 10 == 0:
                s.append("mid")
            if i % 100 == 0:
                s.append("rare")
            s.append(f"filler{i}")
            sets.append(s)
        searcher = SetSimilaritySearcher(SetCollection.from_token_sets(sets))
        q = ["rare", "mid", "freq"]
        for tau in (0.7, 0.9):
            sf = elements(searcher, q, tau, "sf")
            hybrid = elements(searcher, q, tau, "hybrid")
            n_lists = 3
            assert hybrid <= sf + 3 * n_lists


class TestContractsFireOnCorruption:
    """Every lemma above leans on Order Preservation (Section IV): the
    weight-ordered lists must be sorted by (length, id).  The runtime
    contract layer (``repro.contracts``, armed suite-wide by conftest)
    must catch a list that violates it — for *any* choice of which two
    postings got swapped, not just a hand-picked pair."""

    N_POSTINGS = 8

    # setup/teardown rather than a fixture: hypothesis rejects
    # function-scoped fixtures on @given tests.
    def setup_method(self, method):
        # conftest arms the contracts suite-wide via the environment, but
        # arm explicitly here so these tests hold even when someone runs
        # the suite with REPRO_CHECK_INVARIANTS=0.
        self._previous_checking = set_invariant_checking(True)

    def teardown_method(self, method):
        set_invariant_checking(self._previous_checking)

    def _fresh_searcher(self):
        # Eight sets containing token 'b' with strictly increasing
        # lengths (every posting pair strictly ordered), plus four sets
        # without it so 'b' keeps a non-zero idf — at tau=0.1 iNRA scans
        # the whole 'b' list (verified by the clean-index test below).
        sets = [
            ["b"] + [f"pad{i}_{j}" for j in range(i + 1)]
            for i in range(self.N_POSTINGS)
        ]
        sets += [[f"other{i}"] for i in range(4)]
        return SetSimilaritySearcher(SetCollection.from_token_sets(sets))

    @settings(max_examples=30, deadline=None)
    @given(
        i=st.integers(min_value=0, max_value=N_POSTINGS - 2),
        extent=st.integers(min_value=1, max_value=N_POSTINGS - 1),
    )
    def test_unsorted_list_trips_order_preservation(self, i, extent):
        assert invariants_enabled()
        searcher = self._fresh_searcher()
        records = searcher.index._postings["b"].weight_file._records
        j = min(i + extent, len(records) - 1)
        records[i], records[j] = records[j], records[i]
        with pytest.raises(ContractViolation):
            # tau low enough that nothing prunes: the cursor walks the
            # whole list and must see the descent the swap created.
            searcher.search(["b"], 0.1, algorithm="inra")

    def test_clean_index_scans_whole_list(self):
        searcher = self._fresh_searcher()
        result = searcher.search(["b"], 0.1, algorithm="inra")
        assert result.stats.elements_read == self.N_POSTINGS

    def test_disabled_contracts_do_not_fire(self):
        searcher = self._fresh_searcher()
        records = searcher.index._postings["b"].weight_file._records
        records[0], records[-1] = records[-1], records[0]
        previous = set_invariant_checking(False)
        try:
            # No ContractViolation: the plain cursor scans silently (the
            # answer may be wrong — that is exactly the failure mode the
            # armed mode exists to surface).
            searcher.search(["b"], 0.1, algorithm="inra")
        finally:
            set_invariant_checking(previous)
