"""Unit tests for the shared algorithm infrastructure (base module)."""

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.algorithms.base import (
    AlgorithmResult,
    QueryLists,
    SearchResult,
    algorithm_names,
    make_algorithm,
    register_algorithm,
)
from repro.core.errors import UnknownAlgorithmError
from repro.storage.pages import IOStats


@pytest.fixture()
def tiny():
    coll = SetCollection.from_token_sets(
        [["a"], ["a", "b"], ["b", "c"], ["c"]]
    )
    return SetSimilaritySearcher(coll)


class TestSearchResult:
    def test_tuple_protocol(self):
        r = SearchResult(3, 0.5)
        set_id, score = r
        assert (set_id, score) == (3, 0.5)

    def test_equality(self):
        assert SearchResult(1, 0.5) == SearchResult(1, 0.5)
        assert SearchResult(1, 0.5) != SearchResult(2, 0.5)


class TestAlgorithmResult:
    def test_results_sorted(self):
        result = AlgorithmResult(
            "x",
            [SearchResult(1, 0.2), SearchResult(2, 0.9)],
            IOStats(),
            elements_total=10,
        )
        assert result.ids() == [2, 1]

    def test_tie_broken_by_id(self):
        result = AlgorithmResult(
            "x",
            [SearchResult(5, 0.5), SearchResult(3, 0.5)],
            IOStats(),
            elements_total=1,
        )
        assert result.ids() == [3, 5]

    def test_pruning_power(self):
        stats = IOStats()
        stats.charge_element(25)
        result = AlgorithmResult("x", [], stats, elements_total=100)
        assert result.pruning_power == pytest.approx(0.75)

    def test_pruning_power_empty_lists(self):
        result = AlgorithmResult("x", [], IOStats(), elements_total=0)
        assert result.pruning_power == 1.0

    def test_pruning_power_overcount_raises_under_invariants(self):
        # The old behavior silently clamped elements_read down to
        # elements_total, masking accounting bugs; with invariants armed
        # (the whole suite runs with REPRO_CHECK_INVARIANTS=1) an
        # over-counted per-query ledger is now a contract violation.
        from repro.contracts import ContractViolation

        stats = IOStats()
        stats.charge_element(500)
        result = AlgorithmResult("x", [], stats, elements_total=100)
        with pytest.raises(ContractViolation, match="io-accounting"):
            result.pruning_power

    def test_pruning_power_shared_stats_clamps(self):
        # Batched execution charges one ledger for the whole batch, so
        # per-query reads legitimately exceed per-query list totals;
        # shared_stats=True keeps the clamp for that case.
        stats = IOStats()
        stats.charge_element(500)
        result = AlgorithmResult(
            "x", [], stats, elements_total=100, shared_stats=True
        )
        assert result.pruning_power == 0.0


class TestQueryLists:
    def test_skips_empty_lists(self, tiny):
        query = tiny.prepare(["a", "zz-unseen"])
        lists = QueryLists(tiny.index, query, IOStats())
        assert lists.tokens == ["a"]
        assert len(lists) == 1

    def test_elements_total(self, tiny):
        query = tiny.prepare(["a", "b"])
        lists = QueryLists(tiny.index, query, IOStats())
        assert lists.elements_total == tiny.index.list_length(
            "a"
        ) + tiny.index.list_length("b")

    def test_contribution_zero_guard(self, tiny):
        query = tiny.prepare(["a"])
        lists = QueryLists(tiny.index, query, IOStats())
        assert lists.contribution(0, 0.0) == 0.0

    def test_id_order(self, tiny):
        query = tiny.prepare(["a", "b"])
        lists = QueryLists(tiny.index, query, IOStats(), order="id")
        first = lists.cursors[0].peek()
        assert isinstance(first[0], int)  # (id, length) tuples


class TestRegistry:
    def test_known_names(self):
        assert "sf" in algorithm_names()

    def test_make_unknown_raises(self, tiny):
        with pytest.raises(UnknownAlgorithmError) as exc:
            make_algorithm("nope", tiny.index)
        assert "nope" in str(exc.value)
        assert "sf" in str(exc.value)

    def test_register_and_make_custom(self, tiny):
        from repro.algorithms.base import SelectionAlgorithm

        @register_algorithm
        class Trivial(SelectionAlgorithm):
            name = "trivial-test-only"

            def _run(self, lists, tau):
                return [], 0

        try:
            alg = make_algorithm("trivial-test-only", tiny.index)
            result = alg.search(tiny.prepare(["a"]), 0.5)
            assert result.results == []
        finally:
            from repro.algorithms import base as base_module

            base_module._REGISTRY.pop("trivial-test-only", None)


class TestHarnessSqliteSpec:
    def test_sqlite_engine_spec(self, word_database):
        from repro.eval.harness import ExperimentContext

        collection, _words = word_database
        context = ExperimentContext(collection)
        word = collection.payload(0)
        via_sqlite = context.run_query("sqlite", word, 0.8)
        via_sf = context.run_query("sf", word, 0.8)
        assert set(via_sqlite.ids()) == set(via_sf.ids())
