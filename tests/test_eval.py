"""Tests for evaluation metrics and the experiment harness."""

import pytest

from repro.core.collection import SetCollection
from repro.core.similarity import IdfMeasure
from repro.data.workloads import make_workload
from repro.eval.harness import (
    ExperimentContext,
    format_table,
    parse_engine_spec,
    run_batch,
)
from repro.eval.metrics import (
    MeasureRanker,
    average_precision,
    mean,
    percentile,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)


class TestRankingMetrics:
    def test_perfect_ranking(self):
        assert average_precision([1, 2, 3], {1, 2}) == pytest.approx(1.0)

    def test_relevant_late(self):
        # single relevant at rank 3 -> AP = 1/3
        assert average_precision([9, 8, 1], {1}) == pytest.approx(1 / 3)

    def test_mixed(self):
        # relevant at ranks 1 and 3: (1/1 + 2/3)/2
        ap = average_precision([1, 9, 2], {1, 2})
        assert ap == pytest.approx((1.0 + 2 / 3) / 2)

    def test_never_retrieved(self):
        assert average_precision([5, 6], {1}) == 0.0

    def test_no_relevant_is_one(self):
        assert average_precision([1, 2], set()) == 1.0

    def test_precision_at_k(self):
        assert precision_at_k([1, 9, 2], {1, 2}, 2) == pytest.approx(0.5)
        assert precision_at_k([], {1}, 3) == 0.0
        assert precision_at_k([1], {1}, 0) == 0.0

    def test_recall_at_k(self):
        assert recall_at_k([1, 9, 2], {1, 2}, 3) == pytest.approx(1.0)
        assert recall_at_k([9], {1}, 1) == 0.0
        assert recall_at_k([], set(), 5) == 1.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank([9, 1], {1}) == pytest.approx(0.5)
        assert reciprocal_rank([9], {1}) == 0.0

    def test_pair_metrics_perfect(self):
        from repro.eval.metrics import pair_metrics

        m = pair_metrics([(1, 2), (3, 4)], [(2, 1), (4, 3)])
        assert m["precision"] == m["recall"] == m["f1"] == 1.0

    def test_pair_metrics_partial(self):
        from repro.eval.metrics import pair_metrics

        m = pair_metrics([(1, 2), (5, 6)], [(1, 2), (3, 4)])
        assert m["precision"] == pytest.approx(0.5)
        assert m["recall"] == pytest.approx(0.5)
        assert m["f1"] == pytest.approx(0.5)

    def test_pair_metrics_empty(self):
        from repro.eval.metrics import pair_metrics

        m = pair_metrics([], [])
        assert m["precision"] == m["recall"] == 1.0
        m = pair_metrics([(1, 2)], [])
        assert m["precision"] == 0.0 and m["recall"] == 1.0

    def test_mean_and_percentile(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0
        assert percentile([5.0, 1.0, 3.0], 0.5) == 3.0
        assert percentile([], 0.9) == 0.0


class TestMeasureRanker:
    @pytest.fixture()
    def coll(self):
        return SetCollection.from_token_sets(
            [["a", "b"], ["a", "b", "c"], ["x", "y"], ["a"]]
        )

    def test_candidates_overlap_only(self, coll):
        ranker = MeasureRanker(coll)
        assert ranker.candidates(["a"]) == {0, 1, 3}
        assert ranker.candidates(["zzz"]) == set()

    def test_rank_best_first(self, coll):
        ranker = MeasureRanker(coll)
        ranked = ranker.rank(["a", "b"], IdfMeasure(coll.stats))
        ids = [sid for sid, _ in ranked]
        assert ids[0] == 0  # exact match first
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_exclude(self, coll):
        ranker = MeasureRanker(coll)
        ranked = ranker.rank(
            ["a", "b"], IdfMeasure(coll.stats), exclude={0}
        )
        assert 0 not in [sid for sid, _ in ranked]

    def test_limit(self, coll):
        ranker = MeasureRanker(coll)
        assert len(ranker.rank(["a"], IdfMeasure(coll.stats), limit=2)) == 2


class TestEngineSpecs:
    def test_plain(self):
        assert parse_engine_spec("sf") == ("sf", {})

    def test_nlb(self):
        name, opts = parse_engine_spec("inra-nlb")
        assert name == "inra"
        assert opts == {"use_length_bounds": False}

    def test_nsl(self):
        name, opts = parse_engine_spec("sf-nsl")
        assert opts == {"use_skip_lists": False}

    def test_both_suffixes(self):
        name, opts = parse_engine_spec("sf-nlb-nsl")
        assert name == "sf"
        assert opts == {
            "use_length_bounds": False,
            "use_skip_lists": False,
        }

    def test_sql(self):
        assert parse_engine_spec("sql-nlb") == (
            "sql", {"use_length_bounds": False},
        )


@pytest.fixture(scope="module")
def context(word_database):
    collection, _words = word_database
    return ExperimentContext(collection)


class TestHarness:
    def test_run_query_all_engines(self, context):
        word = context.collection.payload(0)
        for spec in ["sf", "inra", "sql", "sql-nlb", "sort-by-id", "sf-nsl"]:
            result = context.run_query(spec, word, 0.8)
            assert result is not None
            assert 0 in result.ids()  # exact match always found

    def test_engines_agree(self, context):
        word = context.collection.payload(5)
        ref = None
        for spec in ["sf", "hybrid", "inra", "ita", "ta", "nra", "sql"]:
            got = {
                (r.set_id, round(r.score, 9))
                for r in context.run_query(spec, word, 0.7).results
            }
            if ref is None:
                ref = got
            assert got == ref, spec

    def test_empty_query_returns_none(self, context):
        assert context.run_query("sf", "", 0.8) is None

    def test_run_workload_aggregates(self, context):
        wl = make_workload(context.collection, (6, 10), count=5, seed=1)
        summary = context.run_workload("sf", wl, 0.8)
        assert len(summary.per_query) == 5
        assert summary.avg_results >= 1.0  # exact matches exist
        assert 0.0 <= summary.avg_pruning_power <= 1.0
        row = summary.row()
        assert row["engine"] == "sf"
        assert row["queries"] == 5

    def test_run_workload_attaches_metrics_snapshot(self, context):
        from repro.obs import metrics as obs_metrics

        wl = make_workload(context.collection, (6, 10), count=3, seed=4)
        # Disabled (the default): no snapshot rides on the summary.
        assert context.run_workload("sf", wl, 0.8).metrics_snapshot is None
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()):
            summary = context.run_workload("sf", wl, 0.8)
        snap = summary.metrics_snapshot
        assert snap is not None
        assert snap["queries_total"]['algo="sf"'] == 3

    def test_sweep_cross_product(self, context):
        wl = make_workload(context.collection, (6, 10), count=3, seed=2)
        out = context.sweep(["sf", "inra"], [wl], [0.7, 0.9])
        assert len(out) == 4

    def test_format_table(self):
        rows = [
            {"a": 1, "b": "xx"},
            {"a": 22, "b": "y"},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "22" in lines[3]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_rows_to_csv(self, context, tmp_path):
        from repro.eval.harness import rows_to_csv

        wl = make_workload(context.collection, (6, 10), count=3, seed=9)
        rows = [context.run_workload("sf", wl, 0.8).row()]
        path = tmp_path / "rows.csv"
        n = rows_to_csv(rows, path)
        assert n == 1
        import csv

        with open(path) as fh:
            parsed = list(csv.DictReader(fh))
        assert parsed[0]["engine"] == "sf"
        assert float(parsed[0]["queries"]) == 3

    def test_latency_percentiles(self, context):
        wl = make_workload(context.collection, (6, 10), count=5, seed=9)
        summary = context.run_workload("sf", wl, 0.8)
        p50 = summary.latency_percentile(0.5)
        p95 = summary.latency_percentile(0.95)
        assert 0.0 < p50 <= p95
        assert summary.row()["p95_wall_ms"] >= 0

    def test_run_batch_sequential(self, context):
        words = [context.collection.payload(i) for i in range(4)]
        results = run_batch(context, "sf", words, 0.8)
        assert len(results) == 4
        assert all(r is not None for r in results)

    def test_run_batch_parallel(self, context):
        words = [context.collection.payload(i) for i in range(6)]
        sequential = run_batch(context, "sf", words, 0.8)
        parallel = run_batch(context, "sf", words, 0.8, processes=2)
        for s, p in zip(sequential, parallel):
            assert s.ids() == p.ids()
