"""Tests for the command-line interface."""

import io
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def strings_file(tmp_path):
    path = tmp_path / "strings.txt"
    path.write_text(
        "Main Street\nMaine Street\nElm Avenue\nPennsylvania Avenue\n"
    )
    return path


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_algorithm_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--index", "x", "--text", "y",
                 "--algorithm", "bogus"]
            )


class TestIndexAndQuery:
    def test_index_builds(self, strings_file, tmp_path):
        code, out = run_cli(
            ["index", "--input", str(strings_file),
             "--output", str(tmp_path / "idx")]
        )
        assert code == 0
        assert "indexed 4 strings" in out

    def test_query_finds_match(self, strings_file, tmp_path):
        run_cli(["index", "--input", str(strings_file),
                 "--output", str(tmp_path / "idx")])
        code, out = run_cli(
            ["query", "--index", str(tmp_path / "idx"),
             "--text", "Main Stret", "--threshold", "0.5"]
        )
        assert code == 0
        assert "Main Street" in out
        first_score = float(out.splitlines()[0].split("\t")[0])
        assert 0.5 <= first_score <= 1.0

    def test_query_empty_tokens(self, strings_file, tmp_path):
        run_cli(["index", "--input", str(strings_file),
                 "--output", str(tmp_path / "idx")])
        code, _ = run_cli(
            ["query", "--index", str(tmp_path / "idx"), "--text", ""]
        )
        assert code == 2

    def test_topk(self, strings_file, tmp_path):
        run_cli(["index", "--input", str(strings_file),
                 "--output", str(tmp_path / "idx")])
        code, out = run_cli(
            ["topk", "--index", str(tmp_path / "idx"),
             "--text", "Avenue", "-k", "2"]
        )
        assert code == 0
        assert len(out.strip().splitlines()) == 2

    def test_info(self, strings_file, tmp_path):
        run_cli(["index", "--input", str(strings_file),
                 "--output", str(tmp_path / "idx")])
        code, out = run_cli(["info", "--index", str(tmp_path / "idx")])
        assert code == 0
        assert "sets:        4" in out

    def test_custom_q_round_trips(self, strings_file, tmp_path):
        # The query command must tokenize with the q the index was built
        # with (a 4-gram index probed with 3-grams finds nothing).
        run_cli(["index", "--input", str(strings_file),
                 "--output", str(tmp_path / "q4"), "--q", "4"])
        code, out = run_cli(
            ["query", "--index", str(tmp_path / "q4"),
             "--text", "Main Street", "--threshold", "0.9"]
        )
        assert code == 0
        assert "Main Street" in out

    def test_lean_index(self, strings_file, tmp_path):
        code, _ = run_cli(
            ["index", "--input", str(strings_file),
             "--output", str(tmp_path / "lean"), "--lean"]
        )
        assert code == 0
        code, out = run_cli(
            ["query", "--index", str(tmp_path / "lean"),
             "--text", "Elm Avenue", "--threshold", "0.8"]
        )
        assert code == 0
        assert "Elm Avenue" in out

    def test_empty_input_file(self, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("\n\n")
        code, _ = run_cli(
            ["index", "--input", str(empty),
             "--output", str(tmp_path / "idx")]
        )
        assert code == 2

    def test_missing_index_dir(self, tmp_path):
        code, _ = run_cli(
            ["query", "--index", str(tmp_path / "nope"), "--text", "x"]
        )
        assert code == 1


class TestDedupe:
    def test_groups_duplicates(self, tmp_path):
        path = tmp_path / "dirty.txt"
        path.write_text(
            "Acme Corporation\nAcme Corporation\nAcme Corporatoin\n"
            "Globex Inc\nTotally Different LLC\n"
        )
        code, out = run_cli(
            ["dedupe", "--input", str(path), "--threshold", "0.55"]
        )
        assert code == 0
        assert "group 1 (3 records)" in out
        assert "Totally Different LLC" not in out.split("groups")[0]

    def test_empty_input(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n")
        code, _ = run_cli(["dedupe", "--input", str(path)])
        assert code == 2

    def test_min_size(self, tmp_path):
        path = tmp_path / "dirty.txt"
        path.write_text("aaa bbb\naaa bbb\nccc ddd\n")
        code, out = run_cli(
            ["dedupe", "--input", str(path), "--min-size", "3"]
        )
        assert code == 0
        assert "0 duplicate groups" in out


class TestBench:
    def test_bench_prints_table(self):
        code, out = run_cli(
            ["bench", "--records", "300", "--queries", "3", "--tau", "0.8"]
        )
        assert code == 0
        assert "engine" in out
        assert "sf" in out


class TestModuleEntryPoint:
    def test_python_dash_m(self, strings_file, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "index",
             "--input", str(strings_file),
             "--output", str(tmp_path / "idx")],
            capture_output=True, text=True,
        )
        assert result.returncode == 0
        assert "indexed 4 strings" in result.stdout


class TestBatchCommand:
    @pytest.fixture()
    def index_dir(self, strings_file, tmp_path):
        run_cli(["index", "--input", str(strings_file),
                 "--output", str(tmp_path / "idx")])
        return tmp_path / "idx"

    @pytest.fixture()
    def queries_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("Main Stret\nElm Avenu\nMain Stret\n")
        return path

    def test_batch_answers_every_line(self, index_dir, queries_file):
        code, out = run_cli(
            ["batch", "--index", str(index_dir),
             "--input", str(queries_file), "--threshold", "0.5"]
        )
        assert code == 0
        assert "Main Street" in out
        assert "Elm Avenue" in out

    def test_batch_json_one_object_per_line(self, index_dir, queries_file):
        import json

        code, out = run_cli(
            ["batch", "--index", str(index_dir),
             "--input", str(queries_file), "--threshold", "0.5", "--json"]
        )
        assert code == 0
        rows = [json.loads(line) for line in out.strip().splitlines()]
        assert len(rows) == 3
        assert all(row["ok"] for row in rows)
        # The repeated query is answered by cache or coalescing, with
        # the same results as its first occurrence.
        assert rows[2]["results"] == rows[0]["results"]

    def test_batch_strategy_validated(self, index_dir, queries_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["batch", "--index", str(index_dir),
                 "--input", str(queries_file), "--strategy", "bogus"]
            )

    def test_batch_metrics_summary_on_stderr(self, index_dir, queries_file,
                                             capsys):
        code, out = run_cli(
            ["batch", "--index", str(index_dir),
             "--input", str(queries_file), "--threshold", "0.5",
             "--metrics"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "metrics: " in err
        assert "queries=" in err
        # The scoped registry must not leak into the process default.
        from repro.obs import metrics as obs_metrics

        assert obs_metrics.get_registry().snapshot() == {}


class TestTraceCommand:
    @pytest.fixture()
    def index_dir(self, strings_file, tmp_path):
        run_cli(["index", "--input", str(strings_file),
                 "--output", str(tmp_path / "idx")])
        return tmp_path / "idx"

    def test_query_trace_then_render(self, index_dir, tmp_path):
        import json

        trace_path = tmp_path / "spans.jsonl"
        code, out = run_cli(
            ["query", "--index", str(index_dir), "--text", "Main Stret",
             "--threshold", "0.5", "--trace", str(trace_path)]
        )
        assert code == 0
        assert "Main Street" in out  # tracing must not change answers
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        names = {r["name"] for r in records}
        assert "query" in names and "sf.scan_list" in names

        code, out = run_cli(["trace", "--input", str(trace_path)])
        assert code == 0
        assert "self_ms" in out
        assert "sf.scan_list" in out

    def test_trace_missing_file_is_error(self, tmp_path):
        code, _ = run_cli(
            ["trace", "--input", str(tmp_path / "nope.jsonl")]
        )
        assert code == 2


class TestServeCommand:
    def test_serve_end_to_end(self, strings_file, tmp_path):
        import json
        import socket
        import time
        import urllib.request

        run_cli(["index", "--input", str(strings_file),
                 "--output", str(tmp_path / "idx")])
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--index", str(tmp_path / "idx"), "--port", str(port)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            url = f"http://127.0.0.1:{port}"
            deadline = time.time() + 10
            while True:
                try:
                    with urllib.request.urlopen(
                        url + "/healthz", timeout=1
                    ) as resp:
                        assert json.loads(resp.read())["ok"]
                    break
                except OSError:
                    if time.time() > deadline:
                        raise
                    time.sleep(0.1)
            request = urllib.request.Request(
                url + "/search",
                data=json.dumps(
                    {"text": "Main Stret", "threshold": 0.5}
                ).encode(),
            )
            with urllib.request.urlopen(request, timeout=5) as resp:
                body = json.loads(resp.read())
            assert body["ok"]
            assert body["results"][0]["payload"] == "Main Street"
            # A serving process always collects metrics: the scrape must
            # carry the query that was just answered.
            with urllib.request.urlopen(url + "/metrics", timeout=5) as resp:
                assert resp.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                exposition = resp.read().decode("utf-8")
            assert "# TYPE query_latency_seconds histogram" in exposition
            assert 'query_latency_seconds_bucket{algo="sf",le="+Inf"} 1' \
                in exposition
            assert 'elements_read_total{algo="sf"}' in exposition
            assert 'http_requests_total{path="/search"} 1' in exposition
        finally:
            proc.terminate()
            proc.wait(timeout=10)


class TestHelpListsEverySubcommand:
    def test_help_covers_command_table(self):
        from repro.cli import _COMMANDS

        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True,
        )
        assert result.returncode == 0
        for command in _COMMANDS:
            assert command in result.stdout, command

    def test_command_table_matches_parser(self):
        from repro.cli import _COMMANDS

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        assert set(subparsers.choices) == set(_COMMANDS)
