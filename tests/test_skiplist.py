"""Unit + property tests for the static skip list."""

import bisect
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StorageError
from repro.storage.pages import IOStats
from repro.storage.skiplist import SkipList, _tower_height


def make_keys(n, seed=0):
    rng = random.Random(seed)
    keys = sorted(
        (round(rng.uniform(0, 100), 3), i) for i in range(n)
    )
    return keys


class TestTowerHeights:
    def test_deterministic(self):
        assert _tower_height(0) == 1
        assert _tower_height(1) == 2
        assert _tower_height(3) == 3
        assert _tower_height(7) == 4

    def test_geometric_distribution(self):
        heights = [_tower_height(i) for i in range(1024)]
        assert sum(1 for h in heights if h >= 2) == 512
        assert sum(1 for h in heights if h >= 3) == 256


class TestSeek:
    def test_seek_matches_bisect(self):
        keys = make_keys(500)
        sl = SkipList(keys)
        for probe in [(-1.0, 0), (50.0, -1), (100.5, 0), keys[42], keys[499]]:
            expected = bisect.bisect_left(keys, probe)
            got = sl.seek_ge(probe)
            # Exact (stride 1) skip lists land exactly.
            assert got == expected

    def test_seek_empty(self):
        sl = SkipList([])
        assert sl.seek_ge((1.0, 0)) == 0

    def test_seek_before_first(self):
        keys = make_keys(10)
        sl = SkipList(keys)
        assert sl.seek_ge((-5.0, 0)) == 0

    def test_seek_past_last(self):
        keys = make_keys(10)
        sl = SkipList(keys)
        pos = sl.seek_ge((1e9, 0))
        assert pos >= len(keys) - 1  # at/after last kept key

    def test_seek_charges_jumps(self):
        keys = make_keys(200)
        sl = SkipList(keys)
        stats = IOStats()
        sl.seek_ge(keys[150], stats)
        assert stats.skip_jumps > 0
        # O(log n): far fewer jumps than a linear scan.
        assert stats.skip_jumps < 100

    @given(st.integers(min_value=0, max_value=300), st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_seek_is_lower_bound_property(self, n, seed):
        keys = make_keys(n, seed)
        sl = SkipList(keys)
        rng = random.Random(seed + 999)
        probe = (round(rng.uniform(-10, 110), 3), rng.randrange(1000))
        pos = sl.seek_ge(probe)
        expected = bisect.bisect_left(keys, probe)
        # Never overshoots; with stride 1 it is exact.
        assert pos <= expected
        assert pos == expected


class TestThinning:
    def test_stride_grows_under_budget(self):
        keys = make_keys(10_000)
        full = SkipList(keys)
        capped = SkipList(keys, max_bytes=full.size_bytes() // 8)
        assert capped.stride > 1
        assert capped.size_bytes() < full.size_bytes()

    def test_thinned_seek_is_conservative(self):
        keys = make_keys(5_000)
        capped = SkipList(keys, max_bytes=4096)
        for probe in [keys[17], keys[1234], keys[4999], (200.0, 0)]:
            pos = capped.seek_ge(probe)
            expected = bisect.bisect_left(keys, probe)
            assert pos <= expected  # lands at or before the true boundary
            # And within one stride of it.
            assert expected - pos <= capped.stride

    def test_unsorted_rejected(self):
        with pytest.raises(StorageError):
            SkipList([(2.0, 0), (1.0, 1)])

    def test_invalid_stride(self):
        with pytest.raises(StorageError):
            SkipList([], stride=0)

    def test_min_key(self):
        keys = make_keys(5)
        assert SkipList(keys).min_key() == keys[0]
        assert SkipList([]).min_key() is None

    def test_len_reports_underlying(self):
        keys = make_keys(100)
        sl = SkipList(keys, max_bytes=512)
        assert len(sl) == 100
