"""Crash-recovery tests: corruption, torn writes, and the operations log.

The contract under test, per ``docs/robustness.md``:

* a load of a damaged directory either answers *identically* to the
  undamaged index or raises :class:`CorruptIndexError` whose
  :class:`RecoveryReport` names the damaged component — it never
  returns wrong scores (hypothesis property below);
* a process killed at **any** injected point during ``save_searcher``
  leaves the directory loadable as the old or the new generation;
* a damaged current generation is quarantined and the newest intact
  one takes over, with ``CURRENT`` repaired;
* the operations log replays its intact prefix and drops (then
  compacts away) anything after the first torn record.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    SetCollection,
    SetSimilaritySearcher,
    load_searcher,
    save_searcher,
)
from repro.core.errors import CorruptIndexError, StorageError
from repro.faults import TornWriteError, use_fault_plan
from repro.storage.oplog import DurableUpdatableSearcher, OperationsLog
from repro.storage.persist import RecoveryReport

TOKEN_SETS = [
    ["data", "cleaning", "matters"],
    ["data", "cleaning"],
    ["query", "processing"],
    ["set", "similarity", "query", "processing"],
    ["data", "quality", "matters"],
]

QUERY = ["data", "cleaning", "quality"]

#: Components a RecoveryReport may blame for a single-file corruption.
KNOWN_COMPONENTS = {"manifest", "collection", "postings", "pointer", "io"}


def _make_searcher():
    return SetSimilaritySearcher(SetCollection.from_token_sets(TOKEN_SETS))


def _answers(searcher, threshold=0.3):
    return {
        (r.set_id, round(r.score, 9))
        for r in searcher.search(QUERY, threshold).results
    }


@pytest.fixture(scope="module")
def saved_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("recovery") / "idx"
    searcher = _make_searcher()
    save_searcher(searcher, path)
    return path, _answers(searcher)


class TestCorruptionProperty:
    """Hypothesis: any single-byte flip anywhere in the saved state is
    either absorbed (equivalent load) or attributed (CorruptIndexError
    naming the component) — never silently wrong scores."""

    @settings(max_examples=60, deadline=None)
    @given(
        file_index=st.integers(min_value=0, max_value=2),
        offset=st.integers(min_value=0, max_value=10_000_000),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_flip_never_yields_wrong_scores(
        self, saved_dir, file_index, offset, bit
    ):
        path, expected = saved_dir
        gen = path / "gen-000001"
        target = gen / (
            "manifest.json", "collection.jsonl", "postings.bin"
        )[file_index]
        original = target.read_bytes()
        current_before = (path / "CURRENT").read_bytes()
        data = bytearray(original)
        data[offset % len(data)] ^= 1 << bit
        target.write_bytes(bytes(data))
        try:
            try:
                loaded = load_searcher(path)
            except CorruptIndexError as exc:
                assert isinstance(exc.report, RecoveryReport)
                assert exc.report.components()  # damage was attributed
                assert set(exc.report.components()) <= KNOWN_COMPONENTS
                return
            assert _answers(loaded) == expected
        finally:
            # The load may have quarantined the generation or touched
            # CURRENT; restore the module-scoped directory exactly.
            quarantined = path / "gen-000001.corrupt"
            if quarantined.exists():
                quarantined.rename(gen)
            gen.mkdir(exist_ok=True)
            target.write_bytes(original)
            (path / "CURRENT").write_bytes(current_before)


class TestKillNineSimulation:
    """A save killed at any injected fault point must leave the
    directory loadable, answering as either the old or the new state."""

    SITES = [
        ("persist.write_collection", 0),
        ("persist.write_postings", 0),
        ("persist.write_manifest", 0),
        ("persist.fsync", 0),
        ("persist.fsync", 1),
        ("persist.fsync", 2),
        ("persist.promote", 0),
    ]

    @pytest.mark.parametrize("site,after", SITES)
    def test_torn_save_over_existing_generation(self, tmp_path, site, after):
        old = _make_searcher()
        path = tmp_path / "idx"
        save_searcher(old, path)
        expected_old = _answers(old)

        new = SetSimilaritySearcher(
            SetCollection.from_token_sets(TOKEN_SETS + [QUERY])
        )
        expected_new = _answers(new)
        assert expected_old != expected_new  # the states are tellable

        with use_fault_plan(f"{site}:torn:count=1:after={after}"):
            with pytest.raises(TornWriteError):
                save_searcher(new, path)

        loaded = load_searcher(path)
        assert _answers(loaded) in (expected_old, expected_new)

    def test_interrupted_save_leaves_no_tmp_debris_after_retry(
        self, tmp_path
    ):
        searcher = _make_searcher()
        path = tmp_path / "idx"
        save_searcher(searcher, path)
        with use_fault_plan("persist.write_postings:torn:count=1"):
            with pytest.raises(TornWriteError):
                save_searcher(searcher, path)
        # The retry cleans the stale temp directory, reuses its
        # generation number, and succeeds.
        save_searcher(searcher, path)
        leftovers = [
            p.name for p in path.iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []
        assert (path / "CURRENT").read_text().strip() == "gen-000002"


class TestGenerationFallback:
    def test_damaged_current_falls_back_and_quarantines(self, tmp_path):
        searcher = _make_searcher()
        path = tmp_path / "idx"
        save_searcher(searcher, path)
        save_searcher(searcher, path)  # gen-000002 is now current
        postings = path / "gen-000002" / "postings.bin"
        postings.write_bytes(postings.read_bytes()[:-16])

        loaded = load_searcher(path)
        report = loaded.recovery_report
        assert report.recovered
        assert report.loaded_generation == "gen-000001"
        assert "postings" in report.components()
        assert report.quarantined == ["gen-000002.corrupt"]
        assert (path / "CURRENT").read_text().strip() == "gen-000001"
        assert _answers(loaded) == _answers(searcher)

    def test_missing_current_pointer_recovers(self, tmp_path):
        searcher = _make_searcher()
        path = tmp_path / "idx"
        save_searcher(searcher, path)
        current = path / "CURRENT"
        current.write_text("gen-999999\n")  # names a missing generation
        loaded = load_searcher(path)
        assert loaded.recovery_report.recovered
        assert current.read_text().strip() == "gen-000001"

    def test_everything_damaged_raises_with_report(self, tmp_path):
        searcher = _make_searcher()
        path = tmp_path / "idx"
        save_searcher(searcher, path)
        (path / "gen-000001" / "manifest.json").write_text("{not json")
        with pytest.raises(CorruptIndexError) as exc:
            load_searcher(path)
        report = exc.value.report
        assert report.generations_tried == ["gen-000001"]
        assert report.components() == ["manifest"]
        assert "manifest" in report.summary()

    def test_clean_load_reports_clean(self, tmp_path):
        searcher = _make_searcher()
        path = tmp_path / "idx"
        save_searcher(searcher, path)
        loaded = load_searcher(path)
        report = loaded.recovery_report
        assert report.clean and not report.recovered
        assert report.loaded_generation == "gen-000001"

    def test_injected_read_fault_triggers_fallback(self, tmp_path):
        # A one-shot bit-flip on the postings *read* path: the current
        # generation fails its checksum, the fallback read is clean.
        searcher = _make_searcher()
        path = tmp_path / "idx"
        save_searcher(searcher, path)
        save_searcher(searcher, path)
        with use_fault_plan("persist.read_postings:flip:count=1"):
            loaded = load_searcher(path)
        assert loaded.recovery_report.recovered
        assert _answers(loaded) == _answers(searcher)


class TestOperationsLog:
    def test_round_trip(self, tmp_path):
        log = OperationsLog(tmp_path / "oplog.jsonl")
        ops = [{"kind": "add", "tokens": ["a", str(i)]} for i in range(5)]
        for op in ops:
            log.append(op)
        replayed, dropped = log.replay()
        assert replayed == ops and dropped == 0

    def test_torn_tail_dropped(self, tmp_path):
        log = OperationsLog(tmp_path / "oplog.jsonl")
        log.append({"kind": "add", "tokens": ["a"]})
        log.append({"kind": "add", "tokens": ["b"]})
        with open(log.path, "ab") as fh:
            fh.write(b"00000000 {\"kind\": \"add\", \"tok")  # torn append
        replayed, dropped = log.replay()
        assert len(replayed) == 2 and dropped == 1

    def test_mid_log_corruption_truncates_the_rest(self, tmp_path):
        log = OperationsLog(tmp_path / "oplog.jsonl")
        for name in ("a", "b", "c"):
            log.append({"kind": "add", "tokens": [name]})
        lines = log.path.read_bytes().splitlines(keepends=True)
        lines[1] = b"deadbeef" + lines[1][8:]  # break record 2's CRC
        log.path.write_bytes(b"".join(lines))
        replayed, dropped = log.replay()
        # Everything after the first bad record is suspect.
        assert [op["tokens"] for op in replayed] == [["a"]]
        assert dropped == 2

    def test_compact_rewrites_exactly(self, tmp_path):
        log = OperationsLog(tmp_path / "oplog.jsonl")
        for i in range(10):
            log.append({"kind": "add", "tokens": [str(i)]})
        before = log.size_bytes()
        log.compact([{"kind": "add", "tokens": ["only"]}])
        assert log.size_bytes() < before
        replayed, dropped = log.replay()
        assert replayed == [{"kind": "add", "tokens": ["only"]}]
        assert dropped == 0


class TestDurableUpdatableSearcher:
    def test_reload_replays_everything(self, tmp_path):
        s = DurableUpdatableSearcher(
            tmp_path, initial_sets=TOKEN_SETS[:3]
        )
        s.add(TOKEN_SETS[3])
        s.add(TOKEN_SETS[4], payload="five")
        expected = _answers(s)

        s2 = DurableUpdatableSearcher(tmp_path)
        assert s2.replayed == 5 and s2.dropped == 0
        assert _answers(s2) == expected
        assert s2.payload(4) == "five"

    def test_torn_tail_dropped_and_compacted(self, tmp_path):
        s = DurableUpdatableSearcher(tmp_path, initial_sets=TOKEN_SETS[:2])
        with open(s.log.path, "ab") as fh:
            fh.write(b"deadbeef {\"kind\": \"add\"")  # crash mid-append
        s2 = DurableUpdatableSearcher(tmp_path)
        assert s2.replayed == 2 and s2.dropped == 1
        # The tear was compacted away: a third load sees a clean log.
        s3 = DurableUpdatableSearcher(tmp_path)
        assert s3.replayed == 2 and s3.dropped == 0

    def test_double_apply_guard(self, tmp_path):
        DurableUpdatableSearcher(tmp_path, initial_sets=TOKEN_SETS[:2])
        with pytest.raises(StorageError):
            DurableUpdatableSearcher(tmp_path, initial_sets=TOKEN_SETS[:2])

    def test_unknown_op_kind_rejected(self, tmp_path):
        log = OperationsLog(tmp_path / "oplog.jsonl")
        log.append({"kind": "drop-table", "tokens": []})
        with pytest.raises(StorageError):
            DurableUpdatableSearcher(tmp_path)

    def test_failed_append_leaves_memory_unchanged(self, tmp_path):
        s = DurableUpdatableSearcher(tmp_path, initial_sets=TOKEN_SETS[:2])
        with use_fault_plan("storage.oplog_append:torn:p=1"):
            with pytest.raises(TornWriteError):
                s.add(["never", "applied"])
        assert len(s) == 2
        s2 = DurableUpdatableSearcher(tmp_path)
        assert s2.replayed == 2
