"""Grand differential fuzz: every engine agrees on randomized universes.

One seeded sweep over corpus shapes (set-size skew, vocabulary size,
duplicates, singletons), tokenizations, thresholds, algorithms and storage
knobs.  Every engine — the seven list algorithms, both relational engines,
the batch selector and the prefix filter — must return exactly the
brute-force answer set for every drawn configuration.

This is deliberately broad rather than deep: the per-module tests isolate
failures; this one exists to catch interactions between knobs.
"""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher, algorithm_names
from repro.algorithms.batch import BatchSelector
from repro.algorithms.prefixfilter import PrefixFilterSearcher
from repro.relational.sqlbaseline import SqlBaseline
from repro.relational.sqlite_backend import SqliteBaseline

NUM_UNIVERSES = 6


def make_universe(rng):
    vocab_size = rng.choice([5, 15, 40])
    vocab = [f"t{i}" for i in range(vocab_size)]
    num_sets = rng.choice([10, 80, 200])
    sets = []
    for _ in range(num_sets):
        size = rng.randint(1, min(8, vocab_size))
        sets.append(rng.sample(vocab, size))
    # Inject exact duplicates and singletons.
    if sets:
        sets.append(list(sets[0]))
        sets.append([vocab[0]])
    return vocab, SetCollection.from_token_sets(sets)


def reference(searcher, q, tau):
    return {
        (r.set_id, round(r.score, 9)) for r in searcher.brute_force(q, tau)
    }


@pytest.mark.parametrize("universe_seed", range(NUM_UNIVERSES))
def test_every_engine_agrees(universe_seed):
    rng = random.Random(1000 + universe_seed)
    vocab, coll = make_universe(rng)
    searcher = SetSimilaritySearcher(
        coll,
        page_capacity=rng.choice([2, 32, 512]),
        skiplist_stride=rng.choice([1, 8, 64]),
        hash_bucket_capacity=rng.choice([1, 8, 64]),
    )
    sql = SqlBaseline(coll, btree_order=rng.choice([4, 64]))
    sqlite = SqliteBaseline(coll)
    prefix = PrefixFilterSearcher(coll, tau_min=0.5)
    batch = BatchSelector(searcher.index)

    for _ in range(6):
        q = rng.sample(vocab, rng.randint(1, min(6, len(vocab))))
        tau = rng.choice([0.5, 0.75, 0.9, 1.0])
        ref = reference(searcher, q, tau)
        pq = searcher.prepare(q)

        for algo in algorithm_names():
            got = {
                (r.set_id, round(r.score, 9))
                for r in searcher.search(q, tau, algorithm=algo).results
            }
            assert got == ref, (universe_seed, algo, tau, q)

        for engine in (sql, sqlite):
            got = {
                (r.set_id, round(r.score, 9))
                for r in engine.search(pq, tau).results
            }
            assert got == ref, (universe_seed, engine.name, tau, q)

        got = {
            (r.set_id, round(r.score, 9))
            for r in prefix.search(q, tau).results
        }
        assert got == ref, (universe_seed, "prefix-filter", tau, q)

        results, _stats = batch.search_many([pq], tau)
        got = {
            (r.set_id, round(r.score, 9)) for r in results[0].results
        }
        assert got == ref, (universe_seed, "batch", tau, q)

    sqlite.close()


@pytest.mark.parametrize("universe_seed", range(3))
def test_topk_and_join_agree(universe_seed):
    rng = random.Random(2000 + universe_seed)
    vocab, coll = make_universe(rng)
    searcher = SetSimilaritySearcher(coll)

    for _ in range(4):
        q = rng.sample(vocab, rng.randint(1, min(5, len(vocab))))
        k = rng.choice([1, 3, 10])
        full = [r for r in searcher.brute_force(q, 1e-9) if r.score > 0]
        expect = [(r.set_id, round(r.score, 9)) for r in full[:k]]
        got = [
            (r.set_id, round(r.score, 9))
            for r in searcher.top_k(q, k).results
        ]
        assert got == expect, (universe_seed, k, q)

    from repro.core.join import brute_force_self_join, similarity_self_join

    tau = rng.choice([0.6, 0.9])
    got_pairs = {
        (p.a, p.b, round(p.score, 9))
        for p in similarity_self_join(searcher, tau).pairs
    }
    ref_pairs = {
        (p.a, p.b, round(p.score, 9))
        for p in brute_force_self_join(coll, tau)
    }
    assert got_pairs == ref_pairs, universe_seed
