"""Tests for shared-scan batch selection."""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.algorithms.batch import BatchSelector
from repro.core.tokenize import QGramTokenizer


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(51)
    vocab = [f"t{i}" for i in range(30)]
    sets = [rng.sample(vocab, rng.randint(1, 7)) for _ in range(300)]
    coll = SetCollection.from_token_sets(sets)
    return SetSimilaritySearcher(coll), vocab


def answers(result):
    return {(r.set_id, round(r.score, 9)) for r in result.results}


class TestBatchCorrectness:
    @pytest.mark.parametrize("tau", [0.4, 0.7, 0.9, 1.0])
    def test_each_query_matches_single_query_answers(self, setup, tau):
        searcher, vocab = setup
        rng = random.Random(int(tau * 10))
        queries = [
            searcher.prepare(rng.sample(vocab, rng.randint(1, 6)))
            for _ in range(15)
        ]
        batch = BatchSelector(searcher.index)
        results, _stats = batch.search_many(queries, tau)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            ref = answers(
                searcher.search_prepared(query, tau, algorithm="sf")
            )
            assert answers(result) == ref

    def test_without_length_bounds(self, setup):
        searcher, vocab = setup
        queries = [searcher.prepare(vocab[:4]), searcher.prepare(vocab[2:6])]
        batch = BatchSelector(searcher.index)
        bounded, _ = batch.search_many(queries, 0.6)
        unbounded, _ = batch.search_many(
            queries, 0.6, use_length_bounds=False
        )
        for a, b in zip(bounded, unbounded):
            assert answers(a) == answers(b)

    def test_empty_batch(self, setup):
        searcher, _v = setup
        results, stats = BatchSelector(searcher.index).search_many([], 0.5)
        assert results == []
        assert stats.elements_read == 0

    def test_duplicate_queries_share_answers(self, setup):
        searcher, vocab = setup
        q = searcher.prepare(vocab[:4])
        results, _ = BatchSelector(searcher.index).search_many([q, q], 0.5)
        assert answers(results[0]) == answers(results[1])


class TestSharedScanSavings:
    def test_shared_tokens_read_once(self, setup):
        searcher, vocab = setup
        # 10 queries over the SAME tokens: batch reads each list once.
        q = searcher.prepare(vocab[:5])
        batch = BatchSelector(searcher.index)
        _results, shared = batch.search_many([q] * 10, 0.6)

        solo_total = 0
        for _ in range(10):
            r = searcher.search_prepared(q, 0.6, algorithm="sort-by-id")
            solo_total += r.stats.elements_read
        assert shared.elements_read < solo_total / 3

    def test_disjoint_queries_no_penalty(self, setup):
        searcher, vocab = setup
        q1 = searcher.prepare(vocab[:3])
        q2 = searcher.prepare(vocab[10:13])
        batch = BatchSelector(searcher.index)
        _res, stats = batch.search_many([q1, q2], 0.6)
        # The union window of a single-subscriber token is its own window.
        single1 = batch.search_many([q1], 0.6)[1].elements_read
        single2 = batch.search_many([q2], 0.6)[1].elements_read
        assert stats.elements_read == single1 + single2


class TestSearchTexts:
    def test_none_for_empty_text(self, setup):
        searcher, _v = setup
        coll = SetCollection.from_strings(
            ["alpha beta", "beta gamma"], QGramTokenizer(q=3)
        )
        s2 = SetSimilaritySearcher(coll)
        batch = BatchSelector(s2.index)
        results, _ = batch.search_texts(
            QGramTokenizer(q=3), coll.stats, ["alpha beta", ""], 0.6
        )
        assert results[0] is not None
        assert results[1] is None
        assert 0 in results[0].ids()
