"""Tests for the index integrity validator."""

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.core.errors import StorageError
from repro.core.validation import validate_index
from repro.storage.invlist import InvertedIndex


@pytest.fixture()
def coll():
    return SetCollection.from_token_sets(
        [["a", "b"], ["a", "c"], ["b", "c", "d"], ["a"]]
    )


class TestCleanIndexes:
    def test_full_index_valid(self, coll):
        report = validate_index(InvertedIndex(coll))
        assert report.valid
        assert report.checked_tokens == 4
        assert report.checked_postings == sum(len(r) for r in coll)

    def test_lean_index_valid(self, coll):
        index = InvertedIndex(
            coll, with_id_lists=False, with_hash_index=False
        )
        assert validate_index(index).valid

    def test_session_corpus_valid(self, searcher):
        assert validate_index(searcher.index).valid

    def test_loaded_index_valid(self, coll, tmp_path):
        from repro import load_searcher, save_searcher

        save_searcher(SetSimilaritySearcher(coll), tmp_path / "x")
        loaded = load_searcher(tmp_path / "x")
        assert validate_index(loaded.index).valid

    def test_raise_if_invalid_noop_when_clean(self, coll):
        validate_index(InvertedIndex(coll)).raise_if_invalid()


class TestCorruptionDetection:
    def _corrupt(self, index):
        return index._postings["a"].weight_file._records

    def test_out_of_order_detected(self, coll):
        index = InvertedIndex(coll)
        records = self._corrupt(index)
        records[0], records[-1] = records[-1], records[0]
        report = validate_index(index)
        assert not report.valid
        assert any("out of order" in e for e in report.errors)

    def test_length_mismatch_detected(self, coll):
        index = InvertedIndex(coll)
        records = self._corrupt(index)
        length, sid = records[0]
        records[0] = (length, sid)
        records[1] = (records[1][0] + 0.5, records[1][1])
        report = validate_index(index)
        assert not report.valid
        assert any("length" in e for e in report.errors)

    def test_phantom_posting_detected(self, coll):
        index = InvertedIndex(coll)
        # Set 2 = {b, c, d} does not contain 'a'; give its length so only
        # the membership check fires.
        self._corrupt(index).append((coll.length(2), 2))
        report = validate_index(index)
        assert any("phantom" in e for e in report.errors)

    def test_missing_posting_detected(self, coll):
        index = InvertedIndex(coll)
        self._corrupt(index).pop()  # drop one membership of 'a'
        report = validate_index(index)
        assert any("missing posting" in e for e in report.errors)

    def test_unknown_set_detected(self, coll):
        index = InvertedIndex(coll)
        self._corrupt(index).append((99.0, 999))
        report = validate_index(index)
        assert any("unknown set" in e for e in report.errors)

    def test_raise_if_invalid(self, coll):
        index = InvertedIndex(coll)
        self._corrupt(index).pop()
        with pytest.raises(StorageError):
            validate_index(index).raise_if_invalid()

    def test_report_repr(self, coll):
        report = validate_index(InvertedIndex(coll))
        assert "valid" in repr(report)
