"""Tests for unweighted cosine/Jaccard/Dice selection."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CosineSetSearcher
from repro.core.errors import ConfigurationError
from repro.core.unweighted import (
    UniformStatistics,
    cosine_score,
    dice_score,
    jaccard_score,
    reduced_cosine_threshold,
)


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(31)
    vocab = [f"u{i}" for i in range(30)]
    sets = [rng.sample(vocab, rng.randint(1, 8)) for _ in range(200)]
    return CosineSetSearcher(sets), vocab


def answers(results):
    return {(r.set_id, round(r.score, 9)) for r in results}


class TestScores:
    def test_jaccard(self):
        assert jaccard_score(
            frozenset("ab"), frozenset("bc")
        ) == pytest.approx(1 / 3)

    def test_dice(self):
        assert dice_score(
            frozenset("ab"), frozenset("bc")
        ) == pytest.approx(0.5)

    def test_cosine(self):
        assert cosine_score(
            frozenset("ab"), frozenset("bc")
        ) == pytest.approx(0.5)

    def test_empty_conventions(self):
        assert jaccard_score(frozenset(), frozenset()) == 1.0
        assert dice_score(frozenset(), frozenset()) == 1.0
        assert cosine_score(frozenset(), frozenset()) == 1.0

    def test_uniform_stats_idf_is_one(self):
        stats = UniformStatistics.from_sets([{"a"}, {"a", "b"}])
        assert stats.idf("a") == 1.0
        assert stats.idf("never-seen") == 1.0
        assert stats.length({"a", "b", "c", "d"}) == pytest.approx(2.0)


class TestReductions:
    def test_cosine_identity(self):
        assert reduced_cosine_threshold("cosine", 0.7) == 0.7

    def test_jaccard_formula(self):
        assert reduced_cosine_threshold("jaccard", 0.5) == pytest.approx(
            2 * 0.5 / 1.5
        )

    def test_dice_identity(self):
        assert reduced_cosine_threshold("dice", 0.8) == 0.8

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            reduced_cosine_threshold("overlap", 0.5)

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.integers(1, 10),
        st.integers(1, 10),
        st.integers(0, 10),
    )
    @settings(max_examples=100, deadline=None)
    def test_jaccard_reduction_is_complete(self, tau, extra_q, extra_s, common):
        # For any pair of sets, J >= tau implies C >= reduced threshold.
        q = frozenset(f"c{i}" for i in range(common)) | frozenset(
            f"q{i}" for i in range(extra_q)
        )
        s = frozenset(f"c{i}" for i in range(common)) | frozenset(
            f"s{i}" for i in range(extra_s)
        )
        if jaccard_score(q, s) >= tau:
            assert cosine_score(q, s) >= reduced_cosine_threshold(
                "jaccard", tau
            ) - 1e-12

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.integers(1, 10),
        st.integers(1, 10),
        st.integers(0, 10),
    )
    @settings(max_examples=100, deadline=None)
    def test_dice_reduction_is_complete(self, tau, extra_q, extra_s, common):
        q = frozenset(f"c{i}" for i in range(common)) | frozenset(
            f"q{i}" for i in range(extra_q)
        )
        s = frozenset(f"c{i}" for i in range(common)) | frozenset(
            f"s{i}" for i in range(extra_s)
        )
        if dice_score(q, s) >= tau:
            assert cosine_score(q, s) >= reduced_cosine_threshold(
                "dice", tau
            ) - 1e-12


class TestSelection:
    @pytest.mark.parametrize("measure", ["cosine", "jaccard", "dice"])
    @pytest.mark.parametrize("tau", [0.3, 0.5, 0.8, 1.0])
    def test_matches_brute_force(self, setup, measure, tau):
        searcher, vocab = setup
        rng = random.Random(hash((measure, tau)) & 0xFFFF)
        for _ in range(8):
            q = rng.sample(vocab, rng.randint(1, 6))
            got = answers(searcher.search(q, tau, measure=measure).results)
            ref = answers(searcher.brute_force(q, tau, measure=measure))
            assert got == ref, (measure, tau, q)

    @pytest.mark.parametrize(
        "algorithm", ["sf", "inra", "hybrid", "sort-by-id"]
    )
    def test_any_algorithm_works(self, setup, algorithm):
        searcher, vocab = setup
        q = vocab[:4]
        got = answers(
            searcher.search(q, 0.5, measure="jaccard", algorithm=algorithm).results
        )
        ref = answers(searcher.brute_force(q, 0.5, measure="jaccard"))
        assert got == ref

    def test_exact_duplicate_at_tau_one(self):
        s = CosineSetSearcher([["x", "y"], ["x", "y", "z"], ["x", "y"]])
        for measure in ("cosine", "jaccard", "dice"):
            got = set(s.search(["x", "y"], 1.0, measure=measure).ids())
            assert got == {0, 2}, measure

    def test_cosine_is_idf_with_uniform_weights(self, setup):
        searcher, vocab = setup
        q = vocab[:3]
        result = searcher.search(q, 0.4, measure="cosine")
        for r in result.results:
            expected = cosine_score(
                frozenset(q), searcher.collection[r.set_id].tokens
            )
            assert r.score == pytest.approx(expected)

    def test_algorithm_label(self, setup):
        searcher, vocab = setup
        result = searcher.search(vocab[:2], 0.5, measure="jaccard")
        assert result.algorithm == "jaccard-via-sf"
