"""Unit tests for the four similarity measures (Section II)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.similarity import (
    Bm25Measure,
    Bm25PrimeMeasure,
    IdfMeasure,
    TfIdfMeasure,
    bm25_score,
    idf_similarity,
    measure_from_name,
    tfidf_cosine,
)
from repro.core.weights import IdfStatistics


@pytest.fixture()
def stats():
    sets = [
        {"main", "st", "maine"},
        {"main", "st"},
        {"elm", "ave"},
        {"main", "elm"},
    ]
    return IdfStatistics.from_sets(sets)


class TestIdfSimilarity:
    def test_exact_match_scores_one(self, stats):
        s = {"main", "st"}
        assert idf_similarity(s, s, stats) == pytest.approx(1.0)

    def test_disjoint_scores_zero(self, stats):
        assert idf_similarity({"main"}, {"elm"}, stats) == 0.0

    def test_symmetry(self, stats):
        a, b = {"main", "st"}, {"main", "elm"}
        assert idf_similarity(a, b, stats) == pytest.approx(
            idf_similarity(b, a, stats)
        )

    def test_bounded_by_one(self, stats):
        for a in [{"main"}, {"main", "st"}, {"main", "st", "maine"}]:
            for b in [{"main"}, {"st", "maine"}, {"elm"}]:
                assert 0.0 <= idf_similarity(a, b, stats) <= 1.0 + 1e-12

    def test_subset_formula_case1(self, stats):
        # q ⊂ s: score == len(q)/len(s) (Theorem 1, case 1).
        q = {"main"}
        s = {"main", "st", "maine"}
        expected = stats.length(q) / stats.length(s)
        assert idf_similarity(q, s, stats) == pytest.approx(expected)

    def test_subset_formula_case2(self, stats):
        # s ⊂ q: score == len(s)/len(q) (Theorem 1, case 2).
        q = {"main", "st", "maine"}
        s = {"st"}
        expected = stats.length(s) / stats.length(q)
        assert idf_similarity(q, s, stats) == pytest.approx(expected)

    def test_rare_shared_token_beats_common(self, stats):
        # Sharing the rare 'maine' outweighs sharing the common 'main'
        # between same-size sets.
        base = {"main", "maine"}
        rare = idf_similarity(base, {"maine", "elm"}, stats)
        common = idf_similarity(base, {"main", "elm"}, stats)
        assert rare > common

    def test_empty_operand_zero(self, stats):
        assert idf_similarity(set(), {"main"}, stats) == 0.0
        assert idf_similarity({"main"}, set(), stats) == 0.0

    def test_precomputed_lengths_respected(self, stats):
        q, s = {"main"}, {"main", "st"}
        direct = idf_similarity(q, s, stats)
        cached = idf_similarity(
            q, s, stats,
            q_length=stats.length(q), s_length=stats.length(s),
        )
        assert direct == pytest.approx(cached)

    def test_tf_ignored(self, stats):
        # Multiset inputs behave as sets.
        assert idf_similarity(
            ["main", "main", "st"], ["main", "st"], stats
        ) == pytest.approx(1.0)


class TestTfIdfCosine:
    def test_exact_match_one(self, stats):
        counts = {"main": 1, "st": 2}
        assert tfidf_cosine(counts, counts, stats) == pytest.approx(1.0)

    def test_proportional_vectors_one(self, stats):
        a = {"main": 1, "st": 1}
        b = {"main": 2, "st": 2}
        assert tfidf_cosine(a, b, stats) == pytest.approx(1.0)

    def test_tf_divergence_lowers_score(self, stats):
        q = {"main": 1, "st": 1}
        same = tfidf_cosine(q, {"main": 1, "st": 1}, stats)
        skewed = tfidf_cosine(q, {"main": 5, "st": 1}, stats)
        assert skewed < same

    def test_disjoint_zero(self, stats):
        assert tfidf_cosine({"main": 1}, {"elm": 1}, stats) == 0.0

    def test_empty_zero(self, stats):
        assert tfidf_cosine({}, {"main": 1}, stats) == 0.0

    def test_idf_equals_tfidf_when_all_tf_one(self, stats):
        # With every tf == 1 the two measures coincide by construction.
        a = {"main": 1, "st": 1}
        b = {"st": 1, "maine": 1}
        assert tfidf_cosine(a, b, stats) == pytest.approx(
            idf_similarity(a.keys(), b.keys(), stats)
        )


class TestBm25:
    def test_normalized_self_score_one(self, stats):
        counts = {"main": 1, "st": 1}
        assert bm25_score(counts, counts, stats) == pytest.approx(1.0)

    def test_normalized_in_unit_interval(self, stats):
        pairs = [
            ({"main": 1}, {"main": 1, "st": 1}),
            ({"main": 2, "st": 1}, {"st": 1}),
            ({"elm": 1}, {"main": 1}),
        ]
        for q, s in pairs:
            assert 0.0 <= bm25_score(q, s, stats) <= 1.0 + 1e-9

    def test_raw_unbounded_mode(self, stats):
        q = {"maine": 1, "main": 1}
        raw = bm25_score(q, q, stats, normalize=False)
        assert raw > 1.0  # raw BM25 of a rare-token self match

    def test_drop_tf_clamps(self, stats):
        q = {"main": 1}
        s_multi = {"main": 7}
        s_single = {"main": 1}
        assert bm25_score(
            q, s_multi, stats, drop_tf=True
        ) == pytest.approx(bm25_score(q, s_single, stats, drop_tf=True))

    def test_invalid_params(self, stats):
        with pytest.raises(ConfigurationError):
            bm25_score({}, {}, stats, k1=-1)
        with pytest.raises(ConfigurationError):
            bm25_score({}, {}, stats, b=1.5)

    def test_disjoint_zero(self, stats):
        assert bm25_score({"main": 1}, {"elm": 1}, stats) == 0.0


class TestMeasureClasses:
    def test_registry(self, stats):
        for name, cls in [
            ("idf", IdfMeasure),
            ("tfidf", TfIdfMeasure),
            ("bm25", Bm25Measure),
            ("bm25p", Bm25PrimeMeasure),
        ]:
            m = measure_from_name(name, stats)
            assert isinstance(m, cls)
            assert m.name == name

    def test_unknown_measure(self, stats):
        with pytest.raises(ConfigurationError):
            measure_from_name("nope", stats)

    def test_score_strings_convenience(self, stats):
        m = IdfMeasure(stats)
        assert m.score_strings(["main"], ["main"]) == pytest.approx(1.0)

    def test_all_measures_agree_on_exact_match(self, stats):
        q = {"main": 1, "st": 1}
        for name in ["idf", "tfidf", "bm25", "bm25p"]:
            m = measure_from_name(name, stats)
            assert m.score(q, dict(q)) == pytest.approx(1.0), name

    def test_all_measures_zero_on_disjoint(self, stats):
        q, s = {"main": 1}, {"ave": 1}
        for name in ["idf", "tfidf", "bm25", "bm25p"]:
            assert measure_from_name(name, stats).score(q, s) == 0.0

    def test_bm25_prime_ignores_tf_but_bm25_does_not(self, stats):
        q = {"main": 1, "st": 1}
        s1 = {"main": 1, "st": 1}
        s5 = {"main": 5, "st": 1}
        bm25 = Bm25Measure(stats)
        bm25p = Bm25PrimeMeasure(stats)
        assert bm25.score(q, s1) != pytest.approx(bm25.score(q, s5))
        # BM25' reduces multisets to sets: tf is invisible, but document
        # length (sum of tf) still differs -> compare via drop_tf doc_len.
        assert bm25p.score(q, s1) == pytest.approx(bm25p.score(q, s5))
