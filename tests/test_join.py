"""Tests for the similarity self-join and clustering."""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.core.join import (
    JoinPair,
    UnionFind,
    brute_force_self_join,
    similarity_clusters,
    similarity_self_join,
)


def pair_set(pairs):
    return {(p.a, p.b, round(p.score, 9)) for p in pairs}


class TestJoinPair:
    def test_normalized_order(self):
        p = JoinPair(5, 2, 0.8)
        assert (p.a, p.b) == (2, 5)

    def test_equality_ignores_score(self):
        assert JoinPair(1, 2, 0.5) == JoinPair(2, 1, 0.9)

    def test_hashable(self):
        assert len({JoinPair(1, 2, 0.5), JoinPair(2, 1, 0.7)}) == 1

    def test_iterable(self):
        a, b, score = JoinPair(3, 1, 0.6)
        assert (a, b, score) == (1, 3, 0.6)


class TestSelfJoin:
    @pytest.mark.parametrize("tau", [0.3, 0.6, 0.9, 1.0])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_brute_force(self, tau, seed):
        rng = random.Random(seed)
        vocab = [f"t{i}" for i in range(25)]
        sets = [rng.sample(vocab, rng.randint(1, 6)) for _ in range(80)]
        coll = SetCollection.from_token_sets(sets)
        searcher = SetSimilaritySearcher(coll)
        got = pair_set(similarity_self_join(searcher, tau).pairs)
        ref = pair_set(brute_force_self_join(coll, tau))
        assert got == ref

    def test_each_pair_once(self):
        coll = SetCollection.from_token_sets([["x", "y"]] * 4)
        searcher = SetSimilaritySearcher(coll)
        join = similarity_self_join(searcher, 0.9)
        assert len(join) == 6  # C(4, 2)
        assert len(set(join.pairs)) == 6

    def test_empty_sets_skipped(self):
        coll = SetCollection()
        coll.add(["a", "b"])
        coll.add([])
        coll.add(["a", "b"])
        coll.freeze()
        searcher = SetSimilaritySearcher(coll)
        join = similarity_self_join(searcher, 0.9)
        assert join.as_edges() == [(0, 2)]

    def test_no_pairs_above_one(self):
        coll = SetCollection.from_token_sets([["a"], ["b"], ["c"]])
        searcher = SetSimilaritySearcher(coll)
        assert len(similarity_self_join(searcher, 0.5)) == 0

    def test_stats_aggregated(self):
        coll = SetCollection.from_token_sets(
            [["a", "b"], ["a", "b"], ["b", "c"]]
        )
        searcher = SetSimilaritySearcher(coll)
        join = similarity_self_join(searcher, 0.5)
        assert join.stats.elements_read > 0
        assert join.wall_seconds > 0

    def test_length_floor_halves_reads(self):
        # The join passes each probe's own length as the window floor;
        # an unfloored run must read strictly more.
        import random as _random

        from repro.algorithms import make_algorithm
        from repro.core.query import PreparedQuery

        rng = _random.Random(31)
        vocab = [f"t{i}" for i in range(30)]
        sets = [rng.sample(vocab, rng.randint(1, 7)) for _ in range(200)]
        coll = SetCollection.from_token_sets(sets)
        searcher = SetSimilaritySearcher(coll)
        floored = unfloored = 0
        for set_id in range(0, 200, 10):
            rec = coll[set_id]
            query = PreparedQuery(sorted(rec.tokens), coll.stats)
            a = make_algorithm("sf", searcher.index).search(
                query, 0.7, length_floor=coll.length(set_id)
            )
            b = make_algorithm("sf", searcher.index).search(query, 0.7)
            floored += a.stats.elements_read
            unfloored += b.stats.elements_read
            # Floored answers are exactly the unfloored ones at >= floor.
            expected = {
                r.set_id for r in b.results
                if coll.length(r.set_id) >= coll.length(set_id)
            }
            assert set(a.ids()) == expected
        assert floored < unfloored

    def test_length_floor_filtered_for_unwindowed_algorithms(self):
        # Classic NRA ignores the window while scanning; the base class
        # must still enforce the floor on its results.
        coll = SetCollection.from_token_sets(
            [["a"], ["a", "b"], ["a", "b", "c"]]
        )
        searcher = SetSimilaritySearcher(coll)
        from repro.algorithms import make_algorithm
        from repro.core.query import PreparedQuery

        query = PreparedQuery(["a", "b"], coll.stats)
        floor = coll.length(1)
        for algo in ("nra", "sort-by-id", "ta", "sf"):
            r = make_algorithm(algo, searcher.index).search(
                query, 0.2, length_floor=floor
            )
            assert all(
                coll.length(sid) >= floor for sid in r.ids()
            ), algo
            assert 0 not in r.ids(), algo  # the short set is below floor

    def test_algorithm_choice_equivalent(self):
        rng = random.Random(5)
        vocab = [f"t{i}" for i in range(20)]
        sets = [rng.sample(vocab, rng.randint(1, 5)) for _ in range(50)]
        coll = SetCollection.from_token_sets(sets)
        searcher = SetSimilaritySearcher(coll)
        a = pair_set(similarity_self_join(searcher, 0.6, "sf").pairs)
        b = pair_set(similarity_self_join(searcher, 0.6, "inra").pairs)
        assert a == b


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.union(1, 2)
        assert not uf.union(0, 2)  # already connected
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)

    def test_path_compression_keeps_roots_stable(self):
        uf = UnionFind(100)
        for i in range(99):
            uf.union(i, i + 1)
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(100))


class TestClusters:
    def test_transitive_grouping(self):
        # a~b and b~c but a!~c: one cluster of three via the chain.
        coll = SetCollection.from_token_sets(
            [
                ["a", "b", "c"],
                ["b", "c", "d"],
                ["c", "d", "e"],
                ["x", "y"],
            ]
        )
        searcher = SetSimilaritySearcher(coll)
        clusters = similarity_clusters(searcher, 0.5)
        assert [0, 1, 2] in clusters
        assert all(3 not in c for c in clusters)

    def test_min_size_filter(self):
        coll = SetCollection.from_token_sets(
            [["a", "b"], ["a", "b"], ["q", "r"]]
        )
        searcher = SetSimilaritySearcher(coll)
        clusters = similarity_clusters(searcher, 0.9, min_size=2)
        assert clusters == [[0, 1]]

    def test_largest_first(self):
        coll = SetCollection.from_token_sets(
            [["a", "b"]] * 3 + [["x", "y"]] * 2
        )
        searcher = SetSimilaritySearcher(coll)
        clusters = similarity_clusters(searcher, 0.9)
        assert [len(c) for c in clusters] == [3, 2]
