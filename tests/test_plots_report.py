"""Tests for the ASCII plotting helpers and the report builder."""


from repro.eval.plots import bar_chart, line_chart, sparkline
from repro.eval.report import SECTIONS, build_report, coverage, write_report


class TestBarChart:
    def test_scales_to_peak(self):
        chart = bar_chart({"a": 100.0, "b": 50.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].startswith("a")
        assert lines[0].count("█") == 10
        assert 4 <= lines[1].count("█") <= 5

    def test_sorted_descending_by_default(self):
        chart = bar_chart({"small": 1.0, "big": 9.0})
        assert chart.splitlines()[0].startswith("big")

    def test_unsorted_preserves_order(self):
        chart = bar_chart({"small": 1.0, "big": 9.0}, sort=False)
        assert chart.splitlines()[0].startswith("small")

    def test_unit_suffix(self):
        assert "KB" in bar_chart({"x": 3.0}, unit="KB")

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_zero_values_ok(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart and "b" in chart


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline([1, 2, 3, 4])
        assert s[0] == "▁" and s[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart(
            [0.6, 0.7, 0.8],
            {"sf": [3.0, 2.0, 1.0], "nra": [3.0, 3.0, 3.0]},
        )
        assert "o sf" in chart
        assert "x nra" in chart
        assert "o" in chart.splitlines()[0] or "o" in chart

    def test_axis_labels(self):
        chart = line_chart([1, 2], {"a": [0.0, 10.0]}, height=5)
        assert "10.00" in chart
        assert "0.00" in chart

    def test_y_label(self):
        chart = line_chart([1], {"a": [1.0]}, y_label="seconds")
        assert chart.splitlines()[0] == "seconds"

    def test_empty(self):
        assert line_chart([], {}) == "(no data)"

    def test_single_point(self):
        chart = line_chart([1], {"a": [2.5]})
        assert "a" in chart


class TestReport:
    def test_build_with_results(self, tmp_path):
        (tmp_path / "table1_precision.txt").write_text("dataset IDF\ncu1 0.3")
        report = build_report(tmp_path)
        assert "# Reproduction report" in report
        assert "Table I" in report
        assert "cu1 0.3" in report
        assert "missing" in report  # other sections absent

    def test_write_report(self, tmp_path):
        out = write_report(tmp_path, tmp_path / "report.md", title="T")
        assert out.exists()
        assert out.read_text().startswith("# T")

    def test_coverage(self, tmp_path):
        (tmp_path / "fig5_index_size.txt").write_text("x")
        cov = coverage(tmp_path)
        assert cov["fig5_index_size.txt"] is True
        assert cov["table1_precision.txt"] is False
        assert set(cov) == {name for name, _h, _c in SECTIONS}

    def test_all_sections_have_headings(self):
        for _name, heading, _claim in SECTIONS:
            assert heading
