"""Direct unit tests for the candidate-set data structures."""

import pytest

from repro.algorithms.candidates import (
    Candidate,
    HashCandidateSet,
    PartitionedCandidateSet,
)


class TestCandidate:
    def test_see_accumulates_once(self):
        c = Candidate(7, 2.0)
        c.see(0, 0.4)
        c.see(0, 0.4)  # duplicate encounter is a no-op
        c.see(1, 0.1)
        assert c.lower == pytest.approx(0.5)
        assert c.seen(0) and c.seen(1) and not c.seen(2)

    def test_rule_out_and_resolution(self):
        c = Candidate(1, 1.0)
        all_mask = 0b111
        c.see(0, 0.2)
        assert not c.resolved(all_mask)
        c.rule_out(1)
        c.rule_out(2)
        assert c.resolved(all_mask)

    def test_sort_key(self):
        assert Candidate(3, 1.5).sort_key() == (1.5, 3)

    def test_repr(self):
        assert "id=9" in repr(Candidate(9, 1.0))


class TestHashCandidateSet:
    def test_add_get_remove(self):
        cs = HashCandidateSet()
        c = cs.add(Candidate(5, 1.0))
        assert cs.get(5) is c
        assert 5 in cs
        cs.remove(5)
        assert cs.get(5) is None
        assert 5 not in cs

    def test_remove_missing_is_noop(self):
        cs = HashCandidateSet()
        cs.remove(42)  # must not raise

    def test_peak_tracking(self):
        cs = HashCandidateSet()
        for i in range(5):
            cs.add(Candidate(i, 1.0))
        cs.remove(0)
        cs.remove(1)
        assert cs.peak == 5
        assert len(cs) == 3

    def test_scan_is_snapshot(self):
        cs = HashCandidateSet()
        for i in range(3):
            cs.add(Candidate(i, 1.0))
        for c in cs.scan():
            cs.remove(c.set_id)  # mutation during scan is safe
        assert len(cs) == 0

    def test_clear(self):
        cs = HashCandidateSet()
        cs.add(Candidate(1, 1.0))
        cs.clear()
        assert len(cs) == 0


class TestPartitionedCandidateSet:
    def _make(self):
        cs = PartitionedCandidateSet(num_lists=3)
        # Discovery order within a partition is increasing length.
        cs.add(Candidate(1, 1.0), discovered_in=0)
        cs.add(Candidate(2, 2.0), discovered_in=0)
        cs.add(Candidate(3, 1.5), discovered_in=1)
        cs.add(Candidate(4, 3.0), discovered_in=2)
        return cs

    def test_max_length_from_tails(self):
        cs = self._make()
        assert cs.max_length() == 3.0

    def test_max_length_after_tombstone(self):
        cs = self._make()
        cs.remove(4)
        assert cs.max_length() == 2.0

    def test_max_length_empty(self):
        assert PartitionedCandidateSet(2).max_length() == 0.0

    def test_prune_back_monotone(self):
        cs = self._make()
        removed = cs.prune_back(lambda c: c.length > 1.6)
        assert removed == 2  # ids 2 and 4
        assert 2 not in cs and 4 not in cs
        assert 1 in cs and 3 in cs

    def test_prune_back_stops_at_live(self):
        cs = PartitionedCandidateSet(1)
        cs.add(Candidate(1, 1.0), 0)
        cs.add(Candidate(2, 2.0), 0)
        cs.add(Candidate(3, 3.0), 0)
        # Only the back is dead; the front stays even if it would match.
        cs.prune_back(lambda c: c.length >= 3.0)
        assert 3 not in cs
        assert 1 in cs and 2 in cs

    def test_peak(self):
        cs = self._make()
        cs.remove(1)
        assert cs.peak == 4

    def test_scan_lists_live_only(self):
        cs = self._make()
        cs.remove(3)
        assert {c.set_id for c in cs.scan()} == {1, 2, 4}

    def test_contains_and_len(self):
        cs = self._make()
        assert 3 in cs
        assert len(cs) == 4
