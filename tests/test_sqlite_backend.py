"""Tests for the real-RDBMS (SQLite) execution of the SQL baseline."""

import random

import pytest

from repro import SetCollection, SetSimilaritySearcher
from repro.core.errors import IndexNotBuiltError
from repro.relational.sqlite_backend import SqliteBaseline


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(61)
    vocab = [f"g{i}" for i in range(35)]
    sets = [rng.sample(vocab, rng.randint(1, 7)) for _ in range(180)]
    coll = SetCollection.from_token_sets(sets)
    return SetSimilaritySearcher(coll), SqliteBaseline(coll), vocab


class TestCorrectness:
    @pytest.mark.parametrize("tau", [0.4, 0.7, 0.9, 1.0])
    def test_matches_brute_force(self, setup, tau):
        searcher, sqlite_engine, vocab = setup
        rng = random.Random(int(tau * 100))
        for _ in range(8):
            q = rng.sample(vocab, rng.randint(1, 5))
            pq = searcher.prepare(q)
            got = {
                (r.set_id, round(r.score, 9))
                for r in sqlite_engine.search(pq, tau).results
            }
            ref = {
                (r.set_id, round(r.score, 9))
                for r in searcher.brute_force(q, tau)
            }
            assert got == ref

    def test_agrees_with_simulated_sql(self, setup):
        from repro.relational.sqlbaseline import SqlBaseline

        searcher, sqlite_engine, vocab = setup
        simulated = SqlBaseline(searcher.collection)
        rng = random.Random(3)
        for _ in range(10):
            q = rng.sample(vocab, rng.randint(1, 5))
            pq = searcher.prepare(q)
            a = {r.set_id for r in sqlite_engine.search(pq, 0.6).results}
            b = {r.set_id for r in simulated.search(pq, 0.6).results}
            assert a == b

    def test_nlb_variant(self, setup):
        searcher, _e, vocab = setup
        nlb = SqliteBaseline(searcher.collection, use_length_bounds=False)
        q = vocab[:4]
        pq = searcher.prepare(q)
        got = {r.set_id for r in nlb.search(pq, 0.5).results}
        ref = {r.set_id for r in searcher.brute_force(q, 0.5)}
        assert got == ref
        assert nlb.search(pq, 0.5).algorithm == "sqlite-nlb"
        nlb.close()

    def test_requires_frozen(self):
        coll = SetCollection()
        coll.add(["a"])
        with pytest.raises(IndexNotBuiltError):
            SqliteBaseline(coll)


class TestRelationalPlumbing:
    def test_row_counts(self, setup):
        searcher, sqlite_engine, _v = setup
        counts = sqlite_engine.row_counts()
        assert counts["base"] == len(searcher.collection)
        assert counts["qgrams"] == sum(
            len(r.tokens) for r in searcher.collection
        )

    def test_explain_uses_composite_index(self, setup):
        searcher, sqlite_engine, vocab = setup
        pq = searcher.prepare(vocab[:3])
        plan = "\n".join(sqlite_engine.explain(pq, 0.8))
        assert "idx_qgrams_composite" in plan

    def test_file_backed_database(self, setup, tmp_path):
        searcher, _e, vocab = setup
        path = str(tmp_path / "qgrams.db")
        with SqliteBaseline(searcher.collection, database=path) as engine:
            pq = searcher.prepare(vocab[:3])
            got = {r.set_id for r in engine.search(pq, 0.6).results}
            ref = {r.set_id for r in searcher.brute_force(vocab[:3], 0.6)}
            assert got == ref
        import os

        assert os.path.exists(path)

    def test_context_manager_closes(self, setup):
        searcher, _e, _v = setup
        engine = SqliteBaseline(searcher.collection)
        engine.close()
        import sqlite3

        with pytest.raises(sqlite3.ProgrammingError):
            engine.row_counts()
