"""Unit tests for repro.core.tokenize."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.tokenize import (
    QGramTokenizer,
    WordQGramTokenizer,
    WordTokenizer,
    gram_count_for_length,
    jaccard,
    length_bucket,
    ngram_profile,
    split_into_words,
    tokenizer_from_name,
)


class TestWordTokenizer:
    def test_basic_split(self):
        assert WordTokenizer().tokens("Main St., Main") == [
            "main", "st", "main",
        ]

    def test_counts_are_multiset(self):
        counts = WordTokenizer().counts("Main St., Main")
        assert counts == {"main": 2, "st": 1}

    def test_set_deduplicates(self):
        assert WordTokenizer().set("a b a") == frozenset({"a", "b"})

    def test_case_preserved_when_disabled(self):
        assert WordTokenizer(lowercase=False).tokens("Main St") == [
            "Main", "St",
        ]

    def test_min_length_filters(self):
        assert WordTokenizer(min_length=3).tokens("a bb ccc dddd") == [
            "ccc", "dddd",
        ]

    def test_min_length_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            WordTokenizer(min_length=0)

    def test_numbers_kept(self):
        assert WordTokenizer().tokens("route 66") == ["route", "66"]

    def test_empty_string(self):
        assert WordTokenizer().tokens("") == []

    def test_callable_protocol(self):
        tok = WordTokenizer()
        assert tok("x y") == tok.tokens("x y")


class TestQGramTokenizer:
    def test_padded_count(self):
        grams = QGramTokenizer(q=3).tokens("main")
        # len + q - 1 grams with padding
        assert len(grams) == 4 + 3 - 1

    def test_padded_edges(self):
        grams = QGramTokenizer(q=3, pad_char="#").tokens("ab")
        assert grams[0] == "##a"
        assert grams[-1] == "b##"

    def test_unpadded(self):
        grams = QGramTokenizer(q=3, pad=False).tokens("main")
        assert grams == ["mai", "ain"]

    def test_unpadded_short_string_whole(self):
        assert QGramTokenizer(q=3, pad=False).tokens("ab") == ["ab"]

    def test_empty(self):
        assert QGramTokenizer(q=3).tokens("") == []

    def test_q1_is_characters(self):
        assert QGramTokenizer(q=1).tokens("abc") == ["a", "b", "c"]

    def test_lowercases_by_default(self):
        assert "##m" in QGramTokenizer(q=3).tokens("Main")

    def test_invalid_q(self):
        with pytest.raises(ConfigurationError):
            QGramTokenizer(q=0)

    def test_invalid_pad_char(self):
        with pytest.raises(ConfigurationError):
            QGramTokenizer(pad_char="##")

    def test_gram_count_matches_helper(self):
        for word in ["a", "ab", "abcdef", "x" * 20]:
            grams = QGramTokenizer(q=3).tokens(word)
            assert len(grams) == gram_count_for_length(len(word), q=3)

    def test_repr_mentions_q(self):
        assert "q=4" in repr(QGramTokenizer(q=4))


class TestWordQGramTokenizer:
    def test_word_boundaries_respected(self):
        grams = WordQGramTokenizer(q=3).tokens("ab cd")
        # No gram spans the space: each word padded independently.
        assert "b#c" not in grams and "b c" not in grams
        assert "##a" in grams and "##c" in grams

    def test_equivalent_to_per_word(self):
        q = QGramTokenizer(q=3)
        combined = WordQGramTokenizer(q=3).tokens("main street")
        assert combined == q.tokens("main") + q.tokens("street")


class TestHelpers:
    def test_jaccard_identical(self):
        assert jaccard(["a", "b"], ["b", "a"]) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard(["a"], ["b"]) == 0.0

    def test_jaccard_partial(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_jaccard_empty_both(self):
        assert jaccard([], []) == 1.0

    def test_factory_names(self):
        assert isinstance(tokenizer_from_name("word"), WordTokenizer)
        assert isinstance(tokenizer_from_name("qgram", q=2), QGramTokenizer)
        assert isinstance(
            tokenizer_from_name("word+qgram"), WordQGramTokenizer
        )

    def test_factory_unknown(self):
        with pytest.raises(ConfigurationError):
            tokenizer_from_name("bogus")

    def test_split_into_words(self):
        assert split_into_words("The Main St.") == ["the", "main", "st"]

    def test_ngram_profile_counts_documents(self):
        profile = ngram_profile(["aaa", "aaa"], q=3)
        assert profile["aaa"] == 2  # document frequency, not occurrences

    def test_length_bucket(self):
        buckets = [(1, 5), (6, 10)]
        assert length_bucket(3, buckets) == 0
        assert length_bucket(6, buckets) == 1
        assert length_bucket(11, buckets) == -1
