"""Bad: wall-clock reads in timing code, four flavours."""

import time
from time import time as now
from time import time_ns


def elapsed(work) -> float:
    started = time.time()  # module attribute
    work()
    return time.time() - started


def elapsed_ns(work) -> int:
    started = time.time_ns()  # time_ns counts too
    work()
    return time.time_ns() - started


def via_binding() -> float:
    return now()  # from-import with asname


def via_direct_import() -> int:
    return time_ns()  # from-import, original name
