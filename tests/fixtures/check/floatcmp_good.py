"""Good: tolerance comparisons and a pragma'd identity comparison."""

import math

SCORE_EPSILON = 1e-9


def close(score: float, threshold: float) -> bool:
    return math.isclose(score, threshold, abs_tol=SCORE_EPSILON)


def above(score: float, threshold: float) -> bool:
    return score >= threshold - SCORE_EPSILON


def same_result(a, b) -> bool:
    # Identity semantics, not numeric equality.
    return (a.set_id, a.score) == (b.set_id, b.score)  # repro-check: allow-float-eq


def same_result_pragma_above(a, b) -> bool:
    # repro-check: allow-float-eq
    return a.score == b.score


def counts_are_fine(left_count: int, right_count: int) -> bool:
    return left_count == right_count  # not score-ish: no violation
