"""Bottom layer: imports nothing from the package."""

import math


def weight(df: int, n: int) -> float:
    return math.log(1 + n / df)
