"""Algorithms layer: downward imports only."""

from ..storage import lists  # downward: algorithms(3) -> storage(2)


class Runner:
    pass


def run():
    return lists.build(1, 2)
