"""Storage layer: downward imports plus both sanctioned escapes."""

from typing import TYPE_CHECKING

from ..core import measure  # downward: storage(2) -> core(0), allowed

if TYPE_CHECKING:  # annotation-only upward import: sanctioned
    from ..algorithms import alg


def build(df: int, n: int) -> float:
    return measure.weight(df, n)


def dispatch():
    # Late (function-body) upward import: sanctioned escape hatch.
    from ..algorithms import alg as algorithms_alg

    return algorithms_alg.run()


def annotated(a: "alg.Runner") -> None:
    return None
