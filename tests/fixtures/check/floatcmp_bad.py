"""Bad: raw equality on similarity scores, four flavours."""


def exact_score(score: float, best_score: float) -> bool:
    return score == best_score  # names on both sides


def tau_vs_threshold(tau: float, threshold: float) -> bool:
    return tau != threshold  # inequality counts too


def attribute_operand(result, expected: float) -> bool:
    return result.score == expected  # attribute named 'score'


def tuple_operand(a, b) -> bool:
    return (a.set_id, a.score) == (b.set_id, b.score)  # inside a tuple


def call_operand(candidate, query) -> bool:
    return similarity(candidate, query) == 1.0  # call named 'similarity'


def similarity(candidate, query) -> float:
    return 1.0
