"""Good: monotonic clocks for durations, pragma'd wall-clock reads."""

import time
from time import monotonic, perf_counter


def measure(work) -> float:
    started = perf_counter()
    work()
    return perf_counter() - started


def measure_module_attr(work) -> float:
    started = time.monotonic()
    work()
    return time.monotonic() - started


def heartbeat() -> float:
    return monotonic()


def report_stamp() -> float:
    # A genuine epoch timestamp for a report header, reviewed as such.
    return time.time()  # repro-check: allow-wall-clock


def not_the_stdlib_clock(time) -> float:
    # Any callable named plain 'time' that is not the module is fine.
    return time()
