"""Registered algorithm classes whose docstrings cite nothing."""


def register_algorithm(cls):
    return cls


@register_algorithm
class NoCite:
    """A very fast algorithm with excellent pruning."""

    name = "nocite"

    def _run(self, query, tau):
        return []


@register_algorithm
class NoDoc:
    name = "nodoc"

    def _run(self, query, tau):
        return []
