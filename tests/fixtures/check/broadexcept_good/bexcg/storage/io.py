"""Good: narrow handlers, plus a pragma'd deliberate catch-all."""


def read_page(fh):
    try:
        return fh.read(4096)
    except OSError:
        raise


def last_resort(callback):
    try:
        return callback()
    except Exception:  # repro-check: allow-broad-except
        return None
