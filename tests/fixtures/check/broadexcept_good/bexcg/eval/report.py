"""Good: a broad handler outside the patrolled layers is tolerated.

``eval`` is report-and-continue territory; the pass only patrols the
failure-critical ``storage`` and ``service`` layers.
"""


def render(section):
    try:
        return section.render()
    except Exception:
        return "<render failed>"
