"""A well-behaved algorithm module: everything registered and wired."""


def register_algorithm(cls):
    return cls


class SelectionAlgorithm:
    name = "abstract"

    def search(self, query, tau):
        return self._run(query, tau)

    def _bounds(self, query, tau):
        return (0.0, 1.0)

    def _run(self, query, tau):
        raise NotImplementedError


class Intermediate(SelectionAlgorithm):  # repro-check: abstract-algorithm
    """Shared plumbing for the concrete variants below."""


@register_algorithm
class Good(Intermediate):
    """Round-robin merge over weight-ordered lists (Section V,
    Algorithm 2)."""

    name = "good"

    def _run(self, query, tau):
        return []


class CallRegistered(SelectionAlgorithm):
    """Depth-first list-at-a-time variant (Section VI, Algorithm 3)."""

    name = "call-registered"

    def _run(self, query, tau):
        return []


register_algorithm(CallRegistered)
