"""Every way an algorithm class can break the base-class contract."""


def register_algorithm(cls):
    return cls


class SelectionAlgorithm:
    name = "abstract"

    def search(self, query, tau):
        return self._run(query, tau)

    def _bounds(self, query, tau):
        return (0.0, 1.0)

    def _run(self, query, tau):
        raise NotImplementedError


class Unregistered(SelectionAlgorithm):
    """(Section IV)"""

    name = "unregistered"

    def _run(self, query, tau):
        return []


@register_algorithm
class Shadow(SelectionAlgorithm):
    """(Section IV)"""

    name = "shadow"

    def _run(self, query, tau):
        return []

    def search(self, query, tau):  # overrides the shared template
        return []

    def _bounds(self, query, tau):  # overrides the shared template
        return ()


@register_algorithm
class NoRun(SelectionAlgorithm):
    """(Section IV)"""

    name = "norun"


@register_algorithm
class Sentinel(SelectionAlgorithm):
    """(Section IV)"""

    name = "abstract"

    def _run(self, query, tau):
        return []


@register_algorithm
class Nameless(SelectionAlgorithm):
    """(Section IV)"""

    def _run(self, query, tau):
        return []
