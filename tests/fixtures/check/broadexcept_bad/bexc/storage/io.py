"""Bad: broad handlers in a storage module, three flavours."""


def read_page(fh):
    try:
        return fh.read(4096)
    except Exception:  # swallows injected TransientIOError
        return b""


def flush(fh):
    try:
        fh.flush()
    except:  # noqa: E722 — bare except is the worst flavour
        pass


def close_quietly(fh):
    try:
        fh.close()
    except (ValueError, Exception):  # broad name hidden in a tuple
        pass
