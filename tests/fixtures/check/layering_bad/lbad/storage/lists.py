"""Bad: storage imports sideways from data (same rank)."""

from ..data import stuff  # sideways: storage(2) -> data(2), violation


def build():
    return stuff.VALUE
