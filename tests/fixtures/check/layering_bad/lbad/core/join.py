"""Bad: core imports upward from storage at module level."""

from ..storage import lists  # upward: core(0) -> storage(2), violation


def join():
    return lists.build()
