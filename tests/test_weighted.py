"""Tests for tf-based measure selection (WeightedSelector)."""

import random

import pytest

from repro import SetCollection, WeightedSelector
from repro.core.errors import EmptyQueryError


@pytest.fixture(scope="module")
def multiset_setup():
    """A collection with real term frequencies (tf up to 4)."""
    rng = random.Random(55)
    vocab = [f"w{i}" for i in range(40)]
    sets = []
    for _ in range(250):
        base = rng.sample(vocab, rng.randint(1, 6))
        tokens = []
        for t in base:
            tokens.extend([t] * rng.choice([1, 1, 1, 2, 4]))
        sets.append(tokens)
    coll = SetCollection.from_token_sets(sets)
    return WeightedSelector(coll), vocab, rng


def answers(results):
    return {(r.set_id, round(r.score, 9)) for r in results}


class TestCorrectness:
    @pytest.mark.parametrize("measure", ["tfidf", "bm25", "bm25p"])
    @pytest.mark.parametrize("tau", [0.3, 0.6, 0.9])
    def test_matches_brute_force(self, multiset_setup, measure, tau):
        selector, vocab, _rng = multiset_setup
        rng = random.Random(hash((measure, tau)) & 0xFFFF)
        for _ in range(8):
            q = []
            for t in rng.sample(vocab, rng.randint(1, 5)):
                q.extend([t] * rng.choice([1, 1, 2]))
            got = answers(selector.search(q, tau, measure=measure).results)
            ref = answers(selector.brute_force(q, tau, measure=measure))
            assert got == ref, (measure, tau, q)

    def test_exact_multiset_match_scores_one(self, multiset_setup):
        selector, _vocab, _rng = multiset_setup
        rec = selector.collection[0]
        q = []
        for t, tf in rec.counts.items():
            q.extend([t] * tf)
        result = selector.search(q, 0.99, measure="tfidf")
        assert 0 in result.ids()

    def test_tf_divergence_matters_for_tfidf(self):
        coll = SetCollection.from_token_sets(
            [["a", "b"], ["a", "a", "a", "a", "b"]]
        )
        selector = WeightedSelector(coll)
        result = selector.search(["a", "b"], 0.9, measure="tfidf")
        assert 0 in result.ids()
        # The tf-skewed set scores lower than the exact multiset match.
        scores = {r.set_id: r.score for r in selector.search(
            ["a", "b"], 0.1, measure="tfidf"
        ).results}
        assert scores[0] > scores[1]

    def test_bm25p_ignores_tf(self):
        coll = SetCollection.from_token_sets(
            [["a", "b"], ["a", "a", "a", "a", "b"]]
        )
        selector = WeightedSelector(coll)
        scores = {
            r.set_id: r.score
            for r in selector.search(["a", "b"], 0.1, measure="bm25p").results
        }
        assert scores[0] == pytest.approx(scores[1])

    def test_empty_query_rejected(self, multiset_setup):
        selector, _v, _r = multiset_setup
        with pytest.raises(EmptyQueryError):
            selector.search([], 0.5)


class TestFiltering:
    def test_max_tf_computed(self, multiset_setup):
        selector, _v, _r = multiset_setup
        assert selector.max_tf == 4

    def test_tfidf_window_prunes(self, multiset_setup):
        selector, vocab, _r = multiset_setup
        rng = random.Random(1)
        q = rng.sample(vocab, 4)
        windowed = selector.search(q, 0.9, measure="tfidf")
        unwindowed = selector.search(q, 0.9, measure="bm25")
        # BM25 falls back to gather-everything-overlapping; the TF/IDF
        # boosted window must not read more.
        assert (
            windowed.stats.elements_read <= unwindowed.stats.elements_read
        )

    def test_unseen_tokens_ok(self, multiset_setup):
        selector, vocab, _r = multiset_setup
        result = selector.search([vocab[0], "zzz-unknown"], 0.3)
        ref = answers(selector.brute_force([vocab[0], "zzz-unknown"], 0.3))
        assert answers(result.results) == ref

    def test_idf_measure_accepted_for_uniformity(self, multiset_setup):
        selector, vocab, _r = multiset_setup
        result = selector.search([vocab[0]], 0.5, measure="idf")
        ref = answers(selector.brute_force([vocab[0]], 0.5, measure="idf"))
        assert answers(result.results) == ref
