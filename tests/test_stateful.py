"""Stateful (model-based) hypothesis tests for the mutable structures."""

from collections import OrderedDict

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.storage.buffer import LRUBufferPool
from repro.storage.btree import BPlusTree
from repro.storage.exthash import ExtendibleHash


class ExtendibleHashMachine(RuleBasedStateMachine):
    """ExtendibleHash must behave exactly like a dict of int -> value."""

    def __init__(self):
        super().__init__()
        self.hash = ExtendibleHash(bucket_capacity=2)  # force many splits
        self.model = {}

    @rule(key=st.integers(0, 500), value=st.integers(-10, 10))
    def insert(self, key, value):
        self.hash.insert(key, value)
        self.model[key] = value

    @rule(key=st.integers(0, 500))
    def probe(self, key):
        found, value = self.hash.probe(key)
        assert found == (key in self.model)
        if found:
            assert value == self.model[key]

    @invariant()
    def sizes_agree(self):
        assert len(self.hash) == len(self.model)

    @invariant()
    def load_factor_sane(self):
        if self.model:
            assert 0.0 < self.hash.load_factor() <= 1.0


class LRUPoolMachine(RuleBasedStateMachine):
    """LRUBufferPool must match a reference OrderedDict LRU."""

    CAPACITY = 4

    def __init__(self):
        super().__init__()
        self.pool = LRUBufferPool(self.CAPACITY)
        self.model = OrderedDict()

    @rule(key=st.integers(0, 10))
    def access(self, key):
        expected_hit = key in self.model
        if expected_hit:
            self.model.move_to_end(key)
        else:
            self.model[key] = None
            if len(self.model) > self.CAPACITY:
                self.model.popitem(last=False)
        assert self.pool.access(key) == expected_hit

    @invariant()
    def contents_agree(self):
        assert len(self.pool) == len(self.model)
        for key in self.model:
            assert key in self.pool


class BTreeMachine(RuleBasedStateMachine):
    """Point-inserted B+-tree must match a sorted dict."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)  # tiny order forces splits
        self.model = {}

    @rule(key=st.integers(0, 200), value=st.integers())
    def insert(self, key, value):
        # The tree allows duplicate keys; the model keeps the first, and we
        # only insert fresh keys to keep semantics aligned.
        if key not in self.model:
            self.tree.insert(key, value)
            self.model[key] = value

    @rule(key=st.integers(0, 200))
    def seek(self, key):
        assert self.tree.seek(key) == self.model.get(key)

    @rule(a=st.integers(0, 200), b=st.integers(0, 200))
    def range_scan(self, a, b):
        lo, hi = min(a, b), max(a, b)
        got = [k for k, _ in self.tree.range_scan(lo, hi)]
        expected = sorted(k for k in self.model if lo <= k <= hi)
        assert got == expected

    @invariant()
    def items_sorted(self):
        keys = [k for k, _ in self.tree.items()]
        assert keys == sorted(self.model)


TestExtendibleHashStateful = ExtendibleHashMachine.TestCase
TestLRUPoolStateful = LRUPoolMachine.TestCase
TestBTreeStateful = BTreeMachine.TestCase

for case in (
    TestExtendibleHashStateful,
    TestLRUPoolStateful,
    TestBTreeStateful,
):
    case.settings = settings(
        max_examples=25, stateful_step_count=40, deadline=None
    )
