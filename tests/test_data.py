"""Tests for synthetic data generation, error models, and workloads."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.data.errors import (
    apply_modifications,
    make_all_levels,
    make_graded_dataset,
    modifications_for_level,
)
from repro.data.synthetic import (
    WordGenerator,
    WordLocation,
    build_word_collection,
    distinct_words,
    generate_records,
    generate_word_database,
    word_occurrences,
    zipf_weights,
)
from repro.data.workloads import (
    all_bucket_workloads,
    bucket_words,
    make_workload,
)


class TestWordGenerator:
    def test_deterministic(self):
        a = WordGenerator(seed=1).vocabulary(50)
        b = WordGenerator(seed=1).vocabulary(50)
        assert a == b

    def test_different_seeds_differ(self):
        assert WordGenerator(seed=1).vocabulary(50) != WordGenerator(
            seed=2
        ).vocabulary(50)

    def test_distinct(self):
        vocab = WordGenerator(seed=3).vocabulary(200)
        assert len(set(vocab)) == 200

    def test_words_nonempty_lowercase(self):
        for w in WordGenerator(seed=4).vocabulary(100):
            assert w and w == w.lower()


class TestRecords:
    def test_shape(self):
        records = generate_records(100, vocabulary_size=50, seed=9)
        assert len(records) == 100
        for r in records:
            assert 2 <= len(r.split()) <= 4

    def test_zipf_weights(self):
        w = zipf_weights(4)
        assert w == [1.0, 0.5, pytest.approx(1 / 3), 0.25]

    def test_zipf_skew_visible_in_frequencies(self):
        from collections import Counter

        records = generate_records(2000, vocabulary_size=200, seed=2)
        counts = Counter(w for r in records for w in r.split())
        freqs = sorted(counts.values(), reverse=True)
        # Head of the distribution dominates the tail.
        assert freqs[0] > 10 * freqs[-1]

    def test_word_occurrences_locations(self):
        occ = word_occurrences(["a b", "c"])
        assert [(o.word, o.row, o.position) for o in occ] == [
            ("a", 0, 0), ("b", 0, 1), ("c", 1, 0),
        ]

    def test_packed_location_roundtrip(self):
        loc = WordLocation("x", row=123456, position=7)
        packed = loc.packed()
        assert packed >> 24 == 123456
        assert packed & 0xFFFFFF == 7

    def test_distinct_words_order(self):
        assert distinct_words(["b a", "a c"]) == ["b", "a", "c"]


class TestWordDatabase:
    def test_collection_payloads_are_words(self):
        coll, words = generate_word_database(
            num_records=100, vocabulary_size=80, seed=5
        )
        assert len(coll) == len(words)
        assert coll.payload(0) == words[0]

    def test_grams_are_q3(self):
        coll, words = generate_word_database(
            num_records=50, vocabulary_size=40, seed=5
        )
        rec = coll[0]
        assert all(len(g) == 3 for g in rec.tokens)

    def test_build_word_collection_custom_q(self):
        coll = build_word_collection(["abc", "abcd"], q=2)
        assert all(len(g) == 2 for g in coll[0].tokens)


class TestModifications:
    def test_zero_is_identity(self):
        rng = random.Random(0)
        assert apply_modifications("hello", 0, rng) == "hello"

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_modifications("x", -1, random.Random(0))

    def test_single_edit_changes_length_or_content(self):
        rng = random.Random(1)
        for _ in range(50):
            out = apply_modifications("street", 1, rng)
            assert abs(len(out) - 6) <= 1

    def test_deterministic_with_seed(self):
        a = apply_modifications("boulevard", 3, random.Random(42))
        b = apply_modifications("boulevard", 3, random.Random(42))
        assert a == b

    def test_empty_string_handled(self):
        # First edit on "" must be an insertion; the second may delete it
        # again, so only the length envelope is guaranteed.
        rng = random.Random(2)
        out = apply_modifications("", 2, rng)
        assert 0 <= len(out) <= 2

    def test_many_edits_allowed(self):
        rng = random.Random(3)
        out = apply_modifications("ab", 10, rng)
        assert isinstance(out, str)


class TestGradedDatasets:
    def test_levels_monotone_in_error(self):
        mods = [modifications_for_level(lv)[0] for lv in range(1, 9)]
        assert mods == sorted(mods, reverse=True)
        touched = [modifications_for_level(lv)[1] for lv in range(1, 9)]
        assert touched == sorted(touched, reverse=True)

    def test_invalid_level(self):
        with pytest.raises(ConfigurationError):
            modifications_for_level(0)
        with pytest.raises(ConfigurationError):
            modifications_for_level(9)

    def test_dataset_shape(self):
        clean = ["alpha beta", "gamma delta"]
        ds = make_graded_dataset(4, clean, duplicates_per_string=3, seed=1)
        assert len(ds) == 2 * (1 + 3)
        assert ds.strings[0] == "alpha beta"
        assert ds.groups[:4] == [0, 0, 0, 0]

    def test_duplicates_differ_from_source(self):
        clean = ["mainstreet apartment"]
        ds = make_graded_dataset(8, clean, duplicates_per_string=5, seed=2)
        for i in ds.dirty_indexes():
            assert ds.strings[i] != clean[0]

    def test_relevant_for(self):
        ds = make_graded_dataset(5, ["a b", "c d"], 2, seed=3)
        rel = ds.relevant_for(0)
        assert set(rel) == {1, 2}

    def test_group_members(self):
        ds = make_graded_dataset(5, ["a b", "c d"], 2, seed=3)
        assert ds.group_members(1) == [3, 4, 5]

    def test_all_levels(self):
        levels = make_all_levels(["one two"], duplicates_per_string=1)
        assert [d.level for d in levels] == list(range(1, 9))

    def test_deterministic(self):
        a = make_graded_dataset(3, ["word here"], 2, seed=7)
        b = make_graded_dataset(3, ["word here"], 2, seed=7)
        assert a.strings == b.strings


class TestWorkloads:
    def test_bucket_assignment(self, word_database):
        coll, _words = word_database
        buckets = bucket_words(coll)
        for (lo, hi), ids in buckets.items():
            for sid in ids:
                assert lo <= len(coll[sid].tokens) <= hi

    def test_workload_sources_in_bucket(self, word_database):
        coll, _ = word_database
        wl = make_workload(coll, (6, 10), count=10, seed=1)
        for sid in wl.source_ids:
            assert 6 <= len(coll[sid].tokens) <= 10

    def test_zero_mods_exact_match_exists(self, word_database):
        coll, _ = word_database
        wl = make_workload(coll, (6, 10), count=5, modifications=0, seed=2)
        for query, sid in zip(wl.queries, wl.source_ids):
            assert query == coll.payload(sid)

    def test_modifications_applied(self, word_database):
        coll, _ = word_database
        wl = make_workload(coll, (11, 15), count=10, modifications=2, seed=3)
        changed = sum(
            1
            for query, sid in zip(wl.queries, wl.source_ids)
            if query != coll.payload(sid)
        )
        assert changed >= 8  # two random edits almost always change a word

    def test_invalid_bucket(self, word_database):
        coll, _ = word_database
        with pytest.raises(ConfigurationError):
            make_workload(coll, (2, 7))

    def test_invalid_count(self, word_database):
        coll, _ = word_database
        with pytest.raises(ConfigurationError):
            make_workload(coll, (6, 10), count=0)

    def test_deterministic(self, word_database):
        coll, _ = word_database
        a = make_workload(coll, (6, 10), count=10, seed=4)
        b = make_workload(coll, (6, 10), count=10, seed=4)
        assert a.queries == b.queries

    def test_all_bucket_workloads(self, word_database):
        coll, _ = word_database
        wls = all_bucket_workloads(coll, count=5, seed=5)
        assert len(wls) >= 2
        assert all(len(wl) == 5 for wl in wls)
