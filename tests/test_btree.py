"""Unit + property tests for the B+-tree."""

import bisect
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StorageError
from repro.storage.btree import BPlusTree
from repro.storage.pages import IOStats


def sorted_items(n, seed=0):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(n * 10), n))
    return [(k, k * 2) for k in keys]


class TestBulkLoad:
    def test_round_trip(self):
        items = sorted_items(500)
        tree = BPlusTree.bulk_load(items, order=16)
        assert len(tree) == 500
        assert list(tree.items()) == items

    def test_empty(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_unsorted_rejected(self):
        with pytest.raises(StorageError):
            BPlusTree.bulk_load([(2, 0), (1, 0)])

    def test_height_grows_logarithmically(self):
        small = BPlusTree.bulk_load(sorted_items(50), order=8)
        large = BPlusTree.bulk_load(sorted_items(5000), order=8)
        assert large.height > small.height
        assert large.height <= 6

    def test_order_too_small(self):
        with pytest.raises(StorageError):
            BPlusTree(order=2)


class TestSeek:
    def test_hit_and_miss(self):
        tree = BPlusTree.bulk_load([(1, "a"), (5, "b"), (9, "c")])
        assert tree.seek(5) == "b"
        assert tree.seek(4) is None

    def test_seek_charges_inner_levels(self):
        tree = BPlusTree.bulk_load(sorted_items(5000), order=8)
        stats = IOStats()
        tree.seek(sorted_items(5000)[100][0], stats)
        assert stats.random_pages == tree.height - 1


class TestRangeScan:
    def test_matches_reference(self):
        items = sorted_items(1000, seed=3)
        keys = [k for k, _ in items]
        tree = BPlusTree.bulk_load(items, order=32)
        lo_key, hi_key = keys[100], keys[500]
        got = list(tree.range_scan(lo_key, hi_key))
        lo_i = bisect.bisect_left(keys, lo_key)
        hi_i = bisect.bisect_right(keys, hi_key)
        assert got == items[lo_i:hi_i]

    def test_exclusive_upper(self):
        tree = BPlusTree.bulk_load([(1, "a"), (2, "b"), (3, "c")])
        got = list(tree.range_scan(1, 3, inclusive=False))
        assert [k for k, _ in got] == [1, 2]

    def test_empty_range(self):
        tree = BPlusTree.bulk_load([(1, "a"), (10, "b")])
        assert list(tree.range_scan(2, 9)) == []

    def test_full_range(self):
        items = sorted_items(200)
        tree = BPlusTree.bulk_load(items)
        got = list(tree.range_scan(-1, 10**9))
        assert got == items

    def test_composite_tuple_keys(self):
        items = sorted(
            ((g, l, i), f"{g}-{i}")
            for g in ["aa", "bb"]
            for l in [1.0, 2.0]
            for i in range(3)
        )
        tree = BPlusTree.bulk_load(items, order=4)
        got = list(tree.range_scan(("bb", 1.0, -1), ("bb", 1.0, 99)))
        assert [k for k, _ in got] == [("bb", 1.0, 0), ("bb", 1.0, 1), ("bb", 1.0, 2)]

    def test_scan_charges_sequential_leaves(self):
        items = sorted_items(1000)
        tree = BPlusTree.bulk_load(items, order=16)
        stats = IOStats()
        got = list(tree.range_scan(items[0][0], items[-1][0], stats))
        assert stats.sequential_pages >= tree.num_leaves
        assert stats.elements_read == len(got) == 1000

    @given(
        st.lists(st.integers(0, 500), min_size=0, max_size=200),
        st.integers(0, 500),
        st.integers(0, 500),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_scan_property(self, raw_keys, a, b):
        lo, hi = min(a, b), max(a, b)
        keys = sorted(set(raw_keys))
        tree = BPlusTree.bulk_load([(k, k) for k in keys], order=4)
        got = [k for k, _ in tree.range_scan(lo, hi)]
        assert got == [k for k in keys if lo <= k <= hi]


class TestPointInsert:
    def test_insert_then_scan(self):
        tree = BPlusTree(order=4)
        values = list(range(100))
        random.Random(1).shuffle(values)
        for v in values:
            tree.insert(v, v)
        assert [k for k, _ in tree.items()] == list(range(100))
        assert len(tree) == 100

    def test_insert_into_bulk_loaded(self):
        tree = BPlusTree.bulk_load([(i * 2, i) for i in range(50)], order=4)
        tree.insert(5, "odd")
        assert tree.seek(5) == "odd"
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(keys)

    def test_size_bytes_positive(self):
        tree = BPlusTree.bulk_load(sorted_items(100))
        assert tree.size_bytes() > 0
