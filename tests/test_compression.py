"""Tests for posting-list compression (delta + varint codecs)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StorageError
from repro.storage.compression import (
    CompressedPostings,
    compressed_size_report,
    decode_varint,
    encode_varint,
    zigzag_decode,
    zigzag_encode,
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**60])
    def test_round_trip(self, value):
        buf = bytearray()
        encode_varint(value, buf)
        decoded, offset = decode_varint(bytes(buf), 0)
        assert decoded == value
        assert offset == len(buf)

    def test_small_values_one_byte(self):
        buf = bytearray()
        encode_varint(100, buf)
        assert len(buf) == 1

    def test_negative_rejected(self):
        with pytest.raises(StorageError):
            encode_varint(-1, bytearray())

    def test_truncated_detected(self):
        buf = bytearray()
        encode_varint(300, buf)
        with pytest.raises(StorageError):
            decode_varint(bytes(buf[:-1]), 0)

    @given(st.lists(st.integers(0, 2**50), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_stream_round_trip(self, values):
        buf = bytearray()
        for v in values:
            encode_varint(v, buf)
        data = bytes(buf)
        offset = 0
        out = []
        for _ in values:
            v, offset = decode_varint(data, offset)
            out.append(v)
        assert out == values
        assert offset == len(data)


class TestZigzag:
    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 1000, -1000])
    def test_round_trip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_mapping(self):
        assert [zigzag_encode(v) for v in (0, -1, 1, -2, 2)] == [
            0, 1, 2, 3, 4,
        ]

    @given(st.integers(-(2**40), 2**40))
    @settings(max_examples=100, deadline=None)
    def test_non_negative_output(self, value):
        assert zigzag_encode(value) >= 0


class TestCompressedPostings:
    def _entries(self, n=200, seed=0):
        rng = random.Random(seed)
        return sorted(
            (round(rng.uniform(1, 50), 4), rng.randrange(10_000))
            for _ in range(n)
        )

    def test_round_trip_ids_exact(self):
        entries = self._entries()
        cp = CompressedPostings(entries)
        decoded = cp.decode()
        assert [sid for _, sid in decoded] == [sid for _, sid in entries]

    def test_round_trip_lengths_within_quantum(self):
        entries = self._entries(seed=3)
        quantum = 1.0 / (1 << 16)
        decoded = CompressedPostings(entries, quantum).decode()
        for (orig_len, _), (dec_len, _) in zip(entries, decoded):
            assert abs(orig_len - dec_len) <= quantum / 2 + 1e-12

    def test_compression_beats_raw(self):
        # Dense lengths + clustered ids compress well below 16 B/posting.
        entries = [(10.0 + 0.001 * i, 1000 + i) for i in range(1000)]
        cp = CompressedPostings(entries)
        assert cp.size_bytes() < 16 * len(entries) / 3

    def test_unsorted_rejected(self):
        with pytest.raises(StorageError):
            CompressedPostings([(2.0, 1), (1.0, 2)])

    def test_invalid_quantum(self):
        with pytest.raises(StorageError):
            CompressedPostings([], quantum=0.0)

    def test_empty(self):
        cp = CompressedPostings([])
        assert len(cp) == 0
        assert cp.decode() == []

    def test_size_report_on_real_index(self, searcher):
        report = compressed_size_report(searcher.index)
        assert report["compressed_bytes"] < report["raw_bytes"]
        assert report["ratio"] > 1.5
