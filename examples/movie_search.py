#!/usr/bin/env python3
"""Fuzzy word search over an IMDB-like table (the paper's §VIII setup).

Generates a synthetic actor/movie table, indexes every distinct word as a
set of 3-grams (exactly the paper's experimental database), and answers
misspelled word lookups: threshold selections locate all close words, and
their location ids lead back to the rows that contain them.

Run:  python examples/movie_search.py
"""

import random

from repro import SetCollection, SetSimilaritySearcher
from repro.core.tokenize import QGramTokenizer
from repro.data.errors import apply_modifications
from repro.data.synthetic import generate_records, word_occurrences

THRESHOLD = 0.7


def build_database():
    records = generate_records(
        3000, vocabulary_size=1500, words_per_record=(2, 4), seed=7
    )
    occurrences = word_occurrences(records)
    # One set per *distinct* word; remember every location of each word.
    locations = {}
    for occ in occurrences:
        locations.setdefault(occ.word, []).append((occ.row, occ.position))
    words = list(locations)
    tokenizer = QGramTokenizer(q=3)
    collection = SetCollection.from_strings(words, tokenizer)
    return records, words, locations, collection, tokenizer


def main() -> None:
    records, words, locations, collection, tokenizer = build_database()
    searcher = SetSimilaritySearcher(collection)
    print(
        f"indexed {len(words)} distinct words from {len(records)} rows "
        f"({collection.vocabulary_size()} distinct 3-grams)"
    )

    rng = random.Random(99)
    for _ in range(4):
        # Pick a real word and corrupt it, as a user's typo would.
        word = words[rng.randrange(len(words))]
        typo = apply_modifications(word, 1, rng)
        result = searcher.search(
            tokenizer.tokens(typo), THRESHOLD, algorithm="sf"
        )
        print(f"\nlookup {typo!r} (tau={THRESHOLD}):")
        if not result.results:
            print("   no match")
            continue
        for r in result.results[:3]:
            matched = collection.payload(r.set_id)
            row, pos = locations[matched][0]
            print(
                f"   {r.score:.3f}  {matched!r} "
                f"-> e.g. row {row}: {records[row]!r}"
            )
        print(
            f"   (read {result.stats.elements_read} of "
            f"{result.elements_total} postings; "
            f"{result.pruning_power:.0%} pruned)"
        )

    # "Did you mean": top-k suggestions for a word with no threshold match.
    long_words = [w for w in words if len(w) >= 9]
    word = long_words[rng.randrange(len(long_words))]
    mangled = apply_modifications(word, 3, rng)
    print(f"\ndid-you-mean for heavily mangled {mangled!r}:")
    for r in searcher.top_k(tokenizer.tokens(mangled), 3).results:
        print(f"   {r.score:.3f}  {collection.payload(r.set_id)!r}")


if __name__ == "__main__":
    main()
