#!/usr/bin/env python3
"""Data cleaning: detect duplicate records in a dirty table.

The motivating scenario of the paper's introduction: a table accumulates
inconsistent versions of the same entity (typos, format drift).  We generate
such a table with a graded error model, then use set similarity selection
to group duplicates, and score the result against the known ground truth.

Run:  python examples/data_cleaning.py
"""

from repro import SetCollection, SetSimilaritySearcher
from repro.core.tokenize import WordQGramTokenizer
from repro.data.errors import make_graded_dataset
from repro.data.synthetic import generate_records

THRESHOLD = 0.5
ERROR_LEVEL = 6  # cu6-style: light-to-moderate errors


def build_dirty_table():
    clean = generate_records(
        120, vocabulary_size=900, words_per_record=(2, 3), seed=42
    )
    return make_graded_dataset(
        ERROR_LEVEL, clean, duplicates_per_string=2, seed=42
    )


def main() -> None:
    dataset = build_dirty_table()
    print(f"dirty table: {len(dataset)} rows "
          f"({len(set(dataset.groups))} true entities, error level cu{ERROR_LEVEL})")

    tokenizer = WordQGramTokenizer(q=3)
    collection = SetCollection.from_strings(dataset.strings, tokenizer)
    searcher = SetSimilaritySearcher(collection)

    # For every row, select similar rows above the threshold (SF algorithm).
    true_positives = false_positives = false_negatives = 0
    elements_read = 0
    elements_total = 0
    sample_shown = 0
    for row_id, text in enumerate(dataset.strings):
        tokens = tokenizer.tokens(text)
        result = searcher.search(tokens, THRESHOLD, algorithm="sf")
        elements_read += result.stats.elements_read
        elements_total += result.elements_total
        found = {r.set_id for r in result.results} - {row_id}
        truth = set(dataset.relevant_for(row_id))
        true_positives += len(found & truth)
        false_positives += len(found - truth)
        false_negatives += len(truth - found)
        if sample_shown < 3 and found:
            print(f"\nrow {row_id}: {text!r}")
            for r in result.results:
                if r.set_id == row_id:
                    continue
                flag = "DUP" if r.set_id in truth else "???"
                print(f"   {flag} {r.score:.3f}  {dataset.strings[r.set_id]!r}")
            sample_shown += 1

    precision = true_positives / max(true_positives + false_positives, 1)
    recall = true_positives / max(true_positives + false_negatives, 1)
    print(f"\npairwise duplicate detection at tau={THRESHOLD}:")
    print(f"  precision: {precision:.3f}")
    print(f"  recall:    {recall:.3f}")
    print(
        f"  work:      read {elements_read} of {elements_total} list "
        f"elements ({1 - elements_read / elements_total:.1%} pruned)"
    )


if __name__ == "__main__":
    main()
