#!/usr/bin/env python3
"""Quickstart: set similarity selection in five minutes.

Builds a small string collection, runs threshold and top-k queries through
the high-level API, shows the seven algorithms agreeing on the answers
while doing very different amounts of work, and serves a batch of queries
through the concurrent service layer (caching + coalescing + HTTP).

Run:  python examples/quickstart.py
"""

import json
import urllib.request

from repro import (
    QGramTokenizer,
    SetCollection,
    SetSimilaritySearcher,
    SimilarityService,
    StringMatcher,
    algorithm_names,
)
from repro.service import ServiceHTTPServer

ADDRESSES = [
    "12 Main St., Main",
    "12 Main St., Maine",
    "12 Main Street, Maine",
    "17 Elm Avenue, Springfield",
    "17 Elm Ave, Springfield",
    "1600 Pennsylvania Avenue",
    "221B Baker Street, London",
    "221 Baker St, London",
    "4 Privet Drive, Little Whinging",
]


def string_matching() -> None:
    print("=== String matching (the paper's data-cleaning use case) ===")
    matcher = StringMatcher(ADDRESSES)

    query = "12 Main St., Mane"  # typo for 'Maine'
    print(f"\nquery: {query!r}, threshold 0.5")
    for text, score in matcher.match(query, threshold=0.5):
        print(f"  {score:.3f}  {text}")

    print(f"\ntop-3 for {query!r} (top-k extension):")
    for text, score in matcher.best_matches(query, k=3):
        print(f"  {score:.3f}  {text}")


def token_sets_and_algorithms() -> None:
    print("\n=== Token-set API: one index, seven algorithms ===")
    sets = [
        ["data", "cleaning", "matters"],
        ["data", "cleaning"],
        ["query", "processing"],
        ["set", "similarity", "query", "processing"],
        ["data", "quality", "matters"],
    ]
    collection = SetCollection.from_token_sets(sets)
    searcher = SetSimilaritySearcher(collection)

    query = ["data", "cleaning", "quality"]
    print(f"\nquery tokens: {query}, threshold 0.4")
    for name in algorithm_names():
        result = searcher.search(query, threshold=0.4, algorithm=name)
        answers = ", ".join(
            f"set{r.set_id}({r.score:.2f})" for r in result.results
        )
        print(
            f"  {name:>10}: [{answers}]  "
            f"elements read: {result.stats.elements_read:>3}  "
            f"pruning: {result.pruning_power:5.1%}"
        )

    print("\nSame answers everywhere; the improved algorithms (inra, ita,")
    print("sf, hybrid) read far fewer list elements — that is the paper.")


def service_and_http() -> None:
    print("\n=== Service layer: batches, caching, HTTP ===")
    tokenizer = QGramTokenizer()
    collection = SetCollection.from_strings(ADDRESSES, tokenizer)
    searcher = SetSimilaritySearcher(collection)

    with SimilarityService(searcher, tokenizer=tokenizer) as service:
        queries = [
            "12 Main St., Mane",
            "221B Baker St",
            "12 Main St., Mane",  # repeated: coalesced within the batch
        ]
        batch = service.search_batch(
            [tokenizer.tokens(q) for q in queries], 0.5
        )
        for text, res in zip(queries, batch):
            best = res.results[0] if res.results else None
            answer = (
                f"{service.payload(best.set_id)!r} ({best.score:.2f})"
                if best else "no match"
            )
            flags = "cached" if res.cached else (
                "coalesced" if res.coalesced else "executed"
            )
            print(f"  {text!r:28} -> {answer:38} [{flags}]")

        # A second identical query is a result-cache hit: no index access.
        again = service.search(tokenizer.tokens(queries[0]), 0.5)
        print(f"  repeat query cached: {again.cached}")

        # The same service behind the stdlib HTTP endpoint (repro serve).
        with ServiceHTTPServer(service, port=0) as server:
            body = json.dumps(
                {"text": "17 Elm Av, Springfield", "threshold": 0.5}
            ).encode()
            with urllib.request.urlopen(
                urllib.request.Request(server.url + "/search", data=body)
            ) as resp:
                payload = json.loads(resp.read())
        top = payload["results"][0]
        print(
            f"  HTTP /search -> {top['payload']!r} "
            f"({top['score']:.2f}); degraded={payload['degraded']}"
        )


def main() -> None:
    string_matching()
    token_sets_and_algorithms()
    service_and_http()


if __name__ == "__main__":
    main()
