#!/usr/bin/env python3
"""One dataset, five notions of similarity.

The paper argues no single similarity function fits all domains (§I citing
[4]); this example runs the same dirty-lookup workload through everything
the library offers — the paper's IDF measure, tf-based TF/IDF and BM25,
unweighted cosine/Jaccard/Dice, and edit distance — and renders the
comparison as terminal charts.

Run:  python examples/similarity_measures.py
"""

from repro import (
    CosineSetSearcher,
    SetCollection,
    SetSimilaritySearcher,
    WeightedSelector,
)
from repro.core.editdistance import EditDistanceSearcher
from repro.core.tokenize import QGramTokenizer
from repro.eval.plots import bar_chart, line_chart

NAMES = [
    "jonathan smithers",
    "jonathon smithers",
    "jon smithers",
    "jonathan smith",
    "smithers jonathan",
    "elizabeth warren",
    "elisabeth waren",
    "mary-jane watson",
]
QUERY = "jonathan smitters"  # two typos


def main() -> None:
    tokenizer = QGramTokenizer(q=3)
    collection = SetCollection.from_strings(NAMES, tokenizer)
    idf = SetSimilaritySearcher(collection)
    weighted = WeightedSelector(collection, index=idf.index)
    unweighted = CosineSetSearcher(
        [tokenizer.tokens(n) for n in NAMES]
    )
    editdist = EditDistanceSearcher(NAMES, q=3)

    q_tokens = tokenizer.tokens(QUERY)
    print(f"query: {QUERY!r}\n")

    header = f"{'record':<22}" + "".join(
        f"{m:>9}" for m in ["IDF", "TFIDF", "BM25", "cosine", "jaccard", "ed"]
    )
    print(header)
    print("-" * len(header))
    scores_by_measure = {m: [] for m in ["IDF", "TFIDF", "BM25", "cosine"]}
    for i, name in enumerate(NAMES):
        idf_s = {r.set_id: r.score for r in idf.search(q_tokens, 0.01).results}
        tf_s = {
            r.set_id: r.score
            for r in weighted.search(q_tokens, 0.01, measure="tfidf").results
        }
        bm_s = {
            r.set_id: r.score
            for r in weighted.search(q_tokens, 0.01, measure="bm25").results
        }
        cos = {
            r.set_id: r.score
            for r in unweighted.search(q_tokens, 0.01, measure="cosine").results
        }
        jac = {
            r.set_id: r.score
            for r in unweighted.search(q_tokens, 0.01, measure="jaccard").results
        }
        ed = {s: d for s, d in editdist.search(QUERY, 6)}
        row = (
            f"{name:<22}"
            f"{idf_s.get(i, 0.0):>9.3f}"
            f"{tf_s.get(i, 0.0):>9.3f}"
            f"{bm_s.get(i, 0.0):>9.3f}"
            f"{cos.get(i, 0.0):>9.3f}"
            f"{jac.get(i, 0.0):>9.3f}"
            f"{ed.get(name, '-'):>9}"
        )
        print(row)
        scores_by_measure["IDF"].append(idf_s.get(i, 0.0))
        scores_by_measure["TFIDF"].append(tf_s.get(i, 0.0))
        scores_by_measure["BM25"].append(bm_s.get(i, 0.0))
        scores_by_measure["cosine"].append(cos.get(i, 0.0))

    print("\nIDF scores per record:")
    print(bar_chart(
        {n: s for n, s in zip(NAMES, scores_by_measure["IDF"])},
        width=40,
    ))

    print("\nscore profiles across records (x = record index):")
    print(line_chart(
        list(range(len(NAMES))),
        scores_by_measure,
        height=10,
    ))

    print(
        "\nNote how the weighted measures (IDF/TFIDF/BM25) rank the rare-"
        "\ntoken matches higher, while unweighted cosine treats all grams"
        "\nequally and edit distance cares about character order only."
    )


if __name__ == "__main__":
    main()
