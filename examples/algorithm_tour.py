#!/usr/bin/env python3
"""Algorithm tour: a miniature of the paper's experimental evaluation.

Builds the synthetic word database, runs one threshold sweep with every
engine (including the SQL baseline and the NLB/NSL ablation variants), and
prints paper-style tables — the same machinery the full benchmarks in
``benchmarks/`` use.

Run:  python examples/algorithm_tour.py
"""

from repro.data.synthetic import generate_word_database
from repro.data.workloads import make_workload
from repro.eval.harness import ExperimentContext, format_table

ENGINES = [
    "sort-by-id", "sql", "ta", "nra", "inra", "ita", "sf", "hybrid",
]
ABLATIONS = ["sf", "sf-nlb", "sf-nsl", "sql", "sql-nlb"]


def main() -> None:
    collection, words = generate_word_database(
        num_records=2000, vocabulary_size=1200, seed=1
    )
    print(f"database: {len(collection)} words, "
          f"{collection.vocabulary_size()} grams")
    context = ExperimentContext(collection)
    workload = make_workload(
        collection, bucket=(11, 15), count=20, modifications=0, seed=5
    )

    print("\n--- all engines at tau = 0.8 (cf. Figures 6/7) ---")
    rows = [
        context.run_workload(engine, workload, 0.8).row()
        for engine in ENGINES
    ]
    print(format_table(
        rows,
        ["engine", "avg_results", "avg_wall_ms", "pruning_pct",
         "avg_elems_read", "avg_rand_pages", "avg_io_cost"],
    ))

    print("\n--- threshold sweep for SF (cf. Figure 6a) ---")
    rows = [
        context.run_workload("sf", workload, tau).row()
        for tau in (0.6, 0.7, 0.8, 0.9)
    ]
    print(format_table(
        rows, ["engine", "tau", "avg_results", "pruning_pct",
               "avg_elems_read"],
    ))

    print("\n--- length bounding and skip lists (cf. Figures 8/9) ---")
    rows = [
        context.run_workload(spec, workload, 0.9).row()
        for spec in ABLATIONS
    ]
    print(format_table(
        rows, ["engine", "pruning_pct", "avg_elems_read", "avg_wall_ms"],
    ))

    print("\nIndex sizes (cf. Figure 5):")
    report = context.searcher.index.size_report()
    for name, size in report.items():
        print(f"  {name:>28}: {size/1024:8.1f} KB")
    sql_report = context.sql.size_report()
    for name, size in sql_report.items():
        print(f"  {'sql ' + name:>28}: {size/1024:8.1f} KB")


if __name__ == "__main__":
    main()
