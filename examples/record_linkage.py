#!/usr/bin/env python3
"""Record linkage: match multi-field records with weighted similarities.

A customer file has names, cities and phone-ish ids; no single field is
reliable (names get typos, cities get abbreviated, ids get re-issued).
FieldedMatcher combines per-field IDF similarities with field weights and
keeps candidate generation index-backed — exactly the record-linkage
workflow the set-similarity-selection primitive exists for.

Run:  python examples/record_linkage.py
"""

import random

from repro import FieldedMatcher
from repro.data.errors import apply_modifications
from repro.data.synthetic import WordGenerator

WEIGHTS = {"name": 0.6, "city": 0.25, "street": 0.15}
THRESHOLD = 0.6


def build_customer_file(rng):
    names = WordGenerator(seed=5).vocabulary(150)
    cities = ["boston", "chicago", "seattle", "austin", "denver", "miami"]
    streets = WordGenerator(seed=6).vocabulary(40)
    records = []
    for i in range(200):
        records.append(
            {
                "name": f"{names[rng.randrange(len(names))]} "
                        f"{names[rng.randrange(len(names))]}",
                "city": rng.choice(cities),
                "street": f"{rng.randint(1, 999)} "
                          f"{streets[rng.randrange(len(streets))]} st",
            }
        )
    return records


def corrupt(record, rng):
    """A re-keyed version of the record, as a sloppy operator would type it."""
    out = dict(record)
    out["name"] = apply_modifications(record["name"], rng.randint(1, 2), rng)
    if rng.random() < 0.4:
        out["city"] = apply_modifications(record["city"], 1, rng)
    if rng.random() < 0.3:
        out["street"] = ""  # field sometimes left blank
    return out


def main() -> None:
    rng = random.Random(12)
    records = build_customer_file(rng)
    matcher = FieldedMatcher(records, WEIGHTS)
    print(
        f"customer file: {len(records)} records; "
        f"weights {matcher.weights}"
    )

    hits = 0
    trials = 40
    for _ in range(trials):
        true_id = rng.randrange(len(records))
        query = corrupt(records[true_id], rng)
        matches = matcher.match(query, THRESHOLD)
        found = matches and matches[0].record_id == true_id
        hits += bool(found)
        if _ < 3:
            print(f"\nincoming: {query}")
            if not matches:
                print("   no link above threshold")
            for m in matches[:2]:
                fields = ", ".join(
                    f"{f}={s:.2f}" for f, s in m.per_field.items()
                )
                marker = "<- true" if m.record_id == true_id else ""
                print(
                    f"   {m.score:.3f} record {m.record_id} "
                    f"({fields}) {marker}"
                )

    print(
        f"\nlinked {hits}/{trials} corrupted records back to their source "
        f"at tau={THRESHOLD}"
    )


if __name__ == "__main__":
    main()
