#!/usr/bin/env python3
"""An end-to-end ingestion pipeline: stream, dedupe, persist, reload.

Production shape for the library: records arrive over time, duplicates
must be caught at ingest, the index periodically re-snapshots its
statistics (epochs), and the result is persisted for the next process.

Run:  python examples/incremental_pipeline.py
"""

import random
import tempfile
from pathlib import Path

from repro import (
    SetSimilaritySearcher,
    StringMatcher,
    UpdatableSearcher,
    load_searcher,
    save_searcher,
    similarity_clusters,
)
from repro.core.tokenize import QGramTokenizer
from repro.data.errors import apply_modifications
from repro.data.synthetic import generate_records

INGEST_THRESHOLD = 0.75


def incoming_stream(rng):
    """Simulated feed: mostly fresh records, some dirty re-submissions."""
    clean = generate_records(200, vocabulary_size=600,
                             words_per_record=(2, 3), seed=17)
    seen = []
    for record in clean:
        # Occasionally re-submit an earlier record with typos.
        if seen and rng.random() < 0.3:
            victim = rng.choice(seen)
            words = [
                apply_modifications(w, 1, rng) if rng.random() < 0.5 else w
                for w in victim.split()
            ]
            yield " ".join(words), True
        yield record, False
        seen.append(record)


def main() -> None:
    rng = random.Random(4)
    tokenizer = QGramTokenizer(q=3)
    searcher = UpdatableSearcher(auto_rebuild_fraction=0.3)

    accepted, flagged, epochs_seen = 0, 0, set()
    for text, is_resubmission in incoming_stream(rng):
        tokens = tokenizer.tokens(text)
        duplicates = (
            searcher.search(tokens, INGEST_THRESHOLD).results
            if len(searcher) else []
        )
        if duplicates:
            flagged += 1
            if flagged <= 3:
                best = duplicates[0]
                print(
                    f"flagged {text!r}\n    ~ {best.score:.3f} against "
                    f"{searcher.payload(best.set_id)!r}"
                )
        else:
            searcher.add(tokens, payload=text)
            accepted += 1
        epochs_seen.add(searcher.epoch)

    print(
        f"\ningested stream: {accepted} accepted, {flagged} flagged as "
        f"near-duplicates, {len(epochs_seen)} statistic epochs"
    )

    # Residual dedupe sweep over what was accepted (catches chains that
    # individual ingest checks can miss), then persist.
    final = StringMatcher(
        [searcher.payload(i) for i in range(len(searcher))],
        tokenizer=tokenizer,
    )
    clusters = similarity_clusters(final.searcher, 0.7)
    print(f"residual duplicate groups at tau=0.7: {len(clusters)}")

    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "index"
        manifest = save_searcher(final.searcher, target)
        print(
            f"persisted {manifest['num_sets']} records, "
            f"{manifest['num_postings']} postings -> {target.name}/"
        )
        reloaded = load_searcher(target)
        probe = final.collection.payload(0)
        hits = reloaded.search(tokenizer.tokens(probe), 0.99)
        print(
            f"reloaded and probed {probe!r}: "
            f"{len(hits)} exact match(es) — round trip verified"
        )


if __name__ == "__main__":
    main()
