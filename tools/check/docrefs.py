"""Docstring/paper-reference lint for public algorithm classes.

This repository reproduces a specific paper; an algorithm class whose
docstring does not say *which* construct it implements (section,
algorithm number, lemma, theorem, figure or equation) is unreviewable
against the source.  Every registered algorithm class (decorated with
``@register_algorithm``) must carry a class docstring citing the paper,
e.g. ``(Section VI, Algorithm 3)`` or ``(Fagin et al.)`` for imported
baselines.
"""

from __future__ import annotations

import ast
import re
from typing import List, Sequence

from .base import ModuleInfo, Violation

CHECK_NAME = "paper-reference"

REGISTER_DECORATOR = "register_algorithm"

# A citation is a paper construct keyword followed by a number/numeral,
# or a named external source (Fagin's TA/NRA).
CITATION = re.compile(
    r"(Section|§|Algorithm|Theorem|Lemma|Figure|Fig\.|Equation|Eq\.)"
    r"\s*[IVXLC0-9]",
    re.IGNORECASE,
)
EXTERNAL = re.compile(r"Fagin|Chaudhuri", re.IGNORECASE)


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def run(modules: Sequence[ModuleInfo]) -> List[Violation]:
    violations: List[Violation] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                _decorator_name(d) == REGISTER_DECORATOR
                for d in node.decorator_list
            ):
                continue
            docstring = ast.get_docstring(node) or ""
            if not docstring.strip():
                violations.append(
                    Violation(
                        str(module.path), node.lineno, CHECK_NAME,
                        f"registered algorithm {node.name} has no class "
                        "docstring; cite the paper section/lemma it "
                        "implements",
                    )
                )
                continue
            if not (CITATION.search(docstring) or EXTERNAL.search(docstring)):
                violations.append(
                    Violation(
                        str(module.path), node.lineno, CHECK_NAME,
                        f"registered algorithm {node.name}'s docstring "
                        "cites no paper construct; add e.g. '(Section VI, "
                        "Algorithm 3)' so the implementation stays "
                        "reviewable against the source",
                    )
                )
    return violations
