"""Algorithm-contract pass: every selection algorithm honours the base
class protocol.

The benchmark harness, the CLI and the facade all dispatch through the
``repro.algorithms.base`` registry; an algorithm that forgets to
register, skips the ``_run`` hook, or overrides the shared pruning
plumbing silently disappears from benchmarks or bypasses the uniform
threshold/length-floor semantics.  For every class in the
``algorithms`` package that (transitively, syntactically) subclasses
``SelectionAlgorithm`` this pass requires:

1. **registration** — decorated with ``@register_algorithm`` (or passed
   to ``register_algorithm(...)`` at module level);
2. **a ``name``** — a string class attribute distinct from the base's
   ``"abstract"`` sentinel;
3. **the ``_run`` hook** — implemented by the class or an intermediate
   base, never the abstract default;
4. **no shadowing** — the base pruning template methods ``search`` and
   ``_bounds`` must not be overridden (implement ``_run`` instead), so
   the timing, effective-threshold, length-floor and invariant-checking
   behaviour stays uniform across algorithms.

Intermediate abstract bases may opt out of 1–3 with the pragma
``# repro-check: abstract-algorithm`` on the class definition line.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from .base import ModuleInfo, Violation

CHECK_NAME = "algorithm-contract"
PRAGMA_NAME = "abstract-algorithm"

BASE_CLASS = "SelectionAlgorithm"
REGISTER_DECORATOR = "register_algorithm"
PROTECTED_METHODS = ("search", "_bounds")
ALGORITHMS_SEGMENT = "algorithms"


class _ClassRecord:
    __slots__ = ("module", "node", "bases", "methods", "name_attr",
                 "registered")

    def __init__(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.bases = [_base_name(b) for b in node.bases]
        self.methods: Set[str] = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.name_attr = _class_name_attr(node)
        self.registered = any(
            _decorator_name(d) == REGISTER_DECORATOR
            for d in node.decorator_list
        )


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    return _base_name(node)


def _class_name_attr(node: ast.ClassDef) -> Optional[str]:
    """The literal value of a ``name = "..."`` class attribute, if any."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "name":
                    if isinstance(stmt.value, ast.Constant) and isinstance(
                        stmt.value.value, str
                    ):
                        return stmt.value.value
                    return ""
    return None


def _module_level_registrations(module: ModuleInfo) -> Set[str]:
    """Classes registered via ``register_algorithm(Cls)`` call form."""
    registered: Set[str] = set()
    for node in module.tree.body:
        value = node.value if isinstance(node, (ast.Expr, ast.Assign)) else None
        if (
            isinstance(value, ast.Call)
            and _decorator_name(value) == REGISTER_DECORATOR
            and value.args
            and isinstance(value.args[0], ast.Name)
        ):
            registered.add(value.args[0].id)
    return registered


def _in_algorithms_package(module: ModuleInfo) -> bool:
    parts = module.name.split(".")
    return ALGORITHMS_SEGMENT in parts[:-1] or (
        module.path.name == "__init__.py" and parts and parts[-1] == ALGORITHMS_SEGMENT
    )


def run(modules: Sequence[ModuleInfo]) -> List[Violation]:
    scoped = [m for m in modules if _in_algorithms_package(m)]
    records: Dict[str, _ClassRecord] = {}
    call_registered: Set[str] = set()
    for module in scoped:
        call_registered |= _module_level_registrations(module)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                records[node.name] = _ClassRecord(module, node)

    def subclasses_base(name: str, trail: Set[str]) -> bool:
        if name == BASE_CLASS:
            return True
        record = records.get(name)
        if record is None or name in trail:
            return False
        trail.add(name)
        return any(subclasses_base(b, trail) for b in record.bases)

    def inherits_run(record: _ClassRecord, trail: Set[str]) -> bool:
        if "_run" in record.methods:
            return True
        for base in record.bases:
            if base == BASE_CLASS or base in trail:
                continue
            trail.add(base)
            parent = records.get(base)
            if parent is not None and inherits_run(parent, trail):
                return True
        return False

    violations: List[Violation] = []
    for class_name, record in records.items():
        if class_name == BASE_CLASS:
            continue
        if not any(subclasses_base(b, {class_name}) for b in record.bases):
            continue
        if record.module.line_has_pragma(record.node.lineno, PRAGMA_NAME):
            continue
        path = str(record.module.path)
        line = record.node.lineno

        registered = record.registered or class_name in call_registered
        if not registered:
            violations.append(
                Violation(
                    path, line, CHECK_NAME,
                    f"{class_name} subclasses {BASE_CLASS} but is not "
                    "registered; decorate it with @register_algorithm so "
                    "the factory, CLI and benchmarks can reach it",
                )
            )
        if record.name_attr is None:
            violations.append(
                Violation(
                    path, line, CHECK_NAME,
                    f"{class_name} does not declare a `name` class "
                    "attribute; the registry keys algorithms by name",
                )
            )
        elif record.name_attr == "abstract":
            violations.append(
                Violation(
                    path, line, CHECK_NAME,
                    f"{class_name} keeps the base sentinel name "
                    "'abstract'; give it a real registry name",
                )
            )
        if not inherits_run(record, {class_name}):
            violations.append(
                Violation(
                    path, line, CHECK_NAME,
                    f"{class_name} never implements `_run`; the base "
                    "`search` template would raise NotImplementedError",
                )
            )
        for method in PROTECTED_METHODS:
            if method in record.methods:
                violations.append(
                    Violation(
                        path, line, CHECK_NAME,
                        f"{class_name} overrides the shared pruning "
                        f"template `{method}`; implement `_run` instead "
                        "so threshold/length-floor/invariant handling "
                        "stays uniform",
                    )
                )
    return violations
