"""Custom static-analysis suite for the repro codebase.

Five AST passes over the source tree:

* ``layering`` — import-layer DAG with a ratcheting baseline;
* ``float-equality`` — no ``==``/``!=`` on similarity scores;
* ``algorithm-contract`` — registry/interface contract for selection
  algorithms;
* ``paper-reference`` — registered algorithms cite the paper construct
  they implement;
* ``time-source`` — no wall-clock ``time.time()`` in timing code
  (latencies and spans must use monotonic clocks);

plus one execution pass:

* ``doc-snippets`` — every fenced Python block in ``README.md`` and
  ``docs/*.md`` must run cleanly (``no-run`` in the fence info string
  opts a block out).

Run via ``python -m tools.check`` or ``repro check``.
"""

from . import (  # noqa: F401
    algocontract,
    docrefs,
    docsnippets,
    floatcmp,
    layering,
    timesource,
)
from .base import CheckError, ModuleInfo, Violation, load_modules
from .cli import main

__all__ = [
    "CheckError",
    "ModuleInfo",
    "Violation",
    "load_modules",
    "main",
    "run_checks",
]


def run_checks(paths, baseline_path=None):
    """Programmatic entry point: run every pass over ``paths``.

    Returns a sorted list of :class:`Violation`.  ``baseline_path``
    overrides the committed layering baseline (pass a path to an empty
    or missing file to see *all* layering edges).
    """
    from pathlib import Path

    from .baseline import read_baseline
    from .cli import DEFAULT_BASELINE

    modules = load_modules([Path(p) for p in paths])
    resolved = Path(baseline_path) if baseline_path else DEFAULT_BASELINE
    violations = layering.run(
        modules,
        baseline=read_baseline(resolved),
        baseline_path=str(resolved),
    )
    violations.extend(floatcmp.run(modules))
    violations.extend(algocontract.run(modules))
    violations.extend(docrefs.run(modules))
    violations.extend(timesource.run(modules))
    violations.sort(key=lambda v: v.sort_key)
    return violations
