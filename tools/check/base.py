"""Shared infrastructure for the custom AST lint passes.

Every pass receives the same parsed view of the tree under analysis —
a list of :class:`ModuleInfo` — and returns :class:`Violation` records.
Module discovery walks a directory, parses each ``*.py`` file once, and
derives dotted module names from the package structure (the nearest
ancestor directory without an ``__init__.py`` is the import root), so
the passes work identically on ``src/repro`` and on the miniature
package trees under ``tests/fixtures/check/``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

PRAGMA = "repro-check:"


class Violation:
    """One finding: where, which pass, and what is wrong."""

    __slots__ = ("path", "line", "check", "message")

    def __init__(self, path: str, line: int, check: str, message: str) -> None:
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    @property
    def sort_key(self):
        return (self.path, self.line, self.check, self.message)

    def __repr__(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


class ModuleInfo:
    """One parsed source file plus its resolved dotted module name."""

    __slots__ = ("path", "name", "tree", "lines")

    def __init__(
        self, path: Path, name: str, tree: ast.AST, lines: List[str]
    ) -> None:
        self.path = path
        self.name = name
        self.tree = tree
        self.lines = lines

    @property
    def package_parts(self) -> List[str]:
        """Dotted-name parts of the *package* containing this module."""
        parts = self.name.split(".")
        if self.path.name == "__init__.py":
            return parts
        return parts[:-1]

    def line_has_pragma(self, line: int, pragma: str) -> bool:
        """Whether ``# repro-check: <pragma>`` appears on the given line
        or the line directly above it (for wrapped statements)."""
        for candidate in (line, line - 1):
            if 1 <= candidate <= len(self.lines):
                text = self.lines[candidate - 1]
                if PRAGMA in text and pragma in text.split(PRAGMA, 1)[1]:
                    return True
        return False

    def __repr__(self) -> str:
        return f"ModuleInfo({self.name}, {self.path})"


class CheckError(Exception):
    """The analyzer itself could not run (bad path, unparseable file)."""


def find_package_root(path: Path) -> Path:
    """The directory that dotted module names are relative to.

    Walks upward from ``path`` while the directory holds an
    ``__init__.py``; the first ancestor *without* one is the import
    root (the directory you would put on ``sys.path``).
    """
    current = path if path.is_dir() else path.parent
    while (current / "__init__.py").exists() and current.parent != current:
        current = current.parent
    return current


def module_name_for(path: Path, root: Path) -> str:
    relative = path.relative_to(root).with_suffix("")
    parts = list(relative.parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def iter_source_files(target: Path) -> Iterator[Path]:
    if target.is_file():
        yield target
        return
    for path in sorted(target.rglob("*.py")):
        yield path


def load_modules(targets: Sequence[Path]) -> List[ModuleInfo]:
    """Parse every python file under the targets into ModuleInfo records."""
    modules: List[ModuleInfo] = []
    for target in targets:
        if not target.exists():
            raise CheckError(f"no such path: {target}")
        root = find_package_root(target)
        for path in iter_source_files(target):
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                raise CheckError(f"cannot parse {path}: {exc}") from exc
            modules.append(
                ModuleInfo(
                    path=path,
                    name=module_name_for(path, root),
                    tree=tree,
                    lines=source.splitlines(),
                )
            )
    return modules


def is_type_checking_test(test: ast.expr) -> bool:
    """Whether an ``if`` test is the ``TYPE_CHECKING`` guard."""
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return (
        isinstance(test, ast.Attribute)
        and test.attr == "TYPE_CHECKING"
        and isinstance(test.value, ast.Name)
        and test.value.id == "typing"
    )


class ModuleLevelImportVisitor(ast.NodeVisitor):
    """Collects import statements that bind at module import time.

    Imports inside function bodies are deliberately ignored — late
    imports are the sanctioned escape hatch for breaking layering
    cycles — as are imports under ``if TYPE_CHECKING:`` (annotation-only
    dependencies never execute).
    """

    def __init__(self) -> None:
        self.imports: List[ast.stmt] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # function bodies: late imports are allowed

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def visit_If(self, node: ast.If) -> None:
        if is_type_checking_test(node.test):
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        self.imports.append(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.append(node)


def module_level_imports(tree: ast.AST) -> List[ast.stmt]:
    visitor = ModuleLevelImportVisitor()
    visitor.visit(tree)
    return visitor.imports


def resolve_import_targets(
    module: ModuleInfo, node: ast.stmt
) -> List[Optional[str]]:
    """Absolute dotted targets of one import statement.

    Returns one entry per imported name; relative imports are resolved
    against the module's package.  ``None`` marks a relative import that
    escapes above the scanned tree (cannot happen for well-formed
    packages).
    """
    targets: List[Optional[str]] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            targets.append(alias.name)
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            targets.append(node.module or "")
        else:
            package = module.package_parts
            hops = node.level - 1
            if hops > len(package):
                targets.append(None)
            else:
                base = package[: len(package) - hops]
                if node.module:
                    base = base + node.module.split(".")
                targets.append(".".join(base))
    return targets
