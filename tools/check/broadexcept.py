"""Broad-except lint: no silent swallowing in storage and service code.

A ``try``/``except Exception`` (or a bare ``except:``) around storage
or service code is exactly how corruption spreads: an injected
:class:`~repro.faults.errors.TornWriteError`, a checksum failure, or a
contract violation gets eaten, the caller proceeds on damaged state,
and the failure surfaces far from its cause — or never.  The
robustness layer (PR 5) depends on these exceptions propagating to the
retry/breaker/recovery machinery that knows what to do with them.

This pass flags ``except Exception`` / ``except BaseException`` / bare
``except`` handlers in ``repro.storage.*`` and ``repro.service.*``
(both as tuple elements too).  Genuinely-deliberate catch-alls — the
HTTP front end's last-resort JSON-500 mapper, a breaker recording any
failure before re-raising — carry an explicit
``# repro-check: allow-broad-except`` pragma, making every broad
handler in the failure-critical layers a reviewed decision.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence

from .base import ModuleInfo, Violation

CHECK_NAME = "broad-except"
PRAGMA_NAME = "allow-broad-except"

#: Second dotted segment of the module names this pass patrols
#: (``repro.storage.pages`` → ``storage``).  Other layers may have
#: legitimate report-and-continue handlers; the failure-critical
#: layers must not.
_PATROLLED_SEGMENTS = frozenset({"storage", "service"})

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _patrolled(module: ModuleInfo) -> bool:
    parts = module.name.split(".")
    return len(parts) >= 2 and parts[1] in _PATROLLED_SEGMENTS


def _broad_name(expr: Optional[ast.expr]) -> Optional[str]:
    """The broad exception name an ``except`` clause catches, if any."""
    if expr is None:
        return "(bare except)"
    if isinstance(expr, ast.Name) and expr.id in _BROAD_NAMES:
        return expr.id
    if isinstance(expr, ast.Tuple):
        for element in expr.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


def run(modules: Sequence[ModuleInfo]) -> List[Violation]:
    violations: List[Violation] = []
    for module in modules:
        if not _patrolled(module):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            name = _broad_name(node.type)
            if name is None:
                continue
            if module.line_has_pragma(node.lineno, PRAGMA_NAME):
                continue
            violations.append(
                Violation(
                    str(module.path),
                    node.lineno,
                    CHECK_NAME,
                    f"broad handler 'except {name}' in a failure-critical "
                    "layer; catch the specific exception so injected and "
                    "real I/O failures reach the retry/recovery machinery, "
                    "or mark a deliberate last-resort handler with "
                    "'# repro-check: allow-broad-except'",
                )
            )
    return violations
