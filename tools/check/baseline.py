"""Reading and writing the layering-violation baseline file.

Format: one ``importer.module -> imported.package`` key per line,
sorted; ``#`` starts a comment.  The file is a *ratchet* — entries may
only ever be removed (by fixing the violation they grandfather in).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Set

HEADER = """\
# Layering-violation baseline (ratchet file) — see docs/static_analysis.md.
#
# Each line grandfathers one existing module-level import that violates
# the declared layer DAG.  New violations are NOT tolerated; fixing a
# violation requires deleting its line here (stale entries fail the
# check).  Never add lines without a design discussion.
"""


def read_baseline(path: Path) -> Set[str]:
    if not path.exists():
        return set()
    entries: Set[str] = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def write_baseline(path: Path, entries: List[str]) -> None:
    body = "\n".join(sorted(set(entries)))
    path.write_text(HEADER + body + ("\n" if body else ""), encoding="utf-8")
