"""Import-layering pass: enforce the declared module DAG.

The package layers, from foundation to application::

    obs, faults              # telemetry · seeded fault injection
      └─ core                # measure, properties, collections, errors
          └─ contracts       # runtime invariant checks (core only)
              └─ data, storage   # corpora / physical index structures
                  └─ algorithms  # the selection algorithms
                      └─ service # concurrent serving: caches, batches
                          └─ relational
                              └─ eval
                                  └─ cli, __main__, package root

``obs`` and ``faults`` are the universal bottom layer: anything may
import them, they import nothing from the package at module level
(registry, tracer, and fault plans are pure stdlib), so
instrumentation and fault points can never create an import cycle.

A module may import its own layer or any *strictly lower* layer at
module level.  Upward (or sideways, e.g. ``data ↔ storage``) imports
are violations.  Two escape hatches are sanctioned and ignored by this
pass:

* **late imports** — an import inside a function body defers binding to
  call time, breaking the cycle physically (this is how ``core.join``
  and ``core.search`` dispatch into the algorithms registry);
* **``if TYPE_CHECKING:`` imports** — annotation-only dependencies that
  never execute.

Existing violations live in ``layering_baseline.txt`` and only ratchet
*down*: a baselined violation is tolerated, a new one fails the build,
and a baseline entry whose violation has been fixed must be deleted
(stale entries fail too).  Regenerate with ``--write-baseline`` only
when intentionally re-baselining.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .base import ModuleInfo, Violation, module_level_imports, resolve_import_targets

CHECK_NAME = "layering"

# Layer ranks; a module may import packages of strictly lower rank (or
# its own package).  Top-level *modules* of the root package (cli,
# contracts, __main__) are layers of their own.
LAYERS: Dict[str, int] = {
    "obs": 0,
    "faults": 0,
    "core": 1,
    "contracts": 2,
    "data": 3,
    "storage": 3,
    "algorithms": 4,
    "service": 5,
    "relational": 6,
    "eval": 7,
    "cli": 8,
    "__main__": 9,
    "": 9,  # the package root (__init__) re-exports everything
}


def segment_of(module_name: str, root: str) -> Optional[str]:
    """The layer segment of a dotted module name, or None if the module
    is outside the root package."""
    if module_name == root:
        return ""
    prefix = root + "."
    if not module_name.startswith(prefix):
        return None
    return module_name[len(prefix):].split(".", 1)[0]


def detect_root_packages(modules: Sequence[ModuleInfo]) -> List[str]:
    """Top-level packages that contain at least one declared layer.

    The scan may mix trees (``src/repro`` plus ``tools``); the layer DAG
    only applies to roots that actually use the layered package names,
    so helper trees like ``tools`` are ignored rather than flagged as
    having undeclared layers.
    """
    layered: Set[str] = set()
    for module in modules:
        parts = module.name.split(".")
        if len(parts) >= 2 and parts[1] in LAYERS:
            layered.add(parts[0])
    return sorted(layered)


def layering_edges(
    modules: Sequence[ModuleInfo], root: str
) -> List[Tuple[ModuleInfo, int, str, str]]:
    """All module-level import edges internal to the root package.

    Yields ``(module, lineno, source_segment, target_segment)``.
    """
    edges: List[Tuple[ModuleInfo, int, str, str]] = []
    for module in modules:
        source_segment = segment_of(module.name, root)
        if source_segment is None:
            continue
        for node in module_level_imports(module.tree):
            for target in resolve_import_targets(module, node):
                if target is None:
                    continue
                target_segment = segment_of(target, root)
                if target_segment is None or target_segment == "":
                    # Outside the package, or the bare root package
                    # (``from . import __version__``): not layered edges.
                    continue
                edges.append(
                    (module, node.lineno, source_segment, target_segment)
                )
    return edges


def edge_key(module_name: str, root: str, target_segment: str) -> str:
    """Baseline identity of a violating edge: importer module -> package."""
    return f"{module_name} -> {root}.{target_segment}"


def run(
    modules: Sequence[ModuleInfo],
    baseline: Optional[Set[str]] = None,
    baseline_path: str = "tools/check/layering_baseline.txt",
) -> List[Violation]:
    """Check every module-level internal import against the layer DAG."""
    violations: List[Violation] = []
    baseline = baseline or set()
    seen_keys: Set[str] = set()

    for root in detect_root_packages(modules):
        violations.extend(
            _check_root(modules, root, baseline, seen_keys)
        )

    # Ratchet: baselined edges that no longer exist must leave the file.
    # Only judged for modules actually scanned, so a partial scan (one
    # fixture directory, one file) does not misread the whole baseline
    # as stale.
    scanned = {m.name for m in modules}
    stale_entries = sorted(
        entry for entry in baseline - seen_keys
        if entry.split(" -> ")[0] in scanned
    )
    for stale in stale_entries:
        violations.append(
            Violation(
                baseline_path,
                1,
                CHECK_NAME,
                f"stale baseline entry {stale!r}: the violation was fixed "
                "— delete the line so it cannot regress",
            )
        )
    return violations


def _check_root(
    modules: Sequence[ModuleInfo],
    root: str,
    baseline: Set[str],
    seen_keys: Set[str],
) -> List[Violation]:
    violations: List[Violation] = []
    for module, lineno, source_segment, target_segment in layering_edges(
        modules, root
    ):
        if source_segment == target_segment:
            continue
        source_rank = LAYERS.get(source_segment)
        target_rank = LAYERS.get(target_segment)
        if source_rank is None:
            violations.append(
                Violation(
                    str(module.path),
                    1,
                    CHECK_NAME,
                    f"package {source_segment!r} has no declared layer; "
                    "add it to tools/check/layering.py LAYERS",
                )
            )
            continue
        if target_rank is None:
            violations.append(
                Violation(
                    str(module.path),
                    lineno,
                    CHECK_NAME,
                    f"import target package {target_segment!r} has no "
                    "declared layer; add it to tools/check/layering.py",
                )
            )
            continue
        if target_rank < source_rank:
            continue  # downward import: allowed
        key = edge_key(module.name, root, target_segment)
        seen_keys.add(key)
        if key in baseline:
            continue
        direction = "upward" if target_rank > source_rank else "sideways"
        violations.append(
            Violation(
                str(module.path),
                lineno,
                CHECK_NAME,
                f"{direction} import: {module.name} (layer "
                f"{source_segment!r}, rank {source_rank}) must not import "
                f"{root}.{target_segment} (rank {target_rank}) at module "
                "level; use a late import or move the shared code down",
            )
        )
    return violations


def generate_baseline(modules: Sequence[ModuleInfo]) -> List[str]:
    """The sorted baseline keys for every current layering violation."""
    keys: Set[str] = set()
    for root in detect_root_packages(modules):
        for module, _lineno, source_segment, target_segment in layering_edges(
            modules, root
        ):
            if source_segment == target_segment:
                continue
            source_rank = LAYERS.get(source_segment)
            target_rank = LAYERS.get(target_segment)
            if source_rank is None or target_rank is None:
                continue
            if target_rank >= source_rank:
                keys.add(edge_key(module.name, root, target_segment))
    return sorted(keys)


# Referenced by docs and the self-test: these edges were burnt down when
# the pass was introduced and must never come back.
BURNED_DOWN = (
    "repro.core.join -> repro.algorithms",
    "repro.core.search -> repro.algorithms",
    "repro.core.validation -> repro.storage",
)
