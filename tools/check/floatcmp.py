"""Float-equality lint: no ``==``/``!=`` on similarity scores.

Similarity scores are floating-point sums whose association order
differs between engines; comparing them with ``==`` or ``!=`` is how
threshold boundaries silently desynchronize (the whole reason
``repro.core.properties.SCORE_EPSILON`` exists).  This pass flags
equality comparisons where either operand *names* a score — an
identifier, attribute, or call whose name mentions ``score``,
``similarity``, ``tau`` or ``threshold`` — including inside tuple
operands.

Sanctioned escapes:

* the tolerance helpers in ``repro.core.properties`` (the one approved
  home for raw comparisons);
* an explicit ``# repro-check: allow-float-eq`` pragma on the line, for
  intentional exact comparisons (identity semantics, not numerics).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Sequence

from .base import ModuleInfo, Violation

CHECK_NAME = "float-equality"
PRAGMA_NAME = "allow-float-eq"

# Modules whose raw comparisons are the approved tolerance helpers.
APPROVED_MODULES = frozenset({"repro.core.properties"})

_SCORE_WORDS = frozenset(
    {"score", "scores", "similarity", "similarities", "tau", "threshold",
     "thresholds"}
)
_WORD_SPLIT = re.compile(r"[^a-zA-Z]+|(?<=[a-z])(?=[A-Z])")


def _names_a_score(identifier: str) -> bool:
    words = {w.lower() for w in _WORD_SPLIT.split(identifier) if w}
    return bool(words & _SCORE_WORDS)


def _leaf_nodes(node: ast.expr) -> Iterator[ast.expr]:
    """The operand itself, or its elements when it is a tuple/list."""
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _leaf_nodes(element)
    else:
        yield node


def _scoreish(node: ast.expr) -> bool:
    for leaf in _leaf_nodes(node):
        if isinstance(leaf, ast.Name) and _names_a_score(leaf.id):
            return True
        if isinstance(leaf, ast.Attribute) and _names_a_score(leaf.attr):
            return True
        if isinstance(leaf, ast.Call):
            func = leaf.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if _names_a_score(name):
                return True
    return False


def run(modules: Sequence[ModuleInfo]) -> List[Violation]:
    violations: List[Violation] = []
    for module in modules:
        if module.name in APPROVED_MODULES:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if not (_scoreish(left) or _scoreish(right)):
                    continue
                if module.line_has_pragma(node.lineno, PRAGMA_NAME):
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                violations.append(
                    Violation(
                        str(module.path),
                        node.lineno,
                        CHECK_NAME,
                        f"similarity scores compared with {symbol!r}; use "
                        "the tolerance helpers in repro.core.properties "
                        "(effective_threshold / SCORE_EPSILON), "
                        "math.isclose, or mark an intentional identity "
                        "comparison with '# repro-check: allow-float-eq'",
                    )
                )
    return violations
