"""Command-line driver for the static-analysis suite.

Usage::

    python -m tools.check [paths ...] [options]
    repro check [paths ...] [options]       # same thing via the CLI

With no paths the repository's ``src/repro`` tree is checked against
the committed layering baseline.  Exit code 0 means clean, 1 means
violations, 2 means the analyzer could not run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, List, Optional

from . import (
    algocontract,
    broadexcept,
    docrefs,
    docsnippets,
    floatcmp,
    layering,
    timesource,
)
from .base import CheckError, load_modules
from .baseline import read_baseline, write_baseline

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_TARGET = REPO_ROOT / "src" / "repro"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "layering_baseline.txt"

PASSES = {
    layering.CHECK_NAME: None,  # handled specially (baseline)
    floatcmp.CHECK_NAME: floatcmp.run,
    algocontract.CHECK_NAME: algocontract.run,
    docrefs.CHECK_NAME: docrefs.run,
    timesource.CHECK_NAME: timesource.run,
    broadexcept.CHECK_NAME: broadexcept.run,
    docsnippets.CHECK_NAME: None,  # handled specially (runs md snippets)
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.check",
        description=(
            "Custom AST lint suite: import layering, float-equality on "
            "scores, algorithm registry contract, paper citations, "
            "wall-clock time sources — plus a doc-snippets pass that "
            "executes the documentation's fenced Python examples."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or package directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="layering baseline file (default: %(default)s)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the layering baseline from the current tree "
        "instead of checking (use only when intentionally re-baselining)",
    )
    parser.add_argument(
        "--select", default="",
        help="comma-separated pass names to run "
        f"(default: all of {', '.join(PASSES)})",
    )
    parser.add_argument(
        "--list-passes", action="store_true", help="list passes and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None, out: IO[str] = sys.stdout) -> int:
    args = build_parser().parse_args(argv)

    if args.list_passes:
        for name in PASSES:
            print(name, file=out)
        return 0

    selected = [s.strip() for s in args.select.split(",") if s.strip()]
    for name in selected:
        if name not in PASSES:
            print(
                f"error: unknown pass {name!r} "
                f"(available: {', '.join(PASSES)})",
                file=sys.stderr,
            )
            return 2
    active = selected or list(PASSES)

    targets = [Path(p) for p in args.paths] or [DEFAULT_TARGET]
    try:
        modules = load_modules(targets)
    except CheckError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        entries = layering.generate_baseline(modules)
        write_baseline(baseline_path, entries)
        print(
            f"wrote {len(entries)} baseline entries -> {baseline_path}",
            file=out,
        )
        return 0

    violations = []
    if layering.CHECK_NAME in active:
        violations.extend(
            layering.run(
                modules,
                baseline=read_baseline(baseline_path),
                baseline_path=str(baseline_path),
            )
        )
    for name in active:
        runner = PASSES[name]
        if runner is not None:
            violations.extend(runner(modules))

    # The doc-snippets pass executes code (not AST analysis), so it only
    # runs on a bare full-repo invocation or when explicitly selected —
    # per-path scans of fixtures/subtrees stay fast.
    run_docs = docsnippets.CHECK_NAME in selected or (
        not selected and not args.paths
    )
    if run_docs:
        violations.extend(docsnippets.run(REPO_ROOT))

    ran = [
        name for name in active
        if name != docsnippets.CHECK_NAME or run_docs
    ]
    violations.sort(key=lambda v: v.sort_key)
    for violation in violations:
        print(violation, file=out)
    summary = (
        f"{len(violations)} violation(s) across "
        f"{len(modules)} module(s), passes: {', '.join(ran)}"
    )
    print(("FAIL: " if violations else "ok: ") + summary, file=out)
    return 1 if violations else 0
