"""Doc-snippets pass: the documentation's code must actually run.

Markdown documentation rots silently — an API rename breaks every
example that mentions it and nothing fails.  This pass extracts every
fenced ``python`` block from ``README.md`` and ``docs/*.md`` and
executes each one in a fresh subprocess with ``src`` on ``PYTHONPATH``
and the repository root as the working directory.  A snippet that
raises (or times out) is a violation pointing at the fence's line in
the Markdown file.

Opting out: snippets that are intentionally illustrative — interactive
transcripts, fragments, shell-flavoured pseudo-Python — declare it in
the fence info string::

    ```python no-run
    result = service.search(tokens, tau)   # fragment, not executable
    ```

Unlike the AST passes this one *runs* code, so it is not part of the
default per-path scan: it executes on a bare ``python -m tools.check``
(no explicit paths) or when selected with ``--select doc-snippets``.
CI runs it as a dedicated step.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .base import Violation

CHECK_NAME = "doc-snippets"

SNIPPET_TIMEOUT = 120.0
"""Per-snippet wall-clock budget in seconds; a hung snippet is a bug."""

PYTHON_INFO_STRINGS = ("python", "py", "python3")
SKIP_MARKER = "no-run"

Snippet = Tuple[int, str]
"""(1-based line number of the opening fence, snippet source)."""


def markdown_files(repo_root: Path) -> List[Path]:
    """The documentation files whose snippets must execute."""
    files: List[Path] = []
    readme = repo_root / "README.md"
    if readme.is_file():
        files.append(readme)
    docs = repo_root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def extract_snippets(text: str) -> List[Snippet]:
    """Fenced ``python`` blocks of a Markdown document.

    Fences marked ``no-run`` in their info string are skipped, as are
    non-Python fences (``bash``, ``text``, bare ` ``` `).  Nested
    fences are not handled — CommonMark forbids them anyway.
    """
    snippets: List[Snippet] = []
    fence_line = 0
    collecting = False
    runnable = False
    buf: List[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not collecting:
            if stripped.startswith("```"):
                info = stripped[3:].strip().lower().split()
                collecting = True
                runnable = bool(info) and info[0] in PYTHON_INFO_STRINGS \
                    and SKIP_MARKER not in info
                fence_line = lineno
                buf = []
            continue
        if stripped == "```":
            if runnable and buf:
                snippets.append((fence_line, "\n".join(buf) + "\n"))
            collecting = False
            runnable = False
            continue
        buf.append(line)
    return snippets


def run_snippet(
    source: str, repo_root: Path, timeout: float = SNIPPET_TIMEOUT
) -> Optional[str]:
    """Execute one snippet; return an error description or None if ok."""
    env = dict(os.environ)
    src = str(repo_root / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    try:
        proc = subprocess.run(
            [sys.executable, "-"],
            input=source,
            capture_output=True,
            text=True,
            cwd=str(repo_root),
            env=env,
            timeout=timeout,
        )
    except subprocess.TimeoutExpired:
        return f"snippet timed out after {timeout:.0f}s"
    if proc.returncode != 0:
        # The traceback tail names the failing line and exception; the
        # full dump would drown the report.
        tail = [ln for ln in proc.stderr.strip().splitlines() if ln][-3:]
        detail = " | ".join(tail) if tail else f"exit code {proc.returncode}"
        return f"snippet failed: {detail}"
    return None


def run(
    repo_root: Path,
    files: Optional[Sequence[Path]] = None,
    timeout: float = SNIPPET_TIMEOUT,
) -> List[Violation]:
    """Execute every runnable snippet under ``repo_root``'s docs."""
    violations: List[Violation] = []
    for path in files if files is not None else markdown_files(repo_root):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            violations.append(
                Violation(str(path), 1, CHECK_NAME, f"unreadable: {exc}")
            )
            continue
        for fence_line, source in extract_snippets(text):
            error = run_snippet(source, repo_root, timeout=timeout)
            if error is not None:
                violations.append(
                    Violation(str(path), fence_line, CHECK_NAME, error)
                )
    return violations
