"""Time-source lint: no wall-clock ``time.time()`` in measurement code.

Every duration this repository reports — query latencies, span traces,
benchmark tables — must come from a monotonic clock.  ``time.time()``
follows the system clock: NTP slews and manual adjustments move it
backwards, which silently corrupts latency histograms and reorders
trace spans.  ``time.perf_counter()`` (high resolution) and
``time.monotonic()`` are the approved sources; ``time.time_ns()`` is
flagged for the same reason.

This pass flags calls to ``time.time`` / ``time.time_ns`` — whether
through the module (``time.time()``) or a direct binding
(``from time import time``).  Code that genuinely needs the wall-clock
epoch (file timestamps, report datestamps) marks the line with an
explicit ``# repro-check: allow-wall-clock`` pragma, making every
wall-clock read a reviewed decision.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set

from .base import ModuleInfo, Violation

CHECK_NAME = "time-source"
PRAGMA_NAME = "allow-wall-clock"

_WALL_CLOCK_ATTRS = frozenset({"time", "time_ns"})


def _wall_clock_bindings(tree: ast.AST) -> Set[str]:
    """Local names bound to the wall clock via ``from time import ...``."""
    bindings: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_ATTRS:
                    bindings.add(alias.asname or alias.name)
    return bindings


def _flagged_callee(call: ast.Call, bindings: Set[str]) -> Optional[str]:
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _WALL_CLOCK_ATTRS
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    ):
        return f"time.{func.attr}"
    if isinstance(func, ast.Name) and func.id in bindings:
        return func.id
    return None


def run(modules: Sequence[ModuleInfo]) -> List[Violation]:
    violations: List[Violation] = []
    for module in modules:
        bindings = _wall_clock_bindings(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _flagged_callee(node, bindings)
            if callee is None:
                continue
            if module.line_has_pragma(node.lineno, PRAGMA_NAME):
                continue
            violations.append(
                Violation(
                    str(module.path),
                    node.lineno,
                    CHECK_NAME,
                    f"wall-clock read {callee}() in timing code; use "
                    "time.perf_counter() or time.monotonic() (monotonic "
                    "clocks survive NTP slews), or mark a genuine epoch "
                    "timestamp with '# repro-check: allow-wall-clock'",
                )
            )
    return violations
