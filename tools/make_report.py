#!/usr/bin/env python3
"""Regenerate the Markdown reproduction report from benchmark results.

Usage:
    pytest benchmarks/ --benchmark-only    # produce benchmarks/results/
    python tools/make_report.py            # -> REPORT.md at the repo root
    python tools/make_report.py --output somewhere.md
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.eval.report import coverage, write_report  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results",
        default=str(ROOT / "benchmarks" / "results"),
        help="directory of benchmark result tables",
    )
    parser.add_argument(
        "--output",
        default=str(ROOT / "REPORT.md"),
        help="Markdown file to write",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail if any expected result table is missing",
    )
    args = parser.parse_args(argv)

    present = coverage(args.results)
    missing = [name for name, ok in present.items() if not ok]
    if missing:
        print(
            f"warning: {len(missing)} result table(s) missing "
            f"(run `pytest benchmarks/ --benchmark-only`):",
            file=sys.stderr,
        )
        for name in missing:
            print(f"  - {name}", file=sys.stderr)
        if args.strict:
            return 1

    output = write_report(
        args.results,
        args.output,
        title=(
            "Reproduction report — Fast Indexes and Algorithms for "
            "Set Similarity Selection Queries (ICDE 2008)"
        ),
    )
    print(f"wrote {output} ({output.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
