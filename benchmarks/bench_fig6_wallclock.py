"""Figure 6 — processing cost per algorithm.

Three sweeps, as in the paper: (a) threshold tau in {0.6..0.9} on the
default 11-15-gram workload; (b) query-size buckets at tau=0.8; (c)
modifications 0..3 at tau=0.6.

Wall-clock in CPython is reported but *secondary* (the repro calibration
note: pure-Python list merging inverts some constants); the assertions
therefore target the robust claims on the simulated I/O cost model
(sequential page = 1, random page = 10) and element accesses:

* sort-by-id is flat across thresholds while the improved algorithms get
  cheaper as tau grows;
* TA's I/O cost degrades with query size, length-bounded algorithms improve;
* more modifications => fewer answers => at least as much pruning;
* the improved family (iNRA/iTA/SF/Hybrid) beats classic TA/NRA.
"""

from __future__ import annotations

import pytest

from repro.eval.harness import format_table

from conftest import write_result
from sweeps import (
    ALL_ENGINES,
    modification_sweep,
    pivot,
    query_size_sweep,
    threshold_sweep,
)

COLUMNS = [
    "engine", "tau", "bucket", "mods", "avg_results",
    "avg_wall_ms", "avg_io_cost", "avg_elems_read",
]


def test_fig6a_threshold(benchmark, context, num_queries, results_dir):
    summaries = benchmark.pedantic(
        lambda: threshold_sweep(context, ALL_ENGINES, num_queries),
        rounds=1, iterations=1,
    )
    write_result(
        results_dir, "fig6a_wallclock_vs_threshold.txt",
        format_table([s.row() for s in summaries], COLUMNS),
    )
    io = pivot(summaries, "tau", lambda s: s.avg_io_cost)
    elems = pivot(summaries, "tau", lambda s: s.avg_elements_read)
    # sort-by-id: constant cost irrespective of tau.
    flat = elems["sort-by-id"]
    assert max(flat.values()) - min(flat.values()) < 1e-9
    # Improved algorithms get cheaper with larger tau.
    for engine in ("inra", "sf", "hybrid", "ita"):
        series = elems[engine]
        assert series[0.9] <= series[0.6], engine
    # At the paper's tau=0.9 point, SF beats the classic baselines and the
    # full-scan merge decisively.
    assert io["sf"][0.9] < io["ta"][0.9] / 10  # TA's random I/O bill
    assert elems["sf"][0.9] < elems["sort-by-id"][0.9] / 2
    assert elems["sf"][0.9] < elems["nra"][0.9] / 2


def test_fig6b_query_size(benchmark, context, num_queries, results_dir):
    summaries = benchmark.pedantic(
        lambda: query_size_sweep(context, ALL_ENGINES, num_queries),
        rounds=1, iterations=1,
    )
    write_result(
        results_dir, "fig6b_wallclock_vs_query_size.txt",
        format_table([s.row() for s in summaries], COLUMNS),
    )
    def series(engine, value):
        return {
            s.row()["bucket"]: value(s)
            for s in summaries
            if s.engine == engine
        }

    # TA's random-access bill grows steeply with the number of lists (the
    # paper's "performance of TA deteriorates sharply with query size").
    probes = series(
        "ta",
        lambda s: sum(r.stats.hash_probes for r in s.per_query)
        / max(len(s.per_query), 1),
    )
    assert probes["16-20"] > 5 * probes["1-5"]
    # Length-bounded algorithms stay effective at every size: the TA/SF
    # I/O-cost gap widens as queries grow.
    ta_io = series("ta", lambda s: s.avg_io_cost)
    sf_io = series("sf", lambda s: s.avg_io_cost)
    assert ta_io["16-20"] / sf_io["16-20"] > ta_io["1-5"] / sf_io["1-5"]
    # And their pruning power never collapses.
    for engine in ("sf", "inra", "hybrid"):
        pruning = series(engine, lambda s: s.avg_pruning_power)
        assert min(pruning.values()) > 0.4, engine


def test_fig6c_modifications(benchmark, context, num_queries, results_dir):
    summaries = benchmark.pedantic(
        lambda: modification_sweep(context, ALL_ENGINES, num_queries),
        rounds=1, iterations=1,
    )
    write_result(
        results_dir, "fig6c_wallclock_vs_modifications.txt",
        format_table([s.row() for s in summaries], COLUMNS),
    )
    results = pivot(summaries, "mods", lambda s: s.avg_results)
    # More modifications => fewer answers (queries become more selective).
    for engine in ("sf", "sql"):
        series = results[engine]
        assert series[3] <= series[0], engine


@pytest.mark.parametrize("engine", ["sf", "inra", "hybrid", "sql"])
def test_benchmark_engine_wallclock(
    benchmark, context, default_workload, engine
):
    """Per-engine timing anchors at the paper's tau=0.8 default point."""
    queries = list(default_workload)[:10]

    def run():
        for q in queries:
            context.run_query(engine, q, 0.8)

    benchmark(run)
