"""Service layer — batched throughput, cache hits, degradation.

Measures the serving claims of ``docs/service.md`` on the Figure 6
corpus and workload and records them in ``BENCH_service.json``:

* **batched >= 2x sequential** on a served-traffic replay of the
  default workload (``make_traffic``: shuffled repeats — the arrival
  pattern caching and in-batch coalescing exist for), with per-slot
  result sets asserted identical to direct sequential execution;
* **result-cache hit >= 10x faster** than executing the same query;
* the shared-scan strategy reads fewer list elements than per-query
  execution on the same distinct workload (the term-at-a-time effect,
  measured on the I/O model where CPython wall-clock is noisy);
* a deadline turns a slow query into a flagged degraded answer instead
  of a blown budget.

Wall-clock ratios here compare identical Python executing identical
index operations, so they transfer — unlike cross-algorithm wall-clock,
which the other benchmarks treat as secondary to the I/O model.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro import ServiceConfig, SimilarityService
from repro.data.workloads import make_traffic
from repro.eval.harness import format_table

from conftest import write_result

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_service.json"

TAU = 0.8
TRAFFIC_REPEAT = 4


def _tokens_of(context, texts):
    tokenizer = context.tokenizer
    return [tokenizer.tokens(text) for text in texts]


def _sequential(searcher, token_lists, tau):
    started = time.perf_counter()
    results = [
        searcher.search(tokens, tau, algorithm="sf")
        for tokens in token_lists
    ]
    return results, time.perf_counter() - started


def test_service_throughput_and_caching(benchmark, context, default_workload,
                                        results_dir):
    searcher = context.searcher
    traffic = make_traffic(default_workload, repeat=TRAFFIC_REPEAT, seed=13)
    token_lists = _tokens_of(context, traffic)

    direct, sequential_s = _sequential(searcher, token_lists, TAU)

    def batched():
        with SimilarityService(searcher) as service:
            started = time.perf_counter()
            batch = service.search_batch(token_lists, TAU)
            return service, batch, time.perf_counter() - started

    service, batch, batched_s = benchmark.pedantic(
        batched, rounds=1, iterations=1
    )

    # Identical result sets, slot by slot: caching and coalescing must
    # not change a single answer.
    for served, exact in zip(batch, direct):
        assert not served.degraded
        assert [(r.set_id, r.score) for r in served.results] == \
            [(r.set_id, r.score) for r in exact.results]

    served_from_memory = sum(
        1 for r in batch if r.cached or r.coalesced
    )
    speedup = sequential_s / batched_s
    stats = service.stats()

    # Cache-hit latency: the same query answered cold (index execution)
    # vs. warm (result-cache replay), medians over the workload.
    with SimilarityService(searcher) as hot:
        cold_s, warm_s = [], []
        for tokens in _tokens_of(context, default_workload):
            t0 = time.perf_counter()
            first = hot.search(tokens, TAU)
            t1 = time.perf_counter()
            again = hot.search(tokens, TAU)
            t2 = time.perf_counter()
            assert not first.cached and again.cached
            cold_s.append(t1 - t0)
            warm_s.append(t2 - t1)
    cache_speedup = statistics.median(cold_s) / statistics.median(warm_s)

    record = {
        "corpus_records": len(context.collection),
        "workload_queries": len(default_workload),
        "traffic_queries": len(traffic),
        "tau": TAU,
        "sequential_seconds": round(sequential_s, 6),
        "batched_seconds": round(batched_s, 6),
        "batched_speedup": round(speedup, 3),
        "served_from_memory": served_from_memory,
        "coalesced": stats["coalesced"],
        "result_cache": stats["result_cache"],
        "cache_hit_cold_ms": round(statistics.median(cold_s) * 1e3, 4),
        "cache_hit_warm_ms": round(statistics.median(warm_s) * 1e3, 4),
        "cache_hit_speedup": round(cache_speedup, 1),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    rows = [
        {"mode": "sequential", "seconds": f"{sequential_s:.4f}",
         "speedup": "1.00", "from_memory": 0},
        {"mode": "service-batch", "seconds": f"{batched_s:.4f}",
         "speedup": f"{speedup:.2f}", "from_memory": served_from_memory},
    ]
    write_result(
        results_dir, "service_throughput.txt",
        format_table(rows, ["mode", "seconds", "speedup", "from_memory"]),
    )

    # The acceptance bars (see ISSUE/docs): 2x batched, 10x cache hits.
    assert speedup >= 2.0, record
    assert cache_speedup >= 10.0, record


def test_shared_scan_reads_fewer_elements(context, default_workload):
    searcher = context.searcher
    token_lists = _tokens_of(context, default_workload)

    per_query_elems = sum(
        searcher.search(tokens, TAU, algorithm="sf").stats.elements_read
        for tokens in token_lists
    )
    with SimilarityService(searcher) as service:
        shared = service.search_batch(token_lists, TAU, strategy="shared")
        assert all(r.ok for r in shared)
    # The shared scan touches each subscribed list once over the union
    # window; on an overlapping workload that is strictly less element
    # traffic than per-query execution.
    selector = service._backend.batch_selector()
    _results, shared_stats = selector.search_many(
        [searcher.prepare(tokens) for tokens in token_lists], TAU
    )
    shared_elems = shared_stats.elements_read
    assert shared_elems < per_query_elems

    if BENCH_JSON.exists():
        record = json.loads(BENCH_JSON.read_text())
        record["shared_scan_elements"] = shared_elems
        record["per_query_elements"] = per_query_elems
        record["shared_scan_element_ratio"] = round(
            per_query_elems / max(shared_elems, 1), 2
        )
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")


def test_deadline_degrades_instead_of_blocking(context, default_workload):
    searcher = context.searcher
    service = SimilarityService(
        searcher, config=ServiceConfig(algorithm="nra")
    )
    backend = service._backend
    original = backend.execute

    def slow_primary(tokens, prepared, tau, algorithm):
        if algorithm == "nra":
            time.sleep(0.5)
        return original(tokens, prepared, tau, algorithm)

    backend.execute = slow_primary
    tokens = _tokens_of(context, default_workload)[0]
    with service:
        started = time.perf_counter()
        result = service.search(tokens, TAU, deadline=0.05)
        elapsed = time.perf_counter() - started
    assert result.degraded and result.ok
    assert result.degraded_tau > TAU
    assert elapsed < 0.5  # answered before the primary would have

    if BENCH_JSON.exists():
        record = json.loads(BENCH_JSON.read_text())
        record["deadline_response_seconds"] = round(elapsed, 4)
        record["deadline_degraded_tau"] = result.degraded_tau
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
