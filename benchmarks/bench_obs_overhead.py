"""Telemetry overhead — disabled metrics must be (nearly) free.

The observability layer's core promise (``docs/observability.md``): a
process that never opts in pays only one ``registry.enabled`` attribute
test per call site, all of which run per *query*, never per posting.
This benchmark measures that promise on the SF hot path — the fastest
algorithm, hence the one where fixed per-query overhead is the largest
relative cost — and records it in ``BENCH_obs.json``:

* **stripped** — ``SelectionAlgorithm._observe`` monkeypatched to a
  no-op: the pre-telemetry code, no flush logic at all;
* **disabled** — the shipped default: a ``NullRegistry`` installed,
  every call site pays its ``registry.enabled`` test and returns;
* **enabled** — a live ``MetricsRegistry`` collecting everything.

The acceptance bar is **disabled <= 2% over stripped** (min-of-rounds,
modes interleaved to decorrelate machine drift).  Set
``REPRO_BENCH_SMOKE=1`` for CI's gross-regression tripwire: fewer
rounds and a 10% bound, because shared runners cannot resolve 2%.

A second test replays the workload per algorithm with metrics enabled
and checks the *registry itself* reproduces the paper's pruning order
(Figure 7): ``elements_read_total{algo=sf}`` < ``inra`` < ``nra``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.algorithms.base import SelectionAlgorithm, make_algorithm
from repro.eval.harness import format_table
from repro.obs import metrics as obs_metrics

from conftest import write_result

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

TAU = 0.8

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in {
    "1", "true", "yes", "on"
}
ROUNDS = 3 if SMOKE else 9
OVERHEAD_BOUND = 0.10 if SMOKE else 0.02


def _prepared_workload(context, workload):
    return [context.prepare(text) for text in workload]


def _run_workload(algorithm, queries):
    started = time.perf_counter()
    for query in queries:
        algorithm.search(query, TAU)
    return time.perf_counter() - started


def test_disabled_overhead_on_sf_hot_path(context, default_workload,
                                          results_dir):
    queries = _prepared_workload(context, default_workload)
    algorithm = make_algorithm("sf", context.searcher.index)

    observe = SelectionAlgorithm._observe
    stripped_patch = lambda self, result, lists: None  # noqa: E731

    def timed(mode):
        if mode == "stripped":
            SelectionAlgorithm._observe = stripped_patch
            registry = obs_metrics.NULL_REGISTRY
        elif mode == "disabled":
            registry = obs_metrics.NULL_REGISTRY
        else:
            registry = obs_metrics.MetricsRegistry()
        try:
            with obs_metrics.use_registry(registry):
                return _run_workload(algorithm, queries)
        finally:
            SelectionAlgorithm._observe = observe

    modes = ("stripped", "disabled", "enabled")
    best = {mode: float("inf") for mode in modes}
    timed("stripped")  # warm caches (buffer pool, bytecode) off the books
    # Interleave the modes each round so clock drift and background load
    # hit all three equally; min-of-rounds is the least noisy estimator
    # for "same code, how fast can it go".
    for _round in range(ROUNDS):
        for mode in modes:
            best[mode] = min(best[mode], timed(mode))

    disabled_overhead = best["disabled"] / best["stripped"] - 1.0
    enabled_overhead = best["enabled"] / best["stripped"] - 1.0

    record = {
        "corpus_records": len(context.collection),
        "workload_queries": len(default_workload),
        "tau": TAU,
        "rounds": ROUNDS,
        "smoke": SMOKE,
        "stripped_seconds": round(best["stripped"], 6),
        "disabled_seconds": round(best["disabled"], 6),
        "enabled_seconds": round(best["enabled"], 6),
        "disabled_overhead_pct": round(disabled_overhead * 100.0, 3),
        "enabled_overhead_pct": round(enabled_overhead * 100.0, 3),
        "overhead_bound_pct": OVERHEAD_BOUND * 100.0,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    rows = [
        {"mode": mode, "seconds": f"{best[mode]:.4f}",
         "vs_stripped": f"{best[mode] / best['stripped']:.4f}"}
        for mode in modes
    ]
    write_result(
        results_dir, "obs_overhead.txt",
        format_table(rows, ["mode", "seconds", "vs_stripped"]),
    )

    assert disabled_overhead <= OVERHEAD_BOUND, record


def test_registry_reproduces_pruning_order(context, default_workload,
                                           results_dir):
    queries = _prepared_workload(context, default_workload)
    algorithms = ("sf", "inra", "nra")

    with obs_metrics.use_registry(obs_metrics.MetricsRegistry()) as registry:
        for name in algorithms:
            algorithm = make_algorithm(name, context.searcher.index)
            for query in queries:
                algorithm.search(query, TAU)
        elements = registry.get("elements_read_total")
        pruned = registry.get("lists_pruned_total")
        read = {
            name: int(elements.labels(algo=name).value)
            for name in algorithms
        }
        abandoned = {
            name: int(pruned.labels(algo=name).value)
            for name in algorithms
        }

    # The registry must tell the same story as Figure 7: SF's improved
    # list pruning reads the least, iNRA sits between, classic NRA reads
    # the most.  This is the telemetry counterpart of the harness-level
    # ordering tests — the counters, not the ledgers, carry the claim.
    assert read["sf"] < read["inra"] < read["nra"], read

    rows = [
        {"algorithm": name, "elements_read": read[name],
         "lists_pruned": abandoned[name]}
        for name in algorithms
    ]
    write_result(
        results_dir, "obs_pruning_order.txt",
        format_table(rows, ["algorithm", "elements_read", "lists_pruned"]),
    )

    if BENCH_JSON.exists():
        record = json.loads(BENCH_JSON.read_text())
        record["elements_read_by_algo"] = read
        record["lists_pruned_by_algo"] = abandoned
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
