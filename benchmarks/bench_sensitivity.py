"""Sensitivity study — are the headline orderings robust to corpus shape?

The reproduction's synthetic corpus fixes a Zipf exponent and a word-length
profile; a fair question is whether the paper-shape conclusions depend on
those choices.  This benchmark regenerates the corpus across Zipf exponents
and word-length skews and asserts the headline orderings hold in every
cell:

* iNRA <= NRA and Hybrid <= iNRA in elements read;
* SF beats sort-by-id by a wide margin;
* TA's weighted I/O dwarfs SF's.
"""

from __future__ import annotations


from repro.core.collection import SetCollection
from repro.core.tokenize import QGramTokenizer
from repro.data.synthetic import (
    distinct_words,
    generate_records,
)
from repro.data.workloads import make_workload
from repro.eval.harness import ExperimentContext, format_table

from conftest import write_result

ZIPF_EXPONENTS = (0.5, 1.0, 1.4)
ENGINES = ("sort-by-id", "nra", "inra", "sf", "hybrid", "ta")


def build_context(zipf_exponent: float) -> ExperimentContext:
    records = generate_records(
        3000,
        vocabulary_size=1500,
        zipf_exponent=zipf_exponent,
        seed=909,
    )
    words = distinct_words(records)
    collection = SetCollection.from_strings(words, QGramTokenizer(q=3))
    return ExperimentContext(collection, build_sql=False)


def run_sensitivity(num_queries):
    rows = []
    for exponent in ZIPF_EXPONENTS:
        context = build_context(exponent)
        workload = make_workload(
            context.collection, (11, 15), num_queries,
            modifications=0, seed=12,
        )
        for engine in ENGINES:
            summary = context.run_workload(engine, workload, 0.9)
            rows.append(
                {
                    "zipf": exponent,
                    "engine": engine,
                    "avg_elems_read": round(summary.avg_elements_read, 1),
                    "avg_io_cost": round(summary.avg_io_cost, 1),
                    "pruning_pct": round(
                        summary.avg_pruning_power * 100, 1
                    ),
                }
            )
    return rows


def test_orderings_hold_across_corpus_shapes(
    benchmark, num_queries, results_dir
):
    rows = benchmark.pedantic(
        lambda: run_sensitivity(num_queries), rounds=1, iterations=1
    )
    write_result(results_dir, "sensitivity_zipf.txt", format_table(rows))
    by = {(r["zipf"], r["engine"]): r for r in rows}
    for exponent in ZIPF_EXPONENTS:
        elems = {
            e: by[(exponent, e)]["avg_elems_read"] for e in ENGINES
        }
        io = {e: by[(exponent, e)]["avg_io_cost"] for e in ENGINES}
        assert elems["inra"] <= elems["nra"], exponent
        assert elems["hybrid"] <= elems["inra"] * 1.01, exponent
        assert elems["sf"] < elems["sort-by-id"] / 2, exponent
        assert io["ta"] > 10 * io["sf"], exponent
