"""Ablation — software buffering (the paper's §VIII-A remark).

The paper disables all software buffers and notes "more aggressive
buffering will certainly favor TA and iTA", whose cost is dominated by
random hash-bucket probes that hit the same hot buckets repeatedly.  This
benchmark adds an LRU buffer pool of increasing size in front of the page
charges and measures the billed random I/O per engine.

Expected shape: TA/iTA's random-I/O bill collapses as the pool grows, while
the sequential algorithms (SF/iNRA) barely change — they touch each page
once anyway.
"""

from __future__ import annotations


from repro.data.workloads import make_workload
from repro.eval.harness import format_table

from conftest import write_result

POOLS = (0, 64, 512)
ENGINES = ("ta", "ita", "sf", "inra")


def run_buffer_sweep(context, num_queries):
    workload = make_workload(
        context.collection, (11, 15), num_queries, modifications=0, seed=77
    )
    rows = []
    for engine in ENGINES:
        for pool in POOLS:
            spec = engine if pool == 0 else f"{engine}-buf{pool}"
            summary = context.run_workload(spec, workload, 0.8)
            hits = sum(
                getattr(r.stats, "buffer_hits", 0)
                for r in summary.per_query
            )
            rows.append(
                {
                    "engine": engine,
                    "pool_pages": pool,
                    "avg_rand_pages": round(summary.avg_random_pages, 1),
                    "avg_seq_pages": round(
                        summary.avg_sequential_pages, 1
                    ),
                    "buffer_hits": hits,
                    "avg_io_cost": round(summary.avg_io_cost, 1),
                }
            )
    return rows


def test_buffering_favors_ta(benchmark, context, num_queries, results_dir):
    rows = benchmark.pedantic(
        lambda: run_buffer_sweep(context, num_queries), rounds=1, iterations=1
    )
    write_result(results_dir, "ablation_buffering.txt", format_table(rows))
    by = {(r["engine"], r["pool_pages"]): r for r in rows}
    # TA and iTA: the random-I/O bill shrinks substantially with a pool.
    for engine in ("ta", "ita"):
        cold = by[(engine, 0)]["avg_rand_pages"]
        warm = by[(engine, 512)]["avg_rand_pages"]
        assert warm < cold, engine
        assert by[(engine, 512)]["buffer_hits"] > 0, engine
    # TA benefits more than SF in absolute terms (the paper's point).
    ta_gain = by[("ta", 0)]["avg_io_cost"] - by[("ta", 512)]["avg_io_cost"]
    sf_gain = by[("sf", 0)]["avg_io_cost"] - by[("sf", 512)]["avg_io_cost"]
    assert ta_gain > sf_gain
