"""Figure 9 — the effect of skip lists (NSL = disabled).

Without skip lists, algorithms employing Length Boundedness must
sequentially scan and discard the whole sub-window prefix of every list;
the paper measures almost a 2-fold improvement from seeking instead.  The
elements-read counter captures exactly the discarded prefix.
"""

from __future__ import annotations


from repro.data.workloads import make_workload
from repro.eval.harness import format_table

from conftest import write_result

PAIRS = [
    ("inra", "inra-nsl"),
    ("ita", "ita-nsl"),
    ("sf", "sf-nsl"),
    ("hybrid", "hybrid-nsl"),
]
COLUMNS = [
    "engine", "tau", "avg_wall_ms", "pruning_pct",
    "avg_elems_read", "avg_seq_pages", "avg_rand_pages",
]


def run_pairs(context, num_queries, taus=(0.6, 0.7, 0.8, 0.9)):
    workload = make_workload(
        context.collection, (11, 15), num_queries, modifications=0, seed=77
    )
    out = []
    for tau in taus:
        for base, nsl in PAIRS:
            out.append(context.run_workload(base, workload, tau))
            out.append(context.run_workload(nsl, workload, tau))
    return out


def test_fig9_skip_lists(benchmark, context, num_queries, results_dir):
    summaries = benchmark.pedantic(
        lambda: run_pairs(context, num_queries), rounds=1, iterations=1
    )
    write_result(
        results_dir, "fig9_skip_lists.txt",
        format_table([s.row() for s in summaries], COLUMNS),
    )
    by_key = {(s.engine, s.tau): s for s in summaries}
    for base, nsl in PAIRS:
        for tau in (0.6, 0.8, 0.9):
            with_sl = by_key[(base, tau)]
            without = by_key[(nsl, tau)]
            # Seeking never reads more than scan-and-discard.
            assert (
                with_sl.avg_elements_read <= without.avg_elements_read
            ), (base, tau)
            # Same answers either way.
            assert [len(r) for r in with_sl.per_query] == [
                len(r) for r in without.per_query
            ]
    # The saving is substantial at high tau (the paper: ~2x).
    for base, nsl in PAIRS:
        with_sl = by_key[(base, 0.9)]
        without = by_key[(nsl, 0.9)]
        assert (
            without.avg_elements_read >= 1.2 * with_sl.avg_elements_read
        ), base
    # Skip jumps replace sequential element reads.
    assert any(
        r.stats.skip_jumps > 0
        for s in summaries
        if s.engine == "sf"
        for r in s.per_query
    )
