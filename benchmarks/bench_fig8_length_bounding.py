"""Figure 8 — the effect of Length Bounding (NLB = disabled).

The paper disables Theorem 1 across SQL, iNRA, iTA, SF and Hybrid and
observes up to a 4-fold degradation in both wall-clock and pruning power.
Here the robust observable is element accesses / pruning power on the
engines that read whole windows (SQL, SF, iNRA, Hybrid): without bounds
they must crawl the short-length prefix (and, for SQL, the whole gram
partition).
"""

from __future__ import annotations


from repro.data.workloads import make_workload
from repro.eval.harness import format_table

from conftest import write_result

PAIRS = [
    ("sql", "sql-nlb"),
    ("inra", "inra-nlb"),
    ("ita", "ita-nlb"),
    ("sf", "sf-nlb"),
    ("hybrid", "hybrid-nlb"),
]
COLUMNS = [
    "engine", "tau", "avg_results", "avg_wall_ms",
    "pruning_pct", "avg_elems_read", "avg_io_cost",
]


def run_pairs(context, num_queries, taus=(0.6, 0.8, 0.9)):
    workload = make_workload(
        context.collection, (11, 15), num_queries, modifications=0, seed=77
    )
    out = []
    for tau in taus:
        for base, nlb in PAIRS:
            out.append(context.run_workload(base, workload, tau))
            out.append(context.run_workload(nlb, workload, tau))
    return out


def test_fig8_length_bounding(benchmark, context, num_queries, results_dir):
    summaries = benchmark.pedantic(
        lambda: run_pairs(context, num_queries), rounds=1, iterations=1
    )
    write_result(
        results_dir, "fig8_length_bounding.txt",
        format_table([s.row() for s in summaries], COLUMNS),
    )
    by_key = {(s.engine, s.tau): s for s in summaries}
    # Window-reading engines: bounding saves element reads at every tau.
    for base in ("sql", "sf", "inra", "hybrid"):
        for tau in (0.6, 0.8, 0.9):
            with_lb = by_key[(base, tau)]
            without = by_key[(f"{base}-nlb", tau)]
            assert (
                with_lb.avg_elements_read <= without.avg_elements_read
            ), (base, tau)
    # At the paper's high-selectivity point the saving is large (the paper
    # reports up to 4x; require at least 1.5x here).
    for base in ("sql", "sf"):
        with_lb = by_key[(base, 0.9)]
        without = by_key[(f"{base}-nlb", 0.9)]
        assert (
            without.avg_elements_read > 1.5 * with_lb.avg_elements_read
        ), base
    # Answers identical with and without bounding (it is pure pruning).
    for base, nlb in PAIRS:
        a = by_key[(base, 0.8)]
        b = by_key[(nlb, 0.8)]
        assert [len(r) for r in a.per_query] == [len(r) for r in b.per_query]
