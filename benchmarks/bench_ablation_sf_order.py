"""Ablation — SF's list processing order (beyond the paper).

SF's λ machinery is order-agnostic (the correctness argument only needs
suffix sums), so decreasing-idf is a heuristic, not a requirement.  This
ablation compares it against two alternatives on the default corpus:
shortest-list-first and weight-density
(``idf²/list_length``).  The paper's intuition — rare tokens first — is
expected to win or tie, since high idf simultaneously means short lists
*and* fast λ decay; the ablation quantifies the margin.
"""

from __future__ import annotations


from repro.data.workloads import make_workload
from repro.eval.harness import format_table

from conftest import write_result

ORDERS = ("idf", "shortest-list", "density")


def run_order_sweep(context, num_queries):
    workload = make_workload(
        context.collection, (11, 15), num_queries, modifications=0, seed=77
    )
    rows = []
    for tau in (0.6, 0.8, 0.9):
        for order in ORDERS:
            elems = 0
            wall = 0.0
            answers = 0
            for q in workload:
                query = context.prepare(q)
                from repro.algorithms import make_algorithm

                alg = make_algorithm(
                    "sf", context.searcher.index, list_order=order
                )
                r = alg.search(query, tau)
                elems += r.stats.elements_read
                wall += r.wall_seconds
                answers += len(r)
            rows.append(
                {
                    "tau": tau,
                    "order": order,
                    "total_elems": elems,
                    "total_answers": answers,
                    "wall_ms": round(wall * 1000, 1),
                }
            )
    return rows


def test_sf_order_ablation(benchmark, context, num_queries, results_dir):
    rows = benchmark.pedantic(
        lambda: run_order_sweep(context, num_queries), rounds=1, iterations=1
    )
    write_result(results_dir, "ablation_sf_order.txt", format_table(rows))
    by = {(r["tau"], r["order"]): r for r in rows}
    for tau in (0.6, 0.8, 0.9):
        # Identical answers under every order (correctness is order-free).
        counts = {by[(tau, o)]["total_answers"] for o in ORDERS}
        assert len(counts) == 1, tau
        # The paper's idf order is within 20% of the best strategy.
        best = min(by[(tau, o)]["total_elems"] for o in ORDERS)
        assert by[(tau, "idf")]["total_elems"] <= best * 1.2, tau
