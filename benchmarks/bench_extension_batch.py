"""Extension benchmark — shared-scan batch execution vs query-at-a-time.

Measures the crossover the batch module's docstring predicts: on heavily
overlapping workloads (a dedup pass re-queries the same hot tokens) the
shared scan reads each list once; on disjoint workloads it degenerates to
the per-query plan.
"""

from __future__ import annotations


from repro.algorithms.batch import BatchSelector
from repro.data.workloads import make_workload
from repro.eval.harness import format_table

from conftest import write_result


def run_batch_comparison(context, num_queries):
    rows = []
    for label, modifications in (("overlapping", 0), ("perturbed", 2)):
        workload = make_workload(
            context.collection, (11, 15), num_queries,
            modifications=modifications, seed=88,
        )
        # Duplicate every query 3x: the dedup-pass shape.
        texts = list(workload) * 3
        queries = []
        for text in texts:
            tokens = context.tokenizer.tokens(text)
            if tokens:
                queries.append(context.prepare(text))

        batch = BatchSelector(context.searcher.index)
        _results, shared = batch.search_many(queries, 0.8)

        solo_elems = 0
        for q in queries:
            r = context.searcher.search_prepared(q, 0.8, algorithm="sf")
            solo_elems += r.stats.elements_read

        rows.append(
            {
                "workload": label,
                "queries": len(queries),
                "batch_elements": shared.elements_read,
                "per_query_sf_elements": solo_elems,
                "saving_x": round(
                    solo_elems / max(shared.elements_read, 1), 2
                ),
            }
        )
    return rows


def test_batch_shared_scans(benchmark, context, num_queries, results_dir):
    rows = benchmark.pedantic(
        lambda: run_batch_comparison(context, num_queries),
        rounds=1, iterations=1,
    )
    write_result(results_dir, "extension_batch.txt", format_table(rows))
    by = {r["workload"]: r for r in rows}
    # With 3x duplicated queries the shared scan must beat per-query SF.
    assert by["overlapping"]["saving_x"] > 1.5
