"""Cross-validation benchmarks: real SQLite vs. simulated SQL, DBLP trends.

Two fidelity checks that are not paper figures but guard the reproduction:

1. The simulated relational engine (Section III-A as we model it) must
   return exactly what a *real* SQL engine returns for the same schema and
   plan — executed here on stdlib SQLite.
2. "Results for DBLP followed identical trends" (Section VIII-A): the
   headline orderings measured on the IMDB-like corpus must also hold on
   the DBLP-like corpus.
"""

from __future__ import annotations


from repro.core.collection import SetCollection
from repro.core.tokenize import QGramTokenizer
from repro.data.synthetic import distinct_words, generate_dblp_records
from repro.data.workloads import make_workload
from repro.eval.harness import ExperimentContext, format_table
from repro.relational.sqlite_backend import SqliteBaseline

from conftest import write_result


def test_sqlite_matches_simulated_sql(benchmark, context, num_queries, results_dir):
    workload = make_workload(
        context.collection, (11, 15), min(num_queries, 15),
        modifications=0, seed=77,
    )

    def run():
        engine = SqliteBaseline(context.collection)
        rows = []
        mismatches = 0
        for tau in (0.6, 0.8, 0.95):
            agree = 0
            for q in workload:
                pq = context.prepare(q)
                real = {r.set_id for r in engine.search(pq, tau).results}
                sim = {
                    r.set_id
                    for r in context.sql_engine().search(pq, tau).results
                }
                if real == sim:
                    agree += 1
                else:
                    mismatches += 1
            rows.append(
                {"tau": tau, "queries": len(workload), "agreeing": agree}
            )
        engine.close()
        return rows, mismatches

    rows, mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        results_dir, "cross_sqlite_vs_simulated.txt", format_table(rows)
    )
    assert mismatches == 0


def build_dblp_context():
    records = generate_dblp_records(2500, seed=5)
    words = distinct_words(records)
    collection = SetCollection.from_strings(words, QGramTokenizer(q=3))
    return ExperimentContext(collection)


def test_dblp_trends_identical(benchmark, num_queries, results_dir):
    """The paper's §VIII-A claim, checked on the second corpus flavour."""

    def run():
        context = build_dblp_context()
        workload = make_workload(
            context.collection, (11, 15), num_queries,
            modifications=0, seed=6,
        )
        return [
            context.run_workload(engine, workload, 0.9)
            for engine in (
                "sort-by-id", "nra", "ta", "inra", "ita", "sf", "hybrid",
            )
        ]

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        results_dir, "cross_dblp_trends.txt",
        format_table(
            [s.row() for s in summaries],
            ["engine", "avg_results", "pruning_pct", "avg_elems_read",
             "avg_io_cost"],
        ),
    )
    by = {s.engine: s for s in summaries}
    # The same orderings as on the IMDB-like corpus:
    assert by["sort-by-id"].avg_pruning_power == 0.0
    assert by["inra"].avg_elements_read <= by["nra"].avg_elements_read
    assert by["hybrid"].avg_elements_read <= by["inra"].avg_elements_read
    assert by["sf"].avg_elements_read < by["sort-by-id"].avg_elements_read
    assert by["ita"].avg_pruning_power >= by["inra"].avg_pruning_power
    assert by["ta"].avg_io_cost > 10 * by["sf"].avg_io_cost
