"""Extension benchmark — top-k selection (the paper's Section X future work).

Not a paper figure; measures the dynamic-threshold top-k search against the
exhaustive ranking baseline, and how its pruning scales with k.
"""

from __future__ import annotations


from repro.data.workloads import make_workload
from repro.eval.harness import format_table

from conftest import write_result


def run_topk(context, num_queries):
    workload = make_workload(
        context.collection, (11, 15), num_queries, modifications=1, seed=80
    )
    rows = []
    for k in (1, 5, 20, 100):
        elems = 0
        totals = 0
        answers = 0
        for q in workload:
            tokens = context.tokenizer.tokens(q)
            if not tokens:
                continue
            result = context.searcher.top_k(tokens, k)
            elems += result.stats.elements_read
            totals += result.elements_total
            answers += len(result)
        rows.append(
            {
                "k": k,
                "avg_answers": round(answers / len(workload), 1),
                "avg_elems_read": round(elems / len(workload), 1),
                "pruning_pct": round(100 * (1 - elems / max(totals, 1)), 1),
            }
        )
    return rows


def test_topk_scaling(benchmark, context, num_queries, results_dir):
    rows = benchmark.pedantic(
        lambda: run_topk(context, num_queries), rounds=1, iterations=1
    )
    write_result(results_dir, "extension_topk.txt", format_table(rows))
    by_k = {r["k"]: r for r in rows}
    # Smaller k => higher theta => stronger pruning.
    assert by_k[1]["avg_elems_read"] <= by_k[100]["avg_elems_read"]
    # Even k=100 avoids exhaustive reading.
    assert by_k[100]["pruning_pct"] > 0.0


def test_benchmark_topk_wallclock(benchmark, context, default_workload):
    queries = list(default_workload)[:10]

    def run():
        for q in queries:
            tokens = context.tokenizer.tokens(q)
            context.searcher.top_k(tokens, 10)

    benchmark(run)
