"""Figure 7 — pruning power (% of list elements never read).

The paper's claims: iTA prunes most (random accesses complete scores
directly); SF, Hybrid and iNRA reach ~95 % at high thresholds; pruning
rises with the threshold; sort-by-id prunes nothing.  Inverted-list
engines only, as in the paper.
"""

from __future__ import annotations


from repro.eval.harness import format_table

from conftest import write_result
from sweeps import modification_sweep, pivot, query_size_sweep, threshold_sweep

ENGINES = ("sort-by-id", "ta", "nra", "inra", "ita", "sf", "hybrid")
COLUMNS = ["engine", "tau", "bucket", "mods", "pruning_pct", "avg_elems_read"]


def test_fig7a_pruning_vs_threshold(benchmark, context, num_queries, results_dir):
    summaries = benchmark.pedantic(
        lambda: threshold_sweep(context, ENGINES, num_queries),
        rounds=1, iterations=1,
    )
    write_result(
        results_dir, "fig7a_pruning_vs_threshold.txt",
        format_table([s.row() for s in summaries], COLUMNS),
    )
    pruning = pivot(summaries, "tau", lambda s: s.avg_pruning_power)
    # sort-by-id never prunes.
    assert all(v == 0.0 for v in pruning["sort-by-id"].values())
    # Pruning is monotone-ish in tau for the improved algorithms ...
    for engine in ("inra", "ita", "sf", "hybrid"):
        series = pruning[engine]
        assert series[0.9] >= series[0.6], engine
        # ... and strong at the top end (the paper reports ~95 %; our
        # corpus is ~3 orders smaller, so the bar is lower).
        assert series[0.9] > 0.6, engine
    # iTA prunes the most among the improved family (random accesses
    # complete scores without sequential reads).
    for engine in ("inra", "sf", "hybrid"):
        assert pruning["ita"][0.9] >= pruning[engine][0.9], engine
    # The improved family beats classic NRA everywhere.
    for tau in (0.6, 0.9):
        assert pruning["inra"][tau] >= pruning["nra"][tau]


def test_fig7b_pruning_vs_query_size(benchmark, context, num_queries, results_dir):
    summaries = benchmark.pedantic(
        lambda: query_size_sweep(context, ENGINES, num_queries),
        rounds=1, iterations=1,
    )
    write_result(
        results_dir, "fig7b_pruning_vs_query_size.txt",
        format_table([s.row() for s in summaries], COLUMNS),
    )
    for engine in ("inra", "sf", "hybrid", "ita"):
        series = {
            s.row()["bucket"]: s.avg_pruning_power
            for s in summaries
            if s.engine == engine
        }
        assert min(series.values()) > 0.3, engine


def test_fig7c_pruning_vs_modifications(benchmark, context, num_queries, results_dir):
    summaries = benchmark.pedantic(
        lambda: modification_sweep(context, ENGINES, num_queries),
        rounds=1, iterations=1,
    )
    write_result(
        results_dir, "fig7c_pruning_vs_modifications.txt",
        format_table([s.row() for s in summaries], COLUMNS),
    )
    # More modifications => more selective queries => pruning does not drop.
    for engine in ("sf", "inra"):
        series = {
            s.row()["mods"]: s.avg_pruning_power
            for s in summaries
            if s.engine == engine
        }
        assert series[3] >= series[0] - 0.05, engine
