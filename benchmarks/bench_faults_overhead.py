"""Fault-injection overhead — disarmed fault points must be (nearly) free.

The fault layer's core promise (``docs/robustness.md``): a process that
never arms ``REPRO_FAULTS`` pays only one call into
:func:`repro.faults.runtime.maybe_fire` — an attribute read and an
``armed`` test against the shared Null plan — per instrumented storage
operation.  This benchmark measures that promise on the SF hot path
(the fastest algorithm, hence the one where fixed per-operation
overhead is the largest relative cost) and records it in
``BENCH_faults.json``:

* **stripped** — ``maybe_fire`` / ``maybe_mangle`` monkeypatched to
  bare no-ops: the call-site floor with no plan lookup at all;
* **disabled** — the shipped default: the ``NullFaultPlan`` occupies
  the slot and every fault point tests ``plan.armed`` and returns;
* **armed** — a live plan whose single rule targets an unrelated site,
  so every hot-path fire pays rule matching but injects nothing (the
  chaos-smoke configuration).

The acceptance bar is **disabled <= 2% over stripped** (min-of-rounds,
modes interleaved to decorrelate machine drift).  Set
``REPRO_BENCH_SMOKE=1`` for CI's gross-regression tripwire: fewer
rounds and a 10% bound, because shared runners cannot resolve 2%.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.algorithms.base import make_algorithm
from repro.eval.harness import format_table
from repro.faults import parse_fault_spec, use_fault_plan
from repro.faults import runtime as faults_runtime

from conftest import write_result

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

TAU = 0.8

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in {
    "1", "true", "yes", "on"
}
ROUNDS = 3 if SMOKE else 9
OVERHEAD_BOUND = 0.10 if SMOKE else 0.02


def _prepared_workload(context, workload):
    return [context.prepare(text) for text in workload]


def _run_workload(algorithm, queries):
    started = time.perf_counter()
    for query in queries:
        algorithm.search(query, TAU)
    return time.perf_counter() - started


def test_disarmed_overhead_on_sf_hot_path(context, default_workload,
                                          results_dir):
    queries = _prepared_workload(context, default_workload)
    algorithm = make_algorithm("sf", context.searcher.index)

    real_fire = faults_runtime.maybe_fire
    real_mangle = faults_runtime.maybe_mangle
    noop_fire = lambda site: None  # noqa: E731
    noop_mangle = lambda site, data: data  # noqa: E731
    # An armed plan that never matches the hot path: every fire pays
    # the per-rule fnmatch, none inject — the chaos-smoke cost profile.
    armed_plan = parse_fault_spec(
        "seed=1;persist.write_manifest:transient:p=0.5"
    )

    def timed(mode):
        if mode == "stripped":
            faults_runtime.maybe_fire = noop_fire
            faults_runtime.maybe_mangle = noop_mangle
        try:
            if mode == "armed":
                with use_fault_plan(armed_plan):
                    return _run_workload(algorithm, queries)
            return _run_workload(algorithm, queries)
        finally:
            faults_runtime.maybe_fire = real_fire
            faults_runtime.maybe_mangle = real_mangle

    modes = ("stripped", "disabled", "armed")
    best = {mode: float("inf") for mode in modes}
    timed("stripped")  # warm caches (buffer pool, bytecode) off the books
    # Interleave the modes each round so clock drift and background load
    # hit all three equally; min-of-rounds is the least noisy estimator
    # for "same code, how fast can it go".
    for _round in range(ROUNDS):
        for mode in modes:
            best[mode] = min(best[mode], timed(mode))

    disabled_overhead = best["disabled"] / best["stripped"] - 1.0
    armed_overhead = best["armed"] / best["stripped"] - 1.0

    record = {
        "corpus_records": len(context.collection),
        "workload_queries": len(default_workload),
        "tau": TAU,
        "rounds": ROUNDS,
        "smoke": SMOKE,
        "stripped_seconds": round(best["stripped"], 6),
        "disabled_seconds": round(best["disabled"], 6),
        "armed_seconds": round(best["armed"], 6),
        "disabled_overhead_pct": round(disabled_overhead * 100.0, 3),
        "armed_overhead_pct": round(armed_overhead * 100.0, 3),
        "overhead_bound_pct": OVERHEAD_BOUND * 100.0,
        "armed_injections": armed_plan.injected_total(),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    rows = [
        {"mode": mode, "seconds": f"{best[mode]:.4f}",
         "vs_stripped": f"{best[mode] / best['stripped']:.4f}"}
        for mode in modes
    ]
    write_result(
        results_dir, "faults_overhead.txt",
        format_table(rows, ["mode", "seconds", "vs_stripped"]),
    )

    # The armed plan's rule targets a persistence-only site: the search
    # workload must never have tripped it.
    assert record["armed_injections"] == 0
    assert disabled_overhead <= OVERHEAD_BOUND, record
