"""Scaling study — how the paper's effects strengthen with corpus size.

EXPERIMENTS.md attributes two weakly reproduced trends (the ~95 % pruning
plateau, pruning rising with query size) to corpus *scale*: in a large
corpus the Theorem 1 window is relatively narrower.  This benchmark
substantiates that claim by sweeping corpus size and measuring, for SF:

* pruning power at tau = 0.9 (expected: grows with corpus size);
* elements read per query (expected: grows sublinearly with list mass).
"""

from __future__ import annotations


from repro.data.synthetic import generate_word_database
from repro.data.workloads import make_workload
from repro.eval.harness import ExperimentContext, format_table

from conftest import write_result

SIZES = (500, 2000, 8000)


def run_scale_sweep(num_queries):
    rows = []
    for records in SIZES:
        collection, _words = generate_word_database(
            num_records=records,
            vocabulary_size=max(records // 2, 300),
            seed=2008,
        )
        context = ExperimentContext(collection, build_sql=False)
        workload = make_workload(
            collection, (11, 15), num_queries, modifications=0, seed=77
        )
        summary = context.run_workload("sf", workload, 0.9)
        total_mass = sum(
            r.elements_total for r in summary.per_query
        ) / max(len(summary.per_query), 1)
        rows.append(
            {
                "records": records,
                "distinct_words": len(collection),
                "avg_list_mass": round(total_mass, 1),
                "avg_elems_read": round(summary.avg_elements_read, 1),
                "pruning_pct": round(summary.avg_pruning_power * 100, 1),
            }
        )
    return rows


def test_effects_strengthen_with_scale(benchmark, num_queries, results_dir):
    rows = benchmark.pedantic(
        lambda: run_scale_sweep(num_queries), rounds=1, iterations=1
    )
    write_result(results_dir, "scale_study.txt", format_table(rows))
    pruning = [r["pruning_pct"] for r in rows]
    # Pruning power grows with corpus size (the window narrows relatively).
    assert pruning[-1] > pruning[0]
    # Elements read grow sublinearly in the list mass.
    mass_ratio = rows[-1]["avg_list_mass"] / rows[0]["avg_list_mass"]
    read_ratio = rows[-1]["avg_elems_read"] / max(rows[0]["avg_elems_read"], 1)
    assert read_ratio < mass_ratio
