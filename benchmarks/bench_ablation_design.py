"""Ablations of the design choices DESIGN.md calls out.

1. Candidate-set organization (Section VII): Hybrid's partitioned per-list
   candidate lists vs. iNRA's flat hash scans — measured via the
   candidate-scan counter and wall-clock.
2. iNRA's bookkeeping reducers (Section V): lazy candidate scans (skip the
   scan while F >= tau, stop at the first viable candidate) vs. textbook
   per-round full scans.
3. Skip-list stride: exact (stride 1) vs. sparse (the default 16) — the
   space/seek-precision trade behind the paper's 10 MB cap.
"""

from __future__ import annotations


from repro.data.workloads import make_workload
from repro.eval.harness import format_table

from conftest import write_result


def run_candidate_org(context, num_queries):
    workload = make_workload(
        context.collection, (11, 15), num_queries, modifications=0, seed=77
    )
    rows = []
    for spec, label in [
        ("inra", "iNRA (hash scans, lazy)"),
        ("hybrid", "Hybrid (partitioned, full scans)"),
    ]:
        s = context.run_workload(spec, workload, 0.8)
        rows.append(
            {
                "organization": label,
                "avg_candidate_scans": round(
                    sum(r.stats.candidate_scans for r in s.per_query)
                    / len(s.per_query),
                    1,
                ),
                "avg_elems_read": round(s.avg_elements_read, 1),
                "avg_wall_ms": round(s.avg_wall_seconds * 1000, 3),
            }
        )
    return rows


def test_candidate_set_organization(benchmark, context, num_queries, results_dir):
    rows = benchmark.pedantic(
        lambda: run_candidate_org(context, num_queries), rounds=1, iterations=1
    )
    write_result(
        results_dir, "ablation_candidate_org.txt", format_table(rows)
    )
    inra, hybrid = rows
    # Hybrid's tighter stop condition never reads more elements.
    assert hybrid["avg_elems_read"] <= inra["avg_elems_read"]


def run_lazy_scans(context, num_queries):
    workload = make_workload(
        context.collection, (11, 15), num_queries, modifications=0, seed=77
    )
    rows = []
    for lazy in (True, False):
        per_query = []
        for q in workload:
            query = context.prepare(q)
            from repro.algorithms import make_algorithm

            alg = make_algorithm("inra", context.searcher.index, lazy_scans=lazy)
            per_query.append(alg.search(query, 0.8))
        rows.append(
            {
                "mode": "lazy scans" if lazy else "textbook scans",
                "avg_candidate_scans": round(
                    sum(r.stats.candidate_scans for r in per_query)
                    / len(per_query),
                    1,
                ),
                "avg_elems_read": round(
                    sum(r.stats.elements_read for r in per_query)
                    / len(per_query),
                    1,
                ),
                "answers": sum(len(r) for r in per_query),
            }
        )
    return rows


def test_inra_lazy_scan_optimization(benchmark, context, num_queries, results_dir):
    rows = benchmark.pedantic(
        lambda: run_lazy_scans(context, num_queries), rounds=1, iterations=1
    )
    write_result(results_dir, "ablation_inra_lazy.txt", format_table(rows))
    lazy, textbook = rows
    # Same answers, far less bookkeeping.
    assert lazy["answers"] == textbook["answers"]
    assert lazy["avg_candidate_scans"] < textbook["avg_candidate_scans"]


def run_stride(context, num_queries):
    from repro.storage.invlist import InvertedIndex

    workload = make_workload(
        context.collection, (11, 15), num_queries, modifications=0, seed=77
    )
    rows = []
    for stride in (1, 4, 16, 64):
        index = InvertedIndex(
            context.collection,
            with_id_lists=False,
            with_hash_index=False,
            skiplist_stride=stride,
        )
        from repro.algorithms import make_algorithm

        elems = 0
        jumps = 0
        for q in workload:
            query = context.prepare(q)
            alg = make_algorithm("sf", index)
            r = alg.search(query, 0.9)
            elems += r.stats.elements_read
            jumps += r.stats.skip_jumps
        rows.append(
            {
                "stride": stride,
                "skiplist_bytes": index.size_report()["skip_lists"],
                "avg_elems_read": round(elems / len(workload), 1),
                "avg_skip_jumps": round(jumps / len(workload), 1),
            }
        )
    return rows


def test_skiplist_stride_tradeoff(benchmark, context, num_queries, results_dir):
    rows = benchmark.pedantic(
        lambda: run_stride(context, num_queries), rounds=1, iterations=1
    )
    write_result(
        results_dir, "ablation_skiplist_stride.txt", format_table(rows)
    )
    by_stride = {r["stride"]: r for r in rows}
    # Space shrinks with stride; element overhead grows (landing tail).
    assert (
        by_stride[64]["skiplist_bytes"] < by_stride[1]["skiplist_bytes"]
    )
    assert (
        by_stride[1]["avg_elems_read"] <= by_stride[64]["avg_elems_read"]
    )
