"""Figure 5 — index sizes per competitor, relative to the base table.

The paper reports: all indexes dwarf the data table (3-gram explosion); the
inverted-list family is ~9x the data, SQL ~26x; extendible hashing (needed
only for TA-style random access) is the dominant inverted-list overhead;
skip lists are nearly free.  We regenerate the same decomposition from the
byte model of the storage layer and assert those orderings.
"""

from __future__ import annotations


from repro.storage.invlist import InvertedIndex
from repro.storage.pages import bytes_human
from repro.relational.sqlbaseline import SqlBaseline
from repro.eval.harness import format_table

from conftest import write_result


def build_size_report(collection):
    inverted = InvertedIndex(collection)
    sql = SqlBaseline(collection)
    inv_sizes = inverted.size_report()
    sql_sizes = sql.size_report()
    base = sql_sizes["base_table"]
    rows = [
        {"component": "base table (data)", "bytes": base,
         "human": bytes_human(base), "x_data": 1.0},
    ]
    for label, size in [
        ("SQL: q-gram table", sql_sizes["qgram_table"]),
        ("SQL: clustered B-tree", sql_sizes["btree"]),
        ("inverted lists (by weight)", inv_sizes["inverted_lists_by_weight"]),
        ("inverted lists (by id)", inv_sizes["inverted_lists_by_id"]),
        ("skip lists", inv_sizes["skip_lists"]),
        ("extendible hashing", inv_sizes["extendible_hashing"]),
    ]:
        rows.append(
            {
                "component": label,
                "bytes": size,
                "human": bytes_human(size),
                "x_data": round(size / base, 2),
            }
        )
    from repro.storage.compression import compressed_size_report

    compression = compressed_size_report(inverted)
    rows.append(
        {
            "component": "inverted lists (compressed)",
            "bytes": compression["compressed_bytes"],
            "human": bytes_human(compression["compressed_bytes"]),
            "x_data": round(compression["compressed_bytes"] / base, 2),
        }
    )
    totals = {
        "sql_total": sql_sizes["qgram_table"] + sql_sizes["btree"],
        "nra_family_total": (
            inv_sizes["inverted_lists_by_weight"] + inv_sizes["skip_lists"]
        ),
        "ta_family_total": (
            inv_sizes["inverted_lists_by_weight"]
            + inv_sizes["skip_lists"]
            + inv_sizes["extendible_hashing"]
        ),
        "sortbyid_total": inv_sizes["inverted_lists_by_id"],
        "compression_ratio": compression["ratio"],
        "base": base,
    }
    return rows, totals


def test_fig5_index_sizes(benchmark, corpus, results_dir):
    collection, _words = corpus
    rows, totals = benchmark.pedantic(
        lambda: build_size_report(collection), rounds=1, iterations=1
    )
    summary = [
        {
            "index": name,
            "human": bytes_human(size),
            "x_data_table": round(size / totals["base"], 2),
        }
        for name, size in totals.items()
        if name not in ("base", "compression_ratio")
    ]
    text = (
        format_table(rows, ["component", "human", "x_data"])
        + "\n\nper-competitor totals:\n"
        + format_table(summary)
    )
    write_result(results_dir, "fig5_index_size.txt", text)

    # Paper shape 1: every index is larger than the data table.
    assert totals["sql_total"] > totals["base"]
    assert totals["nra_family_total"] > totals["base"]
    # Paper shape 2: SQL is the largest footprint overall.
    assert totals["sql_total"] > totals["ta_family_total"]
    # Paper shape 3: extendible hashing dominates skip lists by far.
    by_component = {r["component"]: r["bytes"] for r in rows}
    assert (
        by_component["extendible hashing"] > 5 * by_component["skip lists"]
    )
    # Paper shape 4: skip lists are a small fraction of the lists they index.
    assert (
        by_component["skip lists"]
        < by_component["inverted lists (by weight)"]
    )


def test_benchmark_index_build(benchmark, corpus):
    """Timing anchor: full inverted-index construction."""
    collection, _words = corpus
    benchmark.pedantic(
        lambda: InvertedIndex(collection), rounds=3, iterations=1
    )
