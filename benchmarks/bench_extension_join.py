"""Extension benchmark — similarity self-join on the selection primitive.

Not a paper figure (the paper contrasts itself with join work); measures
the join built from repeated selections: total postings read vs. the
quadratic baseline's comparison count, and which selection algorithm suits
the join best.
"""

from __future__ import annotations


from repro.core.join import (
    brute_force_self_join,
    similarity_clusters,
    similarity_self_join,
)
from repro.core.search import SetSimilaritySearcher
from repro.data.errors import make_graded_dataset
from repro.data.synthetic import generate_records
from repro.core.collection import SetCollection
from repro.core.tokenize import WordQGramTokenizer
from repro.eval.harness import format_table

from conftest import write_result


def build_duplicate_corpus():
    clean = generate_records(
        150, vocabulary_size=700, words_per_record=(2, 3), seed=13
    )
    dataset = make_graded_dataset(6, clean, duplicates_per_string=2, seed=13)
    collection = SetCollection.from_strings(
        dataset.strings, WordQGramTokenizer(q=3)
    )
    return dataset, SetSimilaritySearcher(collection)


def run_join_bench():
    dataset, searcher = build_duplicate_corpus()
    n = len(searcher.collection)
    rows = []
    for tau in (0.5, 0.7, 0.9):
        for algorithm in ("sf", "inra"):
            join = similarity_self_join(searcher, tau, algorithm)
            rows.append(
                {
                    "tau": tau,
                    "algorithm": algorithm,
                    "pairs": len(join),
                    "elements_read": join.stats.elements_read,
                    "quadratic_comparisons": n * (n - 1) // 2,
                    "wall_s": round(join.wall_seconds, 3),
                }
            )
    clusters = similarity_clusters(searcher, 0.5)
    return dataset, searcher, rows, clusters


def test_join_extension(benchmark, results_dir):
    dataset, searcher, rows, clusters = benchmark.pedantic(
        run_join_bench, rounds=1, iterations=1
    )
    write_result(results_dir, "extension_join.txt", format_table(rows))
    by = {(r["tau"], r["algorithm"]): r for r in rows}
    # Same pair count regardless of the selection algorithm used.
    for tau in (0.5, 0.7, 0.9):
        assert by[(tau, "sf")]["pairs"] == by[(tau, "inra")]["pairs"]
    # Higher tau => fewer pairs.
    assert by[(0.9, "sf")]["pairs"] <= by[(0.5, "sf")]["pairs"]
    # Clustering recovers a solid share of the true duplicate groups: a
    # cluster is 'pure' if all members share one ground-truth group.
    pure = sum(
        1
        for cluster in clusters
        if len({dataset.groups[i] for i in cluster}) == 1
    )
    assert pure >= len(clusters) * 0.5
    assert len(clusters) >= 50  # most of the 150 groups surface

    # Exactness on a small slice (the full O(n^2) check lives in tests/).
    small = SetCollection.from_strings(
        dataset.strings[:60], WordQGramTokenizer(q=3)
    )
    small_searcher = SetSimilaritySearcher(small)
    got = {(p.a, p.b) for p in similarity_self_join(small_searcher, 0.6)}
    ref = {(p.a, p.b) for p in brute_force_self_join(small, 0.6)}
    assert got == ref
