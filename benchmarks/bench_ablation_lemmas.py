"""Ablation — the Lemma 1-4 access-cost separations on adversarial corpora.

Regenerates, as benchmark tables, the constructed instances behind the
paper's lemmas: the arbitrary NRA/iNRA gap (Lemma 1), the unique-lengths
tau=1 corner (Section V), and the Hybrid <= iNRA dominance (Lemma 4).
"""

from __future__ import annotations

import random


from repro import SetCollection, SetSimilaritySearcher
from repro.eval.harness import format_table

from conftest import write_result


def lemma1_instance(noise: int = 2000):
    sets = [["a"] for _ in range(noise)]
    sets.append(["a", "b"])
    sets.append(["a", "b", "pad"])
    return SetSimilaritySearcher(SetCollection.from_token_sets(sets))


def unique_lengths_instance(n: int = 400):
    sets = [[f"x{i}" for i in range(1, k + 1)] for k in range(1, n)]
    coll = SetCollection.from_token_sets(sets)
    return SetSimilaritySearcher(coll, skiplist_stride=1)


def zipf_instance(n: int = 2000):
    rng = random.Random(11)
    vocab = [f"t{i}" for i in range(60)]
    weights = [1.0 / (r + 1) for r in range(60)]
    sets = [
        list(dict.fromkeys(rng.choices(vocab, weights=weights, k=rng.randint(2, 8))))
        for _ in range(n)
    ]
    return SetSimilaritySearcher(SetCollection.from_token_sets(sets)), vocab, rng


def build_rows():
    rows = []
    # Lemma 1: NRA >> iNRA.
    s = lemma1_instance()
    for algo in ("nra", "inra", "sf", "hybrid"):
        r = s.search(["a", "b"], 0.9, algorithm=algo)
        rows.append(
            {
                "instance": "lemma1 (long dead prefix)",
                "engine": algo,
                "elements": r.stats.elements_read,
                "answers": len(r),
            }
        )
    # Section V corner: unique lengths, tau = 1.
    s = unique_lengths_instance()
    q = [f"x{i}" for i in range(1, 13)]
    for algo in ("nra", "inra", "sf", "hybrid"):
        r = s.search(q, 1.0, algorithm=algo)
        rows.append(
            {
                "instance": "unique lengths, tau=1",
                "engine": algo,
                "elements": r.stats.elements_read,
                "answers": len(r),
            }
        )
    # Lemma 4 on a Zipf corpus: averaged accesses.
    s, vocab, rng = zipf_instance()
    totals = {"nra": 0, "inra": 0, "sf": 0, "hybrid": 0}
    for _ in range(20):
        q = rng.sample(vocab[:30], rng.randint(2, 5))
        for algo in totals:
            totals[algo] += s.search(q, 0.8, algorithm=algo).stats.elements_read
    for algo, total in totals.items():
        rows.append(
            {
                "instance": "zipf corpus avg (20 queries)",
                "engine": algo,
                "elements": total // 20,
                "answers": "-",
            }
        )
    return rows


def test_lemma_separations(benchmark, results_dir):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    write_result(results_dir, "ablation_lemmas.txt", format_table(rows))
    by = {(r["instance"], r["engine"]): r["elements"] for r in rows}
    # Lemma 1: iNRA reads a vanishing fraction of NRA's accesses.
    assert by[("lemma1 (long dead prefix)", "inra")] * 10 < by[
        ("lemma1 (long dead prefix)", "nra")
    ]
    # Unique lengths, tau=1: bounded algorithms touch O(#lists) elements.
    assert by[("unique lengths, tau=1", "sf")] <= 14
    assert by[("unique lengths, tau=1", "inra")] <= 16
    assert by[("unique lengths, tau=1", "nra")] > 100
    # Lemma 4: Hybrid <= iNRA on the random corpus.
    assert by[("zipf corpus avg (20 queries)", "hybrid")] <= by[
        ("zipf corpus avg (20 queries)", "inra")
    ]
